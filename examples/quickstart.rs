//! Quickstart: synthesize a month of smart-home behaviour, train the
//! anomaly detector, run the SHATTER attack analysis for one day, and
//! print what the attacker achieves.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shatter::adm::{AdmKind, HullAdm};
use shatter::analytics::{impact, AttackerCapability, WindowDpScheduler};
use shatter::dataset::{synthesize, HouseSpec, SynthConfig};
use shatter::hvac::EnergyModel;
use shatter::smarthome::houses;

fn main() {
    // 1. The home under analysis: ARAS House A (4 indoor zones,
    //    2 occupants, 13 smart appliances).
    let home = houses::aras_house_a();
    println!(
        "Home: {} ({} zones, {} appliances)",
        home.name(),
        home.zones().len(),
        home.appliances().len()
    );

    // 2. A month of per-minute occupant behaviour (seeded, reproducible).
    let month = synthesize(&SynthConfig::month(HouseSpec::aras_a(), 42));
    println!(
        "Synthesized {} days of ARAS-schema behaviour",
        month.days.len()
    );

    // 3. Train the clustering-based anomaly detection model the defender
    //    deploys: DBSCAN clusters over (arrival-time, stay-duration)
    //    episodes, linearized into convex hulls.
    let (train, test) = month.split_at_day(25);
    let adm = HullAdm::train(&train, AdmKind::default_dbscan());
    println!(
        "Trained DBSCAN ADM; total hull coverage {:.0} min² across {} (occupant, zone) models",
        adm.total_coverage_area(),
        adm.models().count(),
    );

    // 4. The attacker: full sensor/appliance access, complete knowledge.
    let cap = AttackerCapability::full(&home);

    // 5. Run the attack on a held-out day: SHATTER's window-horizon
    //    scheduler fabricates occupancy, and Algorithm 1 triggers
    //    appliances where nobody will notice.
    let model = EnergyModel::standard(home);
    let day = &test.days[0];
    let outcome =
        impact::evaluate_day(&model, &adm, &cap, day, &WindowDpScheduler::default(), true);

    println!();
    println!("=== Attack outcome for day {} ===", day.day);
    println!("benign control cost:   ${:.2}", outcome.benign_cost_usd);
    println!("attacked control cost: ${:.2}", outcome.attacked_cost_usd);
    println!(
        "attack impact:         ${:.2} (+{:.1}%)",
        outcome.impact_usd(),
        100.0 * outcome.impact_usd() / outcome.benign_cost_usd
    );
    println!("falsified occupant-minutes: {}", outcome.divergence);
    println!("appliance-trigger minutes:  {}", outcome.triggered_minutes);
    println!(
        "ADM detection rate of the attack: {:.1}% (stealthy if ~0)",
        100.0 * outcome.detection_rate
    );
}
