//! The §VI prototype-testbed validation: a MITM attacker rewrites MQTT
//! occupancy packets between the sensor nodes and the controller, making
//! the controller chill an empty kitchen while the occupied zones warm up.
//!
//! ```text
//! cargo run --release --example testbed_attack
//! ```

use shatter::testbed::broker::{Broker, Intercept};
use shatter::testbed::experiment::{run_validation, ValidationConfig};
use shatter::testbed::packet::Packet;
use shatter::testbed::physics::{TestbedParams, TestbedSim};
use shatter::testbed::polyfit::{mape, polyfit};

fn main() {
    // --- Piece 1: the learned dynamics model -----------------------------
    let params = TestbedParams::default();
    let (xs, ys) = TestbedSim::training_curve(&params, 8);
    let coeffs = polyfit(&xs, &ys, 2).expect("well-posed curve");
    println!(
        "Degree-2 dynamics model: duty(load) = {:.4} + {:.4}·x + {:.5}·x²  (fit error {:.3}%)",
        coeffs[0],
        coeffs[1],
        coeffs[2],
        mape(&coeffs, &xs[1..], &ys[1..])
    );

    // --- Piece 2: a raw packet crossing the MITM -------------------------
    let broker = Broker::new();
    let rx = broker.subscribe("sensor/#");
    broker.set_interceptor(Box::new(|p: &Packet| {
        if p.topic.starts_with("sensor/leds/") {
            // The Polymorph/Scapy role: decode, rewrite, re-encode.
            Intercept::Rewrite(Packet::new(p.topic.clone(), vec![6.0]))
        } else {
            Intercept::Pass
        }
    }));
    broker
        .publish_raw(Packet::new("sensor/leds/2", vec![0.0]).encode())
        .expect("valid packet");
    let crafted = rx.recv().expect("delivered");
    println!(
        "MITM demo: kitchen occupancy packet rewritten from 0 to {} LEDs",
        crafted.values[0]
    );

    // --- Piece 3: the full replay -----------------------------------------
    let outcome = run_validation(&ValidationConfig::default());
    println!();
    println!("1-hour replay (ARAS House A, 18:00–19:00):");
    println!("  benign HVAC energy:   {:.6} kWh", outcome.benign_kwh);
    println!("  attacked HVAC energy: {:.6} kWh", outcome.attacked_kwh);
    println!(
        "  increment:            +{:.1}%  (paper reports ~78%)",
        outcome.increment_pct()
    );
    println!("  packets rewritten:    {}", outcome.rewritten_packets);
}
