//! The paper's §V case study, end to end: Alice and Bob's actual evening,
//! what a greedy attacker would fabricate, what SHATTER fabricates, and
//! why the horizon-based schedule wins.
//!
//! ```text
//! cargo run --release --example case_study
//! ```

use shatter::adm::{AdmKind, HullAdm};
use shatter::analytics::{
    trigger, AttackSchedule, AttackerCapability, GreedyScheduler, RewardTable, Scheduler,
    WindowDpScheduler,
};
use shatter::dataset::{synthesize, HouseSpec, SynthConfig};
use shatter::hvac::EnergyModel;
use shatter::smarthome::{houses, OccupantId};

fn main() {
    let home = houses::aras_house_a();
    let month = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, 11));
    let adm = HullAdm::train(&month.prefix_days(10), AdmKind::default_kmeans());
    let model = EnergyModel::standard(home.clone());
    let table = RewardTable::build(&model);
    let cap = AttackerCapability::full(&home);
    let day = &month.days[3]; // "day 4"

    let actual = AttackSchedule::from_actual(day);
    let greedy = GreedyScheduler.schedule(&table, &adm, &cap, day);
    let shatter = WindowDpScheduler::default().schedule(&table, &adm, &cap, day);

    // Validate stealthiness the way the framework does.
    shatter
        .validate(&adm, &cap, day)
        .expect("SHATTER schedule must be stealthy and feasible");

    let names = ["Alice", "Bob"];
    let start: usize = 1080; // 18:00
    println!("Evening schedule (zones 0=Outside 1=Bed 2=Living 3=Kitchen 4=Bath)");
    println!("{:<10}{:<7}18:00 .. 18:09", "schedule", "who");
    for (label, sched) in [
        ("actual", &actual),
        ("greedy", &greedy),
        ("SHATTER", &shatter),
    ] {
        #[allow(clippy::needless_range_loop)]
        for o in 0..2 {
            let zones: Vec<String> = (start..start + 10)
                .map(|t| sched.zones[o][t].index().to_string())
                .collect();
            println!("{:<10}{:<7}{}", label, names[o], zones.join(" "));
        }
    }

    // Why SHATTER wins: total fabricated reward across the whole day.
    println!();
    for (label, sched) in [
        ("actual", &actual),
        ("greedy", &greedy),
        ("SHATTER", &shatter),
    ] {
        println!(
            "{label:<8} daily HVAC-reward of reported schedule: ${:.2}",
            sched.reward(&table)
        );
    }

    // Real-time appliance triggering on top of the SHATTER schedule.
    let plan = trigger::plan_triggers(&home, &adm, &cap, day, &shatter);
    println!();
    println!(
        "Appliance triggering: {} appliance-minutes across the day",
        plan.total_minutes()
    );
    let mut by_appliance = vec![0usize; home.appliances().len()];
    for apps in &plan.on {
        for a in apps {
            by_appliance[a.index()] += 1;
        }
    }
    for (i, n) in by_appliance.iter().enumerate() {
        if *n > 0 {
            println!("  {:<14} {:>4} min", home.appliances()[i].name, n);
        }
    }

    // The stay-range thresholds the ADM enforces at 18:00 arrivals.
    println!();
    println!("ADM stay ranges for an 18:00 arrival (minutes):");
    #[allow(clippy::needless_range_loop)]
    for o in 0..2usize {
        for z in 1..5usize {
            let ranges =
                adm.stay_ranges(OccupantId(o), shatter::smarthome::ZoneId(z), start as f64);
            let txt: Vec<String> = ranges
                .iter()
                .map(|(lo, hi)| format!("[{lo:.0}-{hi:.0}]"))
                .collect();
            println!(
                "  {:<6} {:<12} {}",
                names[o],
                home.zones()[z].name,
                if txt.is_empty() {
                    "(no habit)".into()
                } else {
                    txt.join(" ")
                }
            );
        }
    }
}
