//! Defense planning with SHATTER: use the attack analyzer the way the
//! paper's §VII-D suggests — rank which sensors/zones/appliances to harden
//! first by how much hardening them shrinks the achievable attack impact.
//!
//! ```text
//! cargo run --release --example defense_planning
//! ```

use shatter::adm::{AdmKind, HullAdm};
use shatter::analytics::{impact, AttackerCapability, WindowDpScheduler};
use shatter::dataset::{synthesize, HouseSpec, SynthConfig};
use shatter::hvac::EnergyModel;
use shatter::smarthome::{houses, ApplianceId, ZoneId};

fn monthly_impact(
    model: &EnergyModel,
    adm: &HullAdm,
    cap: &AttackerCapability,
    days: &[shatter::dataset::DayTrace],
) -> f64 {
    let outcomes =
        impact::evaluate_days(model, adm, cap, days, &WindowDpScheduler::default(), true);
    impact::total_attacked_usd(&outcomes) - impact::total_benign_usd(&outcomes)
}

fn main() {
    let home = houses::aras_house_a();
    let month = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, 42));
    let adm = HullAdm::train(&month.prefix_days(10), AdmKind::default_dbscan());
    let model = EnergyModel::standard(home.clone());
    let eval_days = &month.days[10..12];

    let full = AttackerCapability::full(&home);
    let baseline = monthly_impact(&model, &adm, &full, eval_days);
    println!(
        "Attack impact with an unprotected home: ${baseline:.2} over {} days",
        eval_days.len()
    );
    println!();

    // Question 1: which single *zone's* sensors are most worth hardening?
    println!("If we harden one zone's sensors (attacker loses access to it):");
    let mut zone_rank: Vec<(String, f64)> = Vec::new();
    for z in 1..5usize {
        let remaining: Vec<ZoneId> = (1..5usize).filter(|&k| k != z).map(ZoneId).collect();
        let cap = AttackerCapability::full(&home).with_zone_access(remaining);
        let left = monthly_impact(&model, &adm, &cap, eval_days);
        zone_rank.push((home.zones()[z].name.clone(), baseline - left));
    }
    zone_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (name, saved) in &zone_rank {
        println!("  hardening {name:<12} removes ${saved:.2} of attack impact");
    }

    // Question 2: which appliances should lose voice-command reachability?
    println!();
    println!("If we de-voice one appliance (attacker cannot trigger it):");
    let mut app_rank: Vec<(String, f64)> = Vec::new();
    for a in 0..home.appliances().len() {
        let remaining: Vec<ApplianceId> = (0..home.appliances().len())
            .filter(|&k| k != a)
            .map(ApplianceId)
            .collect();
        let cap = AttackerCapability::full(&home).with_appliance_access(remaining);
        let left = monthly_impact(&model, &adm, &cap, eval_days);
        app_rank.push((home.appliances()[a].name.clone(), baseline - left));
    }
    app_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (name, saved) in app_rank.iter().take(5) {
        println!("  de-voicing {name:<14} removes ${saved:.2} of attack impact");
    }

    println!();
    println!(
        "Conclusion (matches paper §VII-D): occupancy/IAQ measurement integrity \
         dominates appliance hardening — protect the sensing path first."
    );
}
