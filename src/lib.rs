//! SHATTER — control- and defense-aware attack analytics for activity-driven
//! smart home systems (reproduction of Haque et al., DSN 2023).
//!
//! This facade crate re-exports the workspace's public API so downstream
//! users depend on a single crate:
//!
//! - [`geometry`] — convex hulls for ADM cluster linearization,
//! - [`smarthome`] — the smart-home domain model,
//! - [`dataset`] — the ARAS-compatible dataset substrate,
//! - [`hvac`] — the demand-controlled HVAC controller and energy pricing,
//! - [`adm`] — clustering-based anomaly detection models,
//! - [`smt`] — the CDCL(T) solver used for formal attack synthesis,
//! - [`analytics`] — the SHATTER attack analytics core,
//! - [`testbed`] — the simulated prototype testbed,
//! - [`engine`] — the scenario engine (registry, fixture cache,
//!   parallel runner, reporters) every evaluation workload runs on.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: synthesize a month of
//! ARAS-like data, train an ADM, and synthesize a stealthy attack schedule.

#![forbid(unsafe_code)]

pub use shatter_adm as adm;
pub use shatter_core as analytics;
pub use shatter_dataset as dataset;
pub use shatter_engine as engine;
pub use shatter_geometry as geometry;
pub use shatter_hvac as hvac;
pub use shatter_smarthome as smarthome;
pub use shatter_smt as smt;
pub use shatter_testbed as testbed;
