//! Offline shim for the subset of the Criterion benchmarking API this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`.
//!
//! Measurement model: each benchmark closure is warmed up once, then run
//! for `sample_size` samples; the mean, min and max wall-clock per
//! iteration are printed in a compact single-line format. No statistical
//! analysis, HTML reports, or baselines — swap in registry Criterion for
//! those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u32,
}

impl Bencher {
    /// Times `f`, recording one sample per configured sample count.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, also reaches cold paths once
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.per_sample_iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / self.per_sample_iters);
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            per_sample_iters: 1,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher)) {
        self.run_one(id.into_id(), f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(id.into_id(), |b| f(b, input));
    }

    /// Ends the group (report already emitted per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut g = self.benchmark_group("bench");
        g.run_one(id.into_id(), f);
        g.finish();
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{id:<40} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
        min,
        mean,
        max,
        samples.len()
    );
}

/// Declares a group-runner function over `&mut Criterion`, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
