//! Offline shim for the subset of `proptest` this workspace uses: the
//! [`proptest!`] macro, range/tuple/`vec`/`Just`/`any::<bool>()`
//! strategies, `prop_map`/`prop_flat_map`, and `prop_assert*`.
//!
//! Semantics: each property runs `ProptestConfig::cases` iterations with
//! inputs sampled from a deterministic per-test RNG (seeded from the test
//! name and case index). There is **no shrinking** — a failing case
//! reports the assertion directly. This preserves the tests' coverage
//! value while keeping the tree buildable without network access.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Deterministic test-input RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from the test name and case index, so every case of every
    /// property is reproducible.
    pub fn from_parts(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-property configuration (subset: case count).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" (implemented for the types the tests
/// request).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length specification for [`vec`]: a half-open or inclusive
        /// `usize` range (plain integer literals infer to `usize` through
        /// the `Into<SizeRange>` bound, as in real proptest).
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// Strategy yielding vectors of `element` with lengths drawn from
        /// `size`.
        pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<E> {
            element: E,
            size: SizeRange,
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
                let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
                let n = self.size.lo + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Asserts a property-test condition (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Implementation muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr); ) => {};
    ( cfg = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strat = ( $($strat,)+ );
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::from_parts(stringify!($name), case);
                let ( $($arg,)+ ) = $crate::Strategy::sample(&strat, &mut rng);
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0usize..4, any::<bool>()), 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            for (n, _) in &v {
                prop_assert!(*n < 4);
            }
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k {k} n {n}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let s = (0u64..1000, 0.0f64..1.0);
        let mut r1 = crate::TestRng::from_parts("t", 3);
        let mut r2 = crate::TestRng::from_parts("t", 3);
        assert_eq!(
            crate::Strategy::sample(&s, &mut r1).0,
            crate::Strategy::sample(&s, &mut r2).0
        );
    }
}
