//! Offline shim for the `parking_lot::Mutex` subset this workspace uses:
//! an infallible `lock()` built on `std::sync::Mutex` (poisoning is
//! ignored, matching parking_lot's semantics).

#![forbid(unsafe_code)]

use std::sync::MutexGuard;

/// Mutex with parking_lot's panic-transparent `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
