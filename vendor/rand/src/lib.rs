//! Offline, in-tree shim for the subset of the `rand` 0.9 API this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] and [`Rng::random_range`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 core of the real `StdRng`, but a high-quality, deterministic
//! PRNG that is more than adequate for the statistical workloads here
//! (data synthesis, k-means++ seeding, randomized tests). Replace this
//! crate with the registry `rand` to get the upstream implementation.

#![forbid(unsafe_code)]

/// A source of random `u64`s plus the derived sampling helpers.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform
    /// over their full range).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Draws one value from the standard distribution of `Self`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            let v = rng.random_range(-15i64..=15);
            assert!((-15..=15).contains(&v));
            let u = rng.random_range(3usize..9);
            assert!((3..9).contains(&u));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match rng.random_range(0u32..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
