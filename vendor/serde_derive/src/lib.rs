//! Offline shim for `serde_derive`: the derives emit *marker* trait
//! impls (the shim `serde::Serialize`/`serde::Deserialize` traits have no
//! required items). This keeps `#[derive(Serialize, Deserialize)]`
//! compiling without network access; swapping in the real serde restores
//! full (de)serialization.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the first `struct` or `enum` keyword,
/// skipping attributes and doc comments.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    None
}

/// Marker derive for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input).expect("serde_derive shim: no struct/enum name");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl parses")
}

/// Marker derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input).expect("serde_derive shim: no struct/enum name");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl parses")
}
