//! Offline shim for the `bytes` crate subset this workspace uses:
//! [`Bytes`]/[`BytesMut`] big-endian cursor reads/writes, `freeze`,
//! `slice`, `split_to`, `from_static`. Backed by plain `Vec<u8>` — no
//! zero-copy sharing, which the in-process testbed transport does not
//! need.

#![forbid(unsafe_code)]

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads a big-endian `u16`, advancing the cursor.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `f64`, advancing the cursor.
    fn get_f64(&mut self) -> f64;
}

/// Write-side operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new buffer over the given unread-byte range.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `n` unread bytes, advancing self.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        head
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u16(&mut self) -> u16 {
        let b = self.split_to(2);
        u16::from_be_bytes([b.data[0], b.data[1]])
    }

    fn get_f64(&mut self) -> f64 {
        let b = self.split_to(8);
        let mut a = [0u8; 8];
        a.copy_from_slice(&b.data);
        f64::from_be_bytes(a)
    }
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u16_f64() {
        let mut b = BytesMut::with_capacity(10);
        b.put_u16(513);
        b.put_f64(-2.5);
        b.put_slice(b"ab");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u16(), 513);
        assert_eq!(r.get_f64(), -2.5);
        assert_eq!(r.to_vec(), b"ab");
    }

    #[test]
    fn slice_and_split() {
        let mut r = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = r.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.slice(1..3).to_vec(), vec![4, 5]);
    }
}
