//! Offline shim for the `crossbeam::channel` subset this workspace uses
//! (`unbounded`, `Sender::send`, `Receiver::{try_recv, try_iter}`),
//! implemented over `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_try_iter_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(rx.try_recv().is_err());
    }
}
