//! Offline shim for `serde`: marker `Serialize`/`Deserialize` traits with
//! no required items, plus the matching marker derives. The workspace
//! only *derives* these traits on domain types (no serializer is ever
//! invoked — CSV and JSON output are hand-rolled), so empty markers
//! preserve the API without pulling in the real crate. Swap the `path`
//! dependency for registry serde to restore full functionality.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
