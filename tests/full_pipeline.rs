//! End-to-end integration tests: synthesize → train ADM → attack →
//! validate stealth and impact, across crates.

use shatter::adm::{AdmKind, HullAdm};
use shatter::analytics::{
    biota::detection_rate, impact, AttackSchedule, AttackerCapability, BiotaScheduler,
    GreedyScheduler, Scheduler, SmtScheduler, WindowDpScheduler,
};
use shatter::dataset::episodes::extract_episodes;
use shatter::dataset::{synthesize, HouseSpec, SynthConfig};
use shatter::hvac::{DchvacController, EnergyModel};
use shatter::smarthome::{OccupantId, MINUTES_PER_DAY};

fn fixture(
    house: HouseSpec,
    seed: u64,
) -> (
    EnergyModel,
    shatter::dataset::Dataset,
    HullAdm,
    AttackerCapability,
) {
    let home = house.home.build();
    let ds = synthesize(&SynthConfig::new(house, 14, seed));
    let adm = HullAdm::train(&ds.prefix_days(12), AdmKind::default_kmeans());
    let model = EnergyModel::standard(home.clone());
    let cap = AttackerCapability::full(&home);
    (model, ds, adm, cap)
}

#[test]
fn dp_attack_is_stealthy_across_seeds_and_houses() {
    for house in [HouseSpec::aras_a(), HouseSpec::aras_b()] {
        for seed in [1u64, 2, 3] {
            let (model, ds, adm, cap) = fixture(house.clone(), seed);
            let table = shatter::analytics::RewardTable::build(&model);
            for day in &ds.days[12..14] {
                let sched = WindowDpScheduler::default().schedule(&table, &adm, &cap, day);
                sched
                    .validate(&adm, &cap, day)
                    .unwrap_or_else(|e| panic!("{house:?} seed {seed} day {}: {e}", day.day));
            }
        }
    }
}

#[test]
fn attack_cost_ordering_matches_paper_table5() {
    // BIoTA (no ADM) >= SHATTER >= benign; BIoTA heavily detected,
    // SHATTER essentially undetected.
    let (model, ds, adm, cap) = fixture(HouseSpec::aras_a(), 7);
    let days = &ds.days[12..14];
    let biota = impact::evaluate_days(&model, &adm, &cap, days, &BiotaScheduler, false);
    let shatter = impact::evaluate_days(
        &model,
        &adm,
        &cap,
        days,
        &WindowDpScheduler::default(),
        false,
    );
    let biota_cost = impact::total_attacked_usd(&biota);
    let shatter_cost = impact::total_attacked_usd(&shatter);
    let benign = impact::total_benign_usd(&shatter);
    assert!(biota_cost >= shatter_cost, "{biota_cost} vs {shatter_cost}");
    assert!(shatter_cost >= benign, "{shatter_cost} vs {benign}");
    let biota_detect: f64 =
        biota.iter().map(|o| o.detection_rate).sum::<f64>() / biota.len() as f64;
    let shatter_detect: f64 =
        shatter.iter().map(|o| o.detection_rate).sum::<f64>() / shatter.len() as f64;
    assert!(biota_detect >= 0.6, "biota detection {biota_detect}");
    assert!(shatter_detect <= 0.05, "shatter detection {shatter_detect}");
}

#[test]
fn occupant_count_is_conserved_by_every_scheduler() {
    // Paper Eq. 13/18: every occupant is reported in exactly one zone per
    // slot, so total reported presence equals total actual presence.
    let (model, ds, adm, cap) = fixture(HouseSpec::aras_b(), 9);
    let table = shatter::analytics::RewardTable::build(&model);
    let day = &ds.days[12];
    for sched in [
        WindowDpScheduler::default().schedule(&table, &adm, &cap, day),
        GreedyScheduler.schedule(&table, &adm, &cap, day),
        BiotaScheduler.schedule(&table, &adm, &cap, day),
    ] {
        for row in &sched.zones {
            assert_eq!(row.len(), MINUTES_PER_DAY);
        }
        assert_eq!(sched.n_occupants(), 2);
    }
}

#[test]
fn smt_and_dp_windows_agree_on_committed_value() {
    let (model, ds, adm, cap) = fixture(HouseSpec::aras_a(), 4);
    let table = shatter::analytics::RewardTable::build(&model);
    let day = &ds.days[12];
    let (smt_row, stats) =
        SmtScheduler::default().schedule_occupant(OccupantId(0), &table, &adm, &cap, day, 40);
    assert_eq!(stats.windows, 4);
    // DP with triggers disabled shares the SMT objective exactly.
    let dp = WindowDpScheduler {
        trigger_aware: false,
        ..Default::default()
    }
    .schedule(&table, &adm, &cap, day);
    let value = |row: &[shatter::smarthome::ZoneId]| -> f64 {
        row.iter()
            .enumerate()
            .map(|(t, &z)| table.rate(OccupantId(0), z, t as u32))
            .sum()
    };
    let smt_v = value(&smt_row);
    let dp_v = value(&dp.zones[0][..40]);
    assert!(
        (smt_v - dp_v).abs() <= 0.25 * dp_v.max(1e-9) + 1e-9,
        "smt {smt_v} vs dp {dp_v}"
    );
}

#[test]
fn triggering_never_decreases_cost_and_stays_unnoticed() {
    let (model, ds, adm, cap) = fixture(HouseSpec::aras_a(), 12);
    let day = &ds.days[13];
    let without = impact::evaluate_day(
        &model,
        &adm,
        &cap,
        day,
        &WindowDpScheduler::default(),
        false,
    );
    let with = impact::evaluate_day(&model, &adm, &cap, day, &WindowDpScheduler::default(), true);
    assert!(with.attacked_cost_usd >= without.attacked_cost_usd - 1e-9);
    assert!(with.detection_rate <= 0.05);
}

#[test]
fn benign_trace_raises_no_alarm_for_kmeans_adm() {
    // K-Means clusters every training point; a benign trace from the
    // training distribution should pass almost entirely.
    let (_, ds, adm, _) = fixture(HouseSpec::aras_a(), 3);
    let eps = extract_episodes(&ds.prefix_days(12));
    let bad = adm.inconsistent_episodes(&eps);
    assert!(bad.is_empty(), "{} training episodes flagged", bad.len());
}

#[test]
fn identity_attack_costs_exactly_benign() {
    let (model, ds, adm, _) = fixture(HouseSpec::aras_a(), 5);
    let day = &ds.days[12];
    let identity = AttackSchedule::from_actual(day);
    assert_eq!(detection_rate(&adm, &identity, day), 0.0);
    let benign_cost = model.day_cost(&DchvacController, day).total_usd();
    // Re-pricing the identical trace gives the identical cost.
    let plan = shatter::analytics::trigger::TriggerPlan {
        on: vec![Vec::new(); MINUTES_PER_DAY],
    };
    let attacked = impact::attacked_day_trace(day, &identity, &plan);
    let replay_cost = model.day_cost(&DchvacController, &attacked).total_usd();
    assert!((benign_cost - replay_cost).abs() < 1e-9);
}

#[test]
fn restricted_capabilities_shrink_impact_monotonically() {
    use shatter::smarthome::ZoneId;
    let (model, ds, adm, full) = fixture(HouseSpec::aras_a(), 8);
    let days = &ds.days[12..14];
    let sched = WindowDpScheduler::default();
    let impact_of = |cap: &AttackerCapability| -> f64 {
        let o = impact::evaluate_days(&model, &adm, cap, days, &sched, true);
        impact::total_attacked_usd(&o) - impact::total_benign_usd(&o)
    };
    let all = impact_of(&full);
    let three = impact_of(
        &full
            .clone()
            .with_zone_access([ZoneId(1), ZoneId(2), ZoneId(3)]),
    );
    let two = impact_of(&full.clone().with_zone_access([ZoneId(2), ZoneId(3)]));
    assert!(all >= three - 1e-6, "all {all} < three {three}");
    assert!(three >= two - 1e-6, "three {three} < two {two}");
}
