//! Cross-crate property-based tests on the framework's core invariants.

use proptest::prelude::*;

use shatter::adm::{AdmKind, HullAdm};
use shatter::analytics::{trigger, AttackerCapability, RewardTable, Scheduler, WindowDpScheduler};
use shatter::dataset::episodes::extract_episodes;
use shatter::dataset::{synthesize, HouseSpec, SynthConfig};
use shatter::hvac::{DchvacController, EnergyModel};
use shatter::smarthome::{houses, MINUTES_PER_DAY};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every stay episode the DP attack reports is either ADM-consistent
    /// or mirrors genuine behaviour — across random seeds and houses.
    #[test]
    fn dp_schedules_are_always_stealthy(seed in 0u64..500, house_a in any::<bool>()) {
        let house = if house_a { HouseSpec::aras_a() } else { HouseSpec::aras_b() };
        let home = if house_a { houses::aras_house_a() } else { houses::aras_house_b() };
        let ds = synthesize(&SynthConfig::new(house, 12, seed));
        let adm = HullAdm::train(&ds.prefix_days(10), AdmKind::default_kmeans());
        let model = EnergyModel::standard(home.clone());
        let table = RewardTable::build(&model);
        let cap = AttackerCapability::full(&home);
        let day = &ds.days[11];
        let sched = WindowDpScheduler::default().schedule(&table, &adm, &cap, day);
        prop_assert!(sched.validate(&adm, &cap, day).is_ok());
    }

    /// The attack never loses money: reported loads dominate actual loads
    /// under the activity-aware controller.
    #[test]
    fn attacked_cost_at_least_benign(seed in 0u64..200) {
        let home = houses::aras_house_a();
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, seed));
        let adm = HullAdm::train(&ds.prefix_days(10), AdmKind::default_kmeans());
        let model = EnergyModel::standard(home.clone());
        let cap = AttackerCapability::full(&home);
        let out = shatter::analytics::impact::evaluate_day(
            &model, &adm, &cap, &ds.days[11], &WindowDpScheduler::default(), false,
        );
        // Small tolerance: the scheduler maximizes the reported-activity
        // proxy, actual activities can locally be marginally pricier.
        prop_assert!(
            out.attacked_cost_usd >= out.benign_cost_usd * 0.98,
            "attacked {} benign {}",
            out.attacked_cost_usd,
            out.benign_cost_usd
        );
    }

    /// Appliance triggering only fires in zones whose genuine occupants
    /// cannot notice (empty or unaware), never re-triggers a running
    /// appliance, and respects D^A.
    #[test]
    fn trigger_plan_invariants(seed in 0u64..200) {
        let home = houses::aras_house_a();
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, seed));
        let adm = HullAdm::train(&ds.prefix_days(10), AdmKind::default_kmeans());
        let model = EnergyModel::standard(home.clone());
        let table = RewardTable::build(&model);
        let cap = AttackerCapability::full(&home);
        let day = &ds.days[10];
        let sched = WindowDpScheduler::default().schedule(&table, &adm, &cap, day);
        let plan = trigger::plan_triggers(&home, &adm, &cap, day, &sched);
        for (t, apps) in plan.on.iter().enumerate() {
            for aid in apps {
                let a = home.appliance(*aid);
                prop_assert!(!day.minutes[t].appliances[aid.index()]);
                for os in &day.minutes[t].occupants {
                    prop_assert!(os.zone != a.zone || os.activity.is_unaware());
                }
            }
        }
    }

    /// The per-minute energy decomposition is internally consistent:
    /// day cost equals the battery-priced sum of its minutes.
    #[test]
    fn day_cost_decomposition(seed in 0u64..200) {
        let home = houses::aras_house_a();
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 2, seed));
        let model = EnergyModel::standard(home);
        let dc = model.day_cost(&DchvacController, &ds.days[0]);
        prop_assert_eq!(dc.minutes.len(), MINUTES_PER_DAY);
        let kwh: f64 = dc.minutes.iter().map(|m| m.total_kwh()).sum();
        let lo = kwh * model.pricing.offpeak_usd_per_kwh;
        let hi = kwh * model.pricing.peak_usd_per_kwh;
        prop_assert!(dc.total_usd() >= lo - 1e-9 && dc.total_usd() <= hi + 1e-9);
    }

    /// Episode extraction is a partition: stays tile each day exactly and
    /// training a model from them covers the training data (K-Means).
    #[test]
    fn episode_partition_and_coverage(seed in 0u64..200, days in 2usize..6) {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_b(), days, seed));
        let eps = extract_episodes(&ds);
        for d in 0..days as u32 {
            for o in 0..ds.n_occupants {
                let total: u32 = eps
                    .iter()
                    .filter(|e| e.day == d && e.occupant.index() == o)
                    .map(|e| e.stay)
                    .sum();
                prop_assert_eq!(total, MINUTES_PER_DAY as u32);
            }
        }
        let adm = HullAdm::train(&ds, AdmKind::default_kmeans());
        prop_assert!(adm.inconsistent_episodes(&eps).is_empty());
    }
}
