use serde::{Deserialize, Serialize};

use shatter_smarthome::{Activity, ZoneId, MINUTES_PER_DAY};

/// The state of one occupant during one minute: where they are and what
/// they are doing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupantState {
    /// Zone the occupant resides in (RFID tracking, `S^OT` in the paper).
    pub zone: ZoneId,
    /// Activity label (ARAS activity codes).
    pub activity: Activity,
}

/// One sampling slot (one minute) of the whole home.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinuteRecord {
    /// Per-occupant states, indexed by `OccupantId`.
    pub occupants: Vec<OccupantState>,
    /// Appliance on/off states (`S^D`), indexed by `ApplianceId`.
    pub appliances: Vec<bool>,
}

/// A full day of per-minute records (always [`MINUTES_PER_DAY`] slots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayTrace {
    /// Day index within the dataset (0-based).
    pub day: u32,
    /// Exactly [`MINUTES_PER_DAY`] records.
    pub minutes: Vec<MinuteRecord>,
}

impl DayTrace {
    /// The record at a given minute of day.
    ///
    /// # Panics
    ///
    /// Panics if `minute >= MINUTES_PER_DAY`.
    pub fn at(&self, minute: usize) -> &MinuteRecord {
        &self.minutes[minute]
    }
}

/// An ARAS-schema dataset: a sequence of day traces for one house.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// House label, e.g. `"ARAS House A"`.
    pub house: String,
    /// Number of occupants per record.
    pub n_occupants: usize,
    /// Number of appliances per record.
    pub n_appliances: usize,
    /// The day traces, in chronological order.
    pub days: Vec<DayTrace>,
}

impl Dataset {
    /// Validates structural invariants: every day has 1440 slots and every
    /// record has the declared occupant/appliance counts.
    pub fn validate(&self) -> Result<(), String> {
        for d in &self.days {
            if d.minutes.len() != MINUTES_PER_DAY {
                return Err(format!(
                    "day {} has {} slots, expected {MINUTES_PER_DAY}",
                    d.day,
                    d.minutes.len()
                ));
            }
            for (m, rec) in d.minutes.iter().enumerate() {
                if rec.occupants.len() != self.n_occupants {
                    return Err(format!("day {} minute {m}: bad occupant count", d.day));
                }
                if rec.appliances.len() != self.n_appliances {
                    return Err(format!("day {} minute {m}: bad appliance count", d.day));
                }
            }
        }
        Ok(())
    }

    /// Returns the sub-dataset containing only days `[0, n_days)` — the
    /// paper's progressive-training splits use day prefixes.
    pub fn prefix_days(&self, n_days: usize) -> Dataset {
        Dataset {
            house: self.house.clone(),
            n_occupants: self.n_occupants,
            n_appliances: self.n_appliances,
            days: self.days.iter().take(n_days).cloned().collect(),
        }
    }

    /// Returns the sub-dataset containing days `[from, ..)`.
    pub fn suffix_days(&self, from: usize) -> Dataset {
        Dataset {
            house: self.house.clone(),
            n_occupants: self.n_occupants,
            n_appliances: self.n_appliances,
            days: self.days.iter().skip(from).cloned().collect(),
        }
    }

    /// Splits into `(train, test)` at the given day boundary.
    pub fn split_at_day(&self, day: usize) -> (Dataset, Dataset) {
        (self.prefix_days(day), self.suffix_days(day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n_days: usize) -> Dataset {
        let rec = MinuteRecord {
            occupants: vec![OccupantState {
                zone: ZoneId(0),
                activity: Activity::GoingOut,
            }],
            appliances: vec![false, true],
        };
        Dataset {
            house: "T".into(),
            n_occupants: 1,
            n_appliances: 2,
            days: (0..n_days as u32)
                .map(|day| DayTrace {
                    day,
                    minutes: vec![rec.clone(); MINUTES_PER_DAY],
                })
                .collect(),
        }
    }

    #[test]
    fn validate_accepts_consistent_data() {
        assert!(tiny(2).validate().is_ok());
    }

    #[test]
    fn validate_rejects_short_day() {
        let mut d = tiny(1);
        d.days[0].minutes.pop();
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_occupant_count() {
        let mut d = tiny(1);
        d.days[0].minutes[5].occupants.clear();
        assert!(d.validate().is_err());
    }

    #[test]
    fn split_preserves_days() {
        let d = tiny(10);
        let (tr, te) = d.split_at_day(7);
        assert_eq!(tr.days.len(), 7);
        assert_eq!(te.days.len(), 3);
        assert_eq!(te.days[0].day, 7);
    }
}
