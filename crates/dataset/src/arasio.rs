//! ARAS raw-file format support.
//!
//! The original ARAS release stores one file per day, one line per second
//! (we use minutes, the paper's controller sampling rate), each line being
//! 22 space-separated integers: 20 binary ambient-sensor readings followed
//! by the two residents' activity labels (1–27).
//!
//! This module renders our [`Dataset`] into that exact line format (so
//! downstream ARAS tooling can consume synthetic data) and parses it back.
//! Sensor semantics follow the ARAS House A deployment: force/contact/
//! photocell sensors keyed to zones plus appliance contact sensors.

use std::fmt::Write as _;

use shatter_smarthome::{Activity, ZoneId, MINUTES_PER_DAY};

use crate::{Dataset, DayTrace, MinuteRecord, OccupantState};

/// Number of binary sensor columns in an ARAS line.
pub const ARAS_SENSOR_COLUMNS: usize = 20;

/// Maps a minute record to the 20 ARAS binary sensor readings.
///
/// Columns 0–4: zone presence (photocell/force) for zones 0–4 — a bit is
/// set when any occupant is in the zone. Columns 5–17: appliance contact
/// sensors (13 appliances). Columns 18–19: door contact sensors, derived
/// from occupants being away (column 18) and bathroom-door closed
/// (column 19).
pub fn sensor_row(record: &MinuteRecord) -> [u8; ARAS_SENSOR_COLUMNS] {
    let mut row = [0u8; ARAS_SENSOR_COLUMNS];
    for os in &record.occupants {
        if os.zone.index() < 5 {
            row[os.zone.index()] = 1;
        }
    }
    for (i, &on) in record.appliances.iter().take(13).enumerate() {
        row[5 + i] = u8::from(on);
    }
    row[18] = u8::from(record.occupants.iter().any(|os| os.zone == ZoneId(0)));
    row[19] = u8::from(
        record
            .occupants
            .iter()
            .any(|os| os.zone == ZoneId(4) && os.activity == Activity::HavingShower),
    );
    row
}

/// Renders one day as ARAS raw text (1440 lines).
pub fn day_to_aras(day: &DayTrace) -> String {
    let mut out = String::with_capacity(MINUTES_PER_DAY * 50);
    for rec in &day.minutes {
        let sensors = sensor_row(rec);
        for s in sensors {
            let _ = write!(out, "{s} ");
        }
        let mut acts = rec.occupants.iter().map(|o| o.activity.code());
        let a1 = acts.next().unwrap_or(27);
        let a2 = acts.next().unwrap_or(27);
        let _ = writeln!(out, "{a1} {a2}");
    }
    out
}

/// Error parsing ARAS raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArasParseError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ArasParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ARAS line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ArasParseError {}

/// Parses one day of ARAS raw text back into a [`DayTrace`].
///
/// Zone locations are reconstructed from the activity labels (the ARAS
/// convention: the activity determines the room), and appliance states
/// from the contact-sensor columns.
///
/// # Errors
///
/// Returns [`ArasParseError`] on malformed lines or bad label codes.
pub fn day_from_aras(text: &str, day: u32) -> Result<DayTrace, ArasParseError> {
    let mut minutes = Vec::with_capacity(MINUTES_PER_DAY);
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != ARAS_SENSOR_COLUMNS + 2 {
            return Err(ArasParseError {
                line: i + 1,
                message: format!("expected 22 fields, got {}", fields.len()),
            });
        }
        let mut appliances = Vec::with_capacity(13);
        for f in &fields[5..18] {
            match *f {
                "0" => appliances.push(false),
                "1" => appliances.push(true),
                other => {
                    return Err(ArasParseError {
                        line: i + 1,
                        message: format!("bad sensor bit {other:?}"),
                    })
                }
            }
        }
        let mut occupants = Vec::with_capacity(2);
        for f in &fields[ARAS_SENSOR_COLUMNS..] {
            let code: u8 = f.parse().map_err(|e| ArasParseError {
                line: i + 1,
                message: format!("bad activity label: {e}"),
            })?;
            let activity = Activity::from_code(code).ok_or_else(|| ArasParseError {
                line: i + 1,
                message: format!("unknown activity code {code}"),
            })?;
            occupants.push(OccupantState {
                zone: crate::default_zone_for(activity),
                activity,
            });
        }
        minutes.push(MinuteRecord {
            occupants,
            appliances,
        });
    }
    if minutes.len() != MINUTES_PER_DAY {
        return Err(ArasParseError {
            line: 0,
            message: format!("expected {MINUTES_PER_DAY} lines, got {}", minutes.len()),
        });
    }
    Ok(DayTrace { day, minutes })
}

/// Renders a whole dataset as per-day ARAS texts.
pub fn dataset_to_aras(ds: &Dataset) -> Vec<String> {
    ds.days.iter().map(day_to_aras).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, HouseSpec, SynthConfig};

    #[test]
    fn line_shape() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 1, 2));
        let text = day_to_aras(&ds.days[0]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), MINUTES_PER_DAY);
        for l in &lines {
            assert_eq!(l.split_whitespace().count(), 22);
        }
    }

    #[test]
    fn roundtrip_preserves_activities_and_appliances() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 2, 5));
        for day in &ds.days {
            let text = day_to_aras(day);
            let back = day_from_aras(&text, day.day).unwrap();
            for (orig, parsed) in day.minutes.iter().zip(&back.minutes) {
                assert_eq!(orig.appliances, parsed.appliances);
                for (a, b) in orig.occupants.iter().zip(&parsed.occupants) {
                    assert_eq!(a.activity, b.activity);
                }
            }
        }
    }

    #[test]
    fn zone_reconstruction_matches_generator_convention() {
        // The synthetic generator also places occupants via
        // default_zone_for, so the zone reconstruction is exact.
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_b(), 1, 9));
        let day = &ds.days[0];
        let back = day_from_aras(&day_to_aras(day), 0).unwrap();
        assert_eq!(day.minutes, back.minutes);
    }

    #[test]
    fn presence_bits_match_occupancy() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 1, 7));
        for rec in &ds.days[0].minutes {
            let row = sensor_row(rec);
            #[allow(clippy::needless_range_loop)]
            for z in 0..5usize {
                let expect = rec.occupants.iter().any(|o| o.zone.index() == z);
                assert_eq!(row[z] == 1, expect);
            }
        }
    }

    #[test]
    fn rejects_short_day() {
        let err = day_from_aras("0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 10 10\n", 0).unwrap_err();
        assert!(err.message.contains("expected 1440"));
    }

    #[test]
    fn rejects_bad_field_count() {
        let err = day_from_aras("1 2 3\n", 0).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_unknown_activity() {
        let line = format!("{}99 10\n", "0 ".repeat(20));
        let err = day_from_aras(&line, 0).unwrap_err();
        assert!(err.message.contains("unknown activity"));
    }
}
