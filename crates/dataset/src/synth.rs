use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shatter_smarthome::{Activity, ZoneId, MINUTES_PER_DAY};

use crate::spec::{HouseSpec, PersonaSpec};
use crate::{Dataset, DayTrace, MinuteRecord, OccupantState};

/// Configuration of the synthetic ARAS-schema generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Which house to synthesize: topology and per-occupant personas.
    pub spec: HouseSpec,
    /// Number of days to generate (the paper uses a 30-day month).
    pub days: usize,
    /// RNG seed; identical configs produce identical datasets.
    pub seed: u64,
}

impl SynthConfig {
    /// Creates a config.
    pub fn new(spec: HouseSpec, days: usize, seed: u64) -> Self {
        SynthConfig { spec, days, seed }
    }

    /// The standard month-long configuration used by the evaluation.
    pub fn month(spec: HouseSpec, seed: u64) -> Self {
        SynthConfig::new(spec, 30, seed)
    }
}

/// The canonical zone an activity takes place in, for the ARAS room layout
/// (Outside, Bedroom, Livingroom, Kitchen, Bathroom). Non-ARAS houses
/// route this class through each persona's
/// [`crate::spec::ActivityAnchors`].
pub fn default_zone_for(activity: Activity) -> ZoneId {
    use Activity::*;
    match activity {
        GoingOut => ZoneId(0),
        Sleeping | Napping | ChangingClothes => ZoneId(1),
        WatchingTv | Studying | UsingInternet | ReadingBook | ListeningToMusic | TalkingOnPhone
        | HavingConversation | HavingGuest | HavingSnack | Other | Cleaning => ZoneId(2),
        PreparingBreakfast | HavingBreakfast | PreparingLunch | HavingLunch | PreparingDinner
        | HavingDinner | WashingDishes => ZoneId(3),
        HavingShower | Toileting | Shaving | BrushingTeeth | Laundry => ZoneId(4),
    }
}

/// Box–Muller Gaussian sample clamped to `[min, max]`, rounded to minutes.
fn gauss_minutes(rng: &mut StdRng, mean: f64, sd: f64, min: f64, max: f64) -> u32 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + sd * z).clamp(min, max).round() as u32
}

/// One contiguous activity block in a day plan.
#[derive(Debug, Clone, Copy)]
struct Segment {
    activity: Activity,
    duration: u32,
}

/// Idle home activities to fill gaps with (livingroom-centric).
const IDLE: [Activity; 5] = [
    Activity::WatchingTv,
    Activity::UsingInternet,
    Activity::Studying,
    Activity::ReadingBook,
    Activity::ListeningToMusic,
];

fn idle_segment(rng: &mut StdRng) -> Segment {
    let activity = IDLE[rng.random_range(0..IDLE.len())];
    Segment {
        activity,
        duration: gauss_minutes(rng, 55.0, 18.0, 20.0, 120.0),
    }
}

/// Builds one occupant's full-day plan as a sequence of segments summing to
/// exactly [`MINUTES_PER_DAY`] minutes, driven entirely by the occupant's
/// [`PersonaSpec`] parameters.
fn day_plan(rng: &mut StdRng, p: &PersonaSpec, day: u32) -> Vec<Segment> {
    let weekend = matches!(day % 7, 5 | 6);
    let mut plan: Vec<Segment> = Vec::new();
    let mut t: u32 = 0;

    let push = |plan: &mut Vec<Segment>, t: &mut u32, s: Segment| {
        if *t >= MINUTES_PER_DAY as u32 || s.duration == 0 {
            return;
        }
        let dur = s.duration.min(MINUTES_PER_DAY as u32 - *t);
        plan.push(Segment {
            activity: s.activity,
            duration: dur,
        });
        *t += dur;
    };

    // Night sleep carried over from the previous evening.
    let wake_mean = if weekend {
        p.wake_mean + 50.0
    } else {
        p.wake_mean
    };
    let wake = gauss_minutes(rng, wake_mean, 14.0, 300.0, 600.0);
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::Sleeping,
            duration: wake,
        },
    );

    // Morning routine.
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::Toileting,
            duration: gauss_minutes(rng, 7.0, 2.0, 3.0, 14.0),
        },
    );
    if p.shower_in_morning || rng.random::<f64>() < 0.35 {
        push(
            &mut plan,
            &mut t,
            Segment {
                activity: Activity::HavingShower,
                duration: gauss_minutes(rng, 22.0, 4.0, 12.0, 34.0),
            },
        );
    }
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::PreparingBreakfast,
            duration: gauss_minutes(rng, 17.0, 4.0, 8.0, 30.0),
        },
    );
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::HavingBreakfast,
            duration: gauss_minutes(rng, 14.0, 3.0, 7.0, 25.0),
        },
    );

    // Work block.
    let works = !weekend && rng.random::<f64>() < p.work_prob_weekday;
    if works {
        push(
            &mut plan,
            &mut t,
            Segment {
                activity: Activity::GoingOut,
                duration: gauss_minutes(rng, p.work_duration_mean, 35.0, 180.0, 700.0),
            },
        );
    }

    // Daytime at home until dinner prep (~18:20).
    let dinner_prep_start = gauss_minutes(rng, 1100.0, 12.0, 1050.0, 1160.0);
    while t + 20 < dinner_prep_start {
        // Lunch window for occupants who are home around 12:15.
        if !works && (730..790).contains(&t) {
            push(
                &mut plan,
                &mut t,
                Segment {
                    activity: Activity::PreparingLunch,
                    duration: gauss_minutes(rng, 20.0, 4.0, 10.0, 32.0),
                },
            );
            push(
                &mut plan,
                &mut t,
                Segment {
                    activity: Activity::HavingLunch,
                    duration: gauss_minutes(rng, 17.0, 3.0, 9.0, 28.0),
                },
            );
            push(
                &mut plan,
                &mut t,
                Segment {
                    activity: Activity::WashingDishes,
                    duration: gauss_minutes(rng, 8.0, 2.0, 4.0, 14.0),
                },
            );
            continue;
        }
        // Occasional chores.
        let roll: f64 = rng.random();
        if roll < 0.10 {
            push(
                &mut plan,
                &mut t,
                Segment {
                    activity: Activity::Cleaning,
                    duration: gauss_minutes(rng, 32.0, 8.0, 15.0, 55.0),
                },
            );
        } else if roll < 0.17 {
            push(
                &mut plan,
                &mut t,
                Segment {
                    activity: Activity::Laundry,
                    duration: gauss_minutes(rng, 24.0, 5.0, 12.0, 40.0),
                },
            );
        } else if roll < 0.25 && (780..1020).contains(&t) {
            push(
                &mut plan,
                &mut t,
                Segment {
                    activity: Activity::Napping,
                    duration: gauss_minutes(rng, 45.0, 12.0, 20.0, 90.0),
                },
            );
        } else {
            push(&mut plan, &mut t, idle_segment(rng));
        }
    }
    // Align to dinner prep.
    if t < dinner_prep_start {
        let gap = dinner_prep_start - t;
        push(
            &mut plan,
            &mut t,
            Segment {
                activity: IDLE[rng.random_range(0..IDLE.len())],
                duration: gap,
            },
        );
    }

    // Evening routine.
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::PreparingDinner,
            duration: gauss_minutes(rng, 24.0, 5.0, 12.0, 38.0),
        },
    );
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::HavingDinner,
            duration: gauss_minutes(rng, 23.0, 4.0, 12.0, 35.0),
        },
    );
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::WashingDishes,
            duration: gauss_minutes(rng, 9.0, 2.0, 4.0, 15.0),
        },
    );
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::WatchingTv,
            duration: gauss_minutes(rng, p.evening_tv_mean, 20.0, 30.0, 170.0),
        },
    );
    push(
        &mut plan,
        &mut t,
        Segment {
            activity: Activity::BrushingTeeth,
            duration: gauss_minutes(rng, 5.0, 1.5, 2.0, 9.0),
        },
    );
    // Sleep fills the rest of the day.
    if t < MINUTES_PER_DAY as u32 {
        let rest = MINUTES_PER_DAY as u32 - t;
        push(
            &mut plan,
            &mut t,
            Segment {
                activity: Activity::Sleeping,
                duration: rest,
            },
        );
    }
    debug_assert_eq!(
        plan.iter().map(|s| s.duration).sum::<u32>(),
        MINUTES_PER_DAY as u32
    );
    plan
}

/// Generates a synthetic ARAS-schema dataset for the given configuration.
///
/// Appliance states are derived from occupant activity: an appliance is on
/// during a minute iff some occupant in its zone performs one of its linked
/// activities (the paper's activity–appliance relationship, §II reason 2).
///
/// # Panics
///
/// Panics when the spec's persona count does not match its home's
/// occupant count.
pub fn synthesize(config: &SynthConfig) -> Dataset {
    let home = config.spec.home.build();
    let n_occupants = home.occupants().len();
    assert_eq!(
        n_occupants,
        config.spec.personas.len(),
        "one persona per occupant"
    );
    let n_appliances = home.appliances().len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut days = Vec::with_capacity(config.days);
    for day in 0..config.days as u32 {
        // Expand each occupant's plan into a per-minute state row.
        let mut states: Vec<Vec<OccupantState>> = Vec::with_capacity(n_occupants);
        for persona in &config.spec.personas {
            let plan = day_plan(&mut rng, persona, day);
            let mut row = Vec::with_capacity(MINUTES_PER_DAY);
            for seg in plan {
                let zone = persona.anchors.zone_for(seg.activity);
                for _ in 0..seg.duration {
                    row.push(OccupantState {
                        zone,
                        activity: seg.activity,
                    });
                }
            }
            debug_assert_eq!(row.len(), MINUTES_PER_DAY);
            states.push(row);
        }

        let minutes = (0..MINUTES_PER_DAY)
            .map(|m| {
                let occupants: Vec<OccupantState> =
                    (0..n_occupants).map(|o| states[o][m]).collect();
                let appliances = home
                    .appliances()
                    .iter()
                    .map(|a| {
                        occupants
                            .iter()
                            .any(|os| os.zone == a.zone && a.linked_to(os.activity))
                    })
                    .collect();
                MinuteRecord {
                    occupants,
                    appliances,
                }
            })
            .collect();
        days.push(DayTrace { day, minutes });
    }

    let ds = Dataset {
        house: home.name().to_owned(),
        n_occupants,
        n_appliances,
        days,
    };
    debug_assert!(ds.validate().is_ok());
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let c = SynthConfig::new(HouseSpec::aras_a(), 2, 7);
        assert_eq!(synthesize(&c), synthesize(&c));
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 2, 1));
        let b = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 2, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn validates_and_has_shape() {
        let d = synthesize(&SynthConfig::new(HouseSpec::aras_b(), 4, 3));
        d.validate().unwrap();
        assert_eq!(d.days.len(), 4);
        assert_eq!(d.n_occupants, 2);
        assert_eq!(d.n_appliances, 13);
    }

    #[test]
    fn occupants_sleep_at_night() {
        let d = synthesize(&SynthConfig::month(HouseSpec::aras_a(), 5));
        // At 03:00 nearly every occupant-day should be asleep in the bedroom.
        let mut asleep = 0usize;
        let mut total = 0usize;
        for day in &d.days {
            for os in &day.minutes[180].occupants {
                total += 1;
                if os.activity == Activity::Sleeping && os.zone == ZoneId(1) {
                    asleep += 1;
                }
            }
        }
        assert!(asleep as f64 / total as f64 > 0.95, "{asleep}/{total}");
    }

    #[test]
    fn house_b_more_away_time_than_a() {
        let a = synthesize(&SynthConfig::month(HouseSpec::aras_a(), 11));
        let b = synthesize(&SynthConfig::month(HouseSpec::aras_b(), 11));
        let away = |d: &Dataset| -> usize {
            d.days
                .iter()
                .flat_map(|day| day.minutes.iter())
                .flat_map(|m| m.occupants.iter())
                .filter(|os| os.zone == ZoneId(0))
                .count()
        };
        assert!(away(&b) > away(&a));
    }

    #[test]
    fn appliances_track_linked_activities() {
        let d = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 3, 9));
        let home = shatter_smarthome::houses::aras_house_a();
        for day in &d.days {
            for rec in &day.minutes {
                for (ai, on) in rec.appliances.iter().enumerate() {
                    let a = &home.appliances()[ai];
                    let expected = rec
                        .occupants
                        .iter()
                        .any(|os| os.zone == a.zone && a.linked_to(os.activity));
                    assert_eq!(*on, expected);
                }
            }
        }
    }

    #[test]
    fn cooking_happens_in_kitchen_in_evening() {
        let d = synthesize(&SynthConfig::month(HouseSpec::aras_a(), 13));
        let mut dinner_minutes = 0usize;
        for day in &d.days {
            for m in 1050..1250 {
                for os in &day.minutes[m].occupants {
                    if os.activity == Activity::PreparingDinner {
                        assert_eq!(os.zone, ZoneId(3));
                        dinner_minutes += 1;
                    }
                }
            }
        }
        assert!(dinner_minutes > 100, "dinner minutes = {dinner_minutes}");
    }

    #[test]
    fn scaled_house_synthesizes_n_occupants_across_anchor_zones() {
        let spec = HouseSpec::scaled(10, 3);
        let d = synthesize(&SynthConfig::new(spec.clone(), 3, 4));
        d.validate().unwrap();
        assert_eq!(d.n_occupants, 3);
        // Each occupant sleeps in their own anchored bedroom at 03:00.
        for day in &d.days {
            for (o, os) in day.minutes[180].occupants.iter().enumerate() {
                if os.activity == Activity::Sleeping {
                    assert_eq!(os.zone, spec.personas[o].anchors.bedroom);
                }
            }
        }
        // Occupants use distinct bedrooms (10-zone home has 3 bedrooms).
        let bedrooms: std::collections::BTreeSet<ZoneId> =
            spec.personas.iter().map(|p| p.anchors.bedroom).collect();
        assert_eq!(bedrooms.len(), 3);
    }
}
