//! Flat CSV serialization of ARAS-schema datasets.
//!
//! Layout: one row per (day, minute) with per-occupant zone/activity codes
//! and appliance bits:
//!
//! ```text
//! day,minute,o0_zone,o0_act,o1_zone,o1_act,...,app0,...,appN
//! ```
//!
//! The format is self-describing through its header and round-trips through
//! [`write_csv`] / [`read_csv`].

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use shatter_smarthome::{Activity, ZoneId, MINUTES_PER_DAY};

use crate::{Dataset, DayTrace, MinuteRecord, OccupantState};

/// Error for CSV round-tripping.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file content does not parse as a dataset.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Serializes a dataset to a CSV string.
pub fn to_csv_string(ds: &Dataset) -> String {
    let mut s = String::new();
    s.push_str("day,minute");
    for o in 0..ds.n_occupants {
        let _ = write!(s, ",o{o}_zone,o{o}_act");
    }
    for a in 0..ds.n_appliances {
        let _ = write!(s, ",app{a}");
    }
    s.push('\n');
    for day in &ds.days {
        for (m, rec) in day.minutes.iter().enumerate() {
            let _ = write!(s, "{},{}", day.day, m);
            for os in &rec.occupants {
                let _ = write!(s, ",{},{}", os.zone.index(), os.activity.code());
            }
            for &on in &rec.appliances {
                let _ = write!(s, ",{}", u8::from(on));
            }
            s.push('\n');
        }
    }
    s
}

/// Writes a dataset to a CSV file.
///
/// # Errors
///
/// Returns [`CsvError::Io`] when the file cannot be written.
pub fn write_csv(ds: &Dataset, path: &Path) -> Result<(), CsvError> {
    fs::write(path, to_csv_string(ds))?;
    Ok(())
}

/// Parses a dataset from CSV text previously produced by
/// [`to_csv_string`]. The `house` label is not stored in the CSV and must
/// be resupplied.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] with a line number on malformed input.
pub fn from_csv_string(text: &str, house: impl Into<String>) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let cols: Vec<&str> = header.split(',').collect();
    let n_occupants = cols.iter().filter(|c| c.ends_with("_zone")).count();
    let n_appliances = cols.iter().filter(|c| c.starts_with("app")).count();
    if cols.len() != 2 + 2 * n_occupants + n_appliances {
        return Err(CsvError::Parse {
            line: 1,
            message: "inconsistent header".into(),
        });
    }

    let mut days: Vec<DayTrace> = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let parse_err = |message: String| CsvError::Parse {
            line: lineno,
            message,
        };
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != cols.len() {
            return Err(parse_err(format!(
                "expected {} fields, got {}",
                cols.len(),
                fields.len()
            )));
        }
        let day: u32 = fields[0]
            .parse()
            .map_err(|e| parse_err(format!("bad day: {e}")))?;
        let minute: usize = fields[1]
            .parse()
            .map_err(|e| parse_err(format!("bad minute: {e}")))?;
        let mut occupants = Vec::with_capacity(n_occupants);
        for o in 0..n_occupants {
            let zi: usize = fields[2 + 2 * o]
                .parse()
                .map_err(|e| parse_err(format!("bad zone: {e}")))?;
            let code: u8 = fields[3 + 2 * o]
                .parse()
                .map_err(|e| parse_err(format!("bad activity: {e}")))?;
            let activity = Activity::from_code(code)
                .ok_or_else(|| parse_err(format!("unknown activity code {code}")))?;
            occupants.push(OccupantState {
                zone: ZoneId(zi),
                activity,
            });
        }
        let mut appliances = Vec::with_capacity(n_appliances);
        for a in 0..n_appliances {
            match fields[2 + 2 * n_occupants + a] {
                "0" => appliances.push(false),
                "1" => appliances.push(true),
                other => return Err(parse_err(format!("bad appliance bit {other:?}"))),
            }
        }
        if days.last().map(|d| d.day) != Some(day) {
            days.push(DayTrace {
                day,
                minutes: Vec::with_capacity(MINUTES_PER_DAY),
            });
        }
        let trace = days.last_mut().expect("pushed above");
        if trace.minutes.len() != minute {
            return Err(parse_err(format!(
                "minute {minute} out of order (expected {})",
                trace.minutes.len()
            )));
        }
        trace.minutes.push(MinuteRecord {
            occupants,
            appliances,
        });
    }

    let ds = Dataset {
        house: house.into(),
        n_occupants,
        n_appliances,
        days,
    };
    ds.validate()
        .map_err(|message| CsvError::Parse { line: 0, message })?;
    Ok(ds)
}

/// Reads a dataset from a CSV file.
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failure or malformed content.
pub fn read_csv(path: &Path, house: impl Into<String>) -> Result<Dataset, CsvError> {
    let text = fs::read_to_string(path)?;
    from_csv_string(&text, house)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, HouseSpec, SynthConfig};

    #[test]
    fn csv_roundtrip() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 2, 4));
        let text = to_csv_string(&ds);
        let back = from_csv_string(&text, ds.house.clone()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn rejects_truncated_rows() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 1, 4));
        let mut text = to_csv_string(&ds);
        let cut = text.len() - 10;
        text.truncate(cut);
        assert!(matches!(
            from_csv_string(&text, "x"),
            Err(CsvError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_bad_activity_code() {
        let text = "day,minute,o0_zone,o0_act,app0\n0,0,0,99,0\n";
        let err = from_csv_string(text, "x").unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_out_of_order_minutes() {
        let text = "day,minute,o0_zone,o0_act,app0\n0,5,0,1,0\n";
        assert!(from_csv_string(text, "x").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("shatter_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_b(), 1, 9));
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path, ds.house.clone()).unwrap();
        assert_eq!(ds, back);
    }
}
