//! ARAS-compatible dataset substrate for SHATTER.
//!
//! The paper evaluates on the ARAS dataset (Alemdar et al. 2013): per-minute
//! activity labels for 2 occupants in each of 2 houses over a month. The
//! real recordings are not redistributable, so this crate provides a
//! *synthetic, schema-compatible* substitute: a seeded routine generator
//! that reproduces the statistical regularities the framework consumes —
//! habitual (arrival-time × stay-duration) clusters per occupant and zone,
//! activity-conditioned appliance usage, and house-level behavioural
//! differences between House A and House B. See `DESIGN.md` §2 for the
//! substitution argument.
//!
//! Main entry points:
//!
//! - [`SynthConfig`] / [`synthesize`]: generate a month of per-minute data,
//! - [`Dataset`]: the in-memory per-minute trace,
//! - [`episodes::extract_episodes`]: (arrival, stay) episodes per
//!   occupant/zone — the ADM's feature space (paper Eq. 5–7),
//! - [`attacks::biota_attack_episodes`]: naive rule-constrained FDI attack
//!   samples in episode space, used to score ADMs (paper Table IV, Fig. 5),
//! - [`csvio`]: flat CSV round-tripping of datasets.
//!
//! # Examples
//!
//! ```
//! use shatter_dataset::{synthesize, HouseSpec, SynthConfig};
//!
//! let data = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 3, 42));
//! assert_eq!(data.days.len(), 3);
//! assert_eq!(data.days[0].minutes.len(), 1440);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arasio;
pub mod attacks;
pub mod csvio;
pub mod episodes;
mod persist;
mod schema;
pub mod spec;
mod synth;

pub use persist::{episodes_from_blob, episodes_to_blob};
pub use schema::{Dataset, DayTrace, MinuteRecord, OccupantState};
pub use spec::{ActivityAnchors, HouseSpec, PersonaSpec};
pub use synth::{default_zone_for, synthesize, SynthConfig};
