//! Declarative house specs: topology + behaviour + cache identity.
//!
//! A [`HouseSpec`] bundles everything the evaluation stack needs to open
//! a new house: the [`HomeSpec`] topology, one [`PersonaSpec`] per
//! occupant driving the synthetic-routine generator, the dataset naming
//! labels, the canonical dataset seed, and a stable FNV [`signature`]
//! that keys fixture caches and schedule memos. The two ARAS evaluation
//! houses are [`HouseSpec::aras_a`] / [`HouseSpec::aras_b`]; scaled
//! homes with generated personas come from [`HouseSpec::scaled`].
//!
//! [`signature`]: HouseSpec::signature

use serde::{Deserialize, Serialize};

use shatter_smarthome::spec::{fold, fold_str, HomeSpec, RoomArchetype};
use shatter_smarthome::{Activity, ZoneId};

use crate::synth::default_zone_for;

/// Per-occupant anchor zones: where this occupant's activities of each
/// room archetype take place. The synthesizer maps an activity to its
/// canonical ARAS zone class and then through these anchors, so scaled
/// homes with several bedrooms/kitchens spread occupants across them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityAnchors {
    /// Zone for sleep-class activities.
    pub bedroom: ZoneId,
    /// Zone for leisure-class activities.
    pub livingroom: ZoneId,
    /// Zone for cooking/eating-class activities.
    pub kitchen: ZoneId,
    /// Zone for hygiene-class activities.
    pub bathroom: ZoneId,
}

impl ActivityAnchors {
    /// The canonical ARAS layout: bedroom `Z-1` .. bathroom `Z-4`.
    pub const ARAS: ActivityAnchors = ActivityAnchors {
        bedroom: ZoneId(1),
        livingroom: ZoneId(2),
        kitchen: ZoneId(3),
        bathroom: ZoneId(4),
    };

    /// The zone `activity` takes place in for an occupant anchored here.
    /// Outside activities stay at `Z-0`.
    pub fn zone_for(&self, activity: Activity) -> ZoneId {
        match default_zone_for(activity).index() {
            0 => ZoneId(0),
            1 => self.bedroom,
            2 => self.livingroom,
            3 => self.kitchen,
            _ => self.bathroom,
        }
    }

    fn fold_signature(&self, h: &mut u64) {
        for z in [self.bedroom, self.livingroom, self.kitchen, self.bathroom] {
            fold(h, z.index() as u64);
        }
    }
}

/// Behavioural parameters of one occupant, driving the synthetic
/// day-plan generator (wake time, work habits, evening routine) and the
/// per-occupant zone anchoring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersonaSpec {
    /// Mean wake-up minute of day.
    pub wake_mean: f64,
    /// Probability of a weekday out-of-home work block.
    pub work_prob_weekday: f64,
    /// Mean work-block duration in minutes.
    pub work_duration_mean: f64,
    /// Mean evening-TV duration in minutes.
    pub evening_tv_mean: f64,
    /// Always showers in the morning routine.
    pub shower_in_morning: bool,
    /// Which zones this occupant's activities anchor to.
    pub anchors: ActivityAnchors,
}

impl PersonaSpec {
    fn fold_signature(&self, h: &mut u64) {
        fold(h, self.wake_mean.to_bits());
        fold(h, self.work_prob_weekday.to_bits());
        fold(h, self.work_duration_mean.to_bits());
        fold(h, self.evening_tv_mean.to_bits());
        fold(h, u64::from(self.shower_in_morning));
        self.anchors.fold_signature(h);
    }
}

/// A fully-specified evaluation house: topology, per-occupant behaviour,
/// dataset naming, and the canonical seed its reference month uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HouseSpec {
    /// Home topology (zones, occupant names, appliance wiring).
    pub home: HomeSpec,
    /// Dataset label prefix in the paper's convention (`"HA"`, `"HB"`,
    /// `"S6"`, ...); occupant datasets are `"{label}O{i+1}"`.
    pub label: String,
    /// Short house tag used in exhibit table columns (`"A"`, `"B"`,
    /// `"S6"`, ...).
    pub short: String,
    /// Canonical dataset seed of this house's reference month.
    pub canonical_seed: u64,
    /// One persona per occupant, in [`shatter_smarthome::OccupantId`]
    /// order; must match `home.occupant_names` in length.
    pub personas: Vec<PersonaSpec>,
}

/// Canonical seed of the ARAS House-A reference month.
pub const ARAS_A_SEED: u64 = 11;
/// Canonical seed of the ARAS House-B reference month.
pub const ARAS_B_SEED: u64 = 22;

impl HouseSpec {
    /// ARAS House A: occupant 1 mostly home and studying, occupant 2 an
    /// office worker.
    pub fn aras_a() -> HouseSpec {
        HouseSpec {
            home: HomeSpec::aras_a(),
            label: "HA".to_owned(),
            short: "A".to_owned(),
            canonical_seed: ARAS_A_SEED,
            personas: vec![
                PersonaSpec {
                    wake_mean: 430.0,
                    work_prob_weekday: 0.30,
                    work_duration_mean: 310.0,
                    evening_tv_mean: 100.0,
                    shower_in_morning: false,
                    anchors: ActivityAnchors::ARAS,
                },
                PersonaSpec {
                    wake_mean: 395.0,
                    work_prob_weekday: 0.85,
                    work_duration_mean: 540.0,
                    evening_tv_mean: 80.0,
                    shower_in_morning: true,
                    anchors: ActivityAnchors::ARAS,
                },
            ],
        }
    }

    /// ARAS House B: both occupants away for longer work blocks, giving
    /// the paper's lower House-B control costs.
    pub fn aras_b() -> HouseSpec {
        HouseSpec {
            home: HomeSpec::aras_b(),
            label: "HB".to_owned(),
            short: "B".to_owned(),
            canonical_seed: ARAS_B_SEED,
            personas: vec![
                PersonaSpec {
                    wake_mean: 410.0,
                    work_prob_weekday: 0.80,
                    work_duration_mean: 580.0,
                    evening_tv_mean: 70.0,
                    shower_in_morning: true,
                    anchors: ActivityAnchors::ARAS,
                },
                PersonaSpec {
                    wake_mean: 380.0,
                    work_prob_weekday: 0.90,
                    work_duration_mean: 620.0,
                    evening_tv_mean: 60.0,
                    shower_in_morning: true,
                    anchors: ActivityAnchors::ARAS,
                },
            ],
        }
    }

    /// A scaled house over [`HomeSpec::scaled`]: `n_zones` indoor zones
    /// cycling the ARAS archetypes and `n_occupants` occupants with
    /// deterministically generated personas. Occupants anchor to
    /// distinct bedrooms/kitchens (cycling by occupant index) when the
    /// home has several of an archetype.
    ///
    /// # Panics
    ///
    /// Panics when `n_zones == 0` or `n_occupants == 0`.
    pub fn scaled(n_zones: usize, n_occupants: usize) -> HouseSpec {
        let home = HomeSpec::scaled(n_zones, n_occupants);
        let personas = (0..n_occupants)
            .map(|o| generated_persona(&home, n_zones, o))
            .collect();
        HouseSpec {
            home,
            label: format!("S{n_zones}"),
            short: format!("S{n_zones}"),
            // Distinct per-shape canonical seeds, away from the ARAS ones.
            canonical_seed: 0x5CA1_ED00 ^ ((n_zones as u64) << 8) ^ n_occupants as u64,
            personas,
        }
    }

    /// Number of occupants (personas).
    pub fn n_occupants(&self) -> usize {
        self.personas.len()
    }

    /// Stable FNV-1a signature over every field — topology, personas,
    /// labels and canonical seed. This is the cache identity of the
    /// house: fixture caches, ADM-training keys and schedule memo keys
    /// include it, so two specs differing in any parameter never alias.
    pub fn signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        self.home.fold_signature(&mut h);
        fold_str(&mut h, &self.label);
        fold_str(&mut h, &self.short);
        fold(&mut h, self.canonical_seed);
        fold(&mut h, self.personas.len() as u64);
        for p in &self.personas {
            p.fold_signature(&mut h);
        }
        h
    }

    /// Memo-key fragment identifying this house: `"{label}-{sig:016x}"`.
    /// Every schedule/reward/benign-cost memo prefix embeds this, so
    /// houses sharing `days`/`seed` can never collide.
    pub fn cache_tag(&self) -> String {
        format!("{}-{:016x}", self.label, self.signature())
    }
}

/// Deterministic persona for occupant `o` of a scaled home: splitmix64
/// of `(n_zones, o)` jitters each behavioural parameter inside its
/// plausible band, and anchors cycle the archetype zones by occupant.
fn generated_persona(home: &HomeSpec, n_zones: usize, o: usize) -> PersonaSpec {
    let mut x = (n_zones as u64) << 32 | o as u64;
    let mut next = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let unit = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64;
    let anchor = |archetype: RoomArchetype| -> ZoneId {
        let zones: Vec<ZoneId> = home.zones_of(archetype).collect();
        if zones.is_empty() {
            // Tiny home without this archetype: remap like the appliance
            // wiring does.
            let base = match archetype {
                RoomArchetype::Bedroom => 1usize,
                RoomArchetype::Livingroom => 2,
                RoomArchetype::Kitchen => 3,
                RoomArchetype::Bathroom => 4,
            };
            ZoneId((base - 1) % n_zones + 1)
        } else {
            zones[o % zones.len()]
        }
    };
    PersonaSpec {
        wake_mean: (380.0 + unit(next()) * 60.0).round(),
        work_prob_weekday: 0.30 + unit(next()) * 0.60,
        work_duration_mean: (310.0 + unit(next()) * 310.0).round(),
        evening_tv_mean: (60.0 + unit(next()) * 50.0).round(),
        shower_in_morning: next() & 1 == 1,
        anchors: ActivityAnchors {
            bedroom: anchor(RoomArchetype::Bedroom),
            livingroom: anchor(RoomArchetype::Livingroom),
            kitchen: anchor(RoomArchetype::Kitchen),
            bathroom: anchor(RoomArchetype::Bathroom),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aras_specs_have_expected_identity() {
        let a = HouseSpec::aras_a();
        let b = HouseSpec::aras_b();
        assert_eq!((a.label.as_str(), a.short.as_str()), ("HA", "A"));
        assert_eq!((b.label.as_str(), b.short.as_str()), ("HB", "B"));
        assert_eq!(a.canonical_seed, ARAS_A_SEED);
        assert_eq!(b.canonical_seed, ARAS_B_SEED);
        assert_eq!(a.n_occupants(), 2);
        assert_ne!(a.signature(), b.signature());
        // Signature is a pure function of the spec.
        assert_eq!(a.signature(), HouseSpec::aras_a().signature());
    }

    #[test]
    fn aras_anchors_reproduce_default_zones() {
        use shatter_smarthome::Activity;
        for a in [
            Activity::Sleeping,
            Activity::WatchingTv,
            Activity::PreparingDinner,
            Activity::HavingShower,
            Activity::GoingOut,
        ] {
            assert_eq!(ActivityAnchors::ARAS.zone_for(a), default_zone_for(a));
        }
    }

    #[test]
    fn scaled_personas_are_deterministic_and_in_band() {
        let s1 = HouseSpec::scaled(10, 4);
        let s2 = HouseSpec::scaled(10, 4);
        assert_eq!(s1, s2);
        assert_eq!(s1.signature(), s2.signature());
        for p in &s1.personas {
            assert!((300.0..=600.0).contains(&p.wake_mean));
            assert!((0.0..=1.0).contains(&p.work_prob_weekday));
            assert!((180.0..=700.0).contains(&p.work_duration_mean));
            assert!((30.0..=170.0).contains(&p.evening_tv_mean));
        }
        // Personas differ across occupants.
        assert_ne!(s1.personas[0], s1.personas[1]);
    }

    #[test]
    fn scaled_anchors_spread_occupants_across_archetype_zones() {
        // 10 zones cycle B,L,K,Ba,B,L,K,Ba,B,L: three bedrooms.
        let s = HouseSpec::scaled(10, 3);
        let bedrooms: Vec<ZoneId> = s.personas.iter().map(|p| p.anchors.bedroom).collect();
        assert_eq!(bedrooms, vec![ZoneId(1), ZoneId(5), ZoneId(9)]);
        // Every anchor points at a zone of the right archetype.
        for p in &s.personas {
            assert_eq!(
                s.home.zones[p.anchors.kitchen.index() - 1].archetype.name(),
                "Kitchen"
            );
        }
    }

    #[test]
    fn signatures_and_seeds_separate_scaled_shapes() {
        let shapes = [(6usize, 2usize), (10, 2), (16, 2), (6, 3)];
        let sigs: Vec<u64> = shapes
            .iter()
            .map(|&(z, o)| HouseSpec::scaled(z, o).signature())
            .collect();
        let seeds: Vec<u64> = shapes
            .iter()
            .map(|&(z, o)| HouseSpec::scaled(z, o).canonical_seed)
            .collect();
        for i in 0..shapes.len() {
            for j in i + 1..shapes.len() {
                assert_ne!(sigs[i], sigs[j], "{:?} vs {:?}", shapes[i], shapes[j]);
                assert_ne!(seeds[i], seeds[j], "{:?} vs {:?}", shapes[i], shapes[j]);
            }
        }
    }

    #[test]
    fn cache_tag_embeds_label_and_signature() {
        let a = HouseSpec::aras_a();
        let tag = a.cache_tag();
        assert!(tag.starts_with("HA-"));
        assert!(tag.contains(&format!("{:016x}", a.signature())));
    }
}
