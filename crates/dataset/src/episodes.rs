//! Stay-episode extraction: the ADM's feature space.
//!
//! SHATTER's anomaly-detection model operates on (arrival-time,
//! stay-duration) pairs per occupant and zone (paper Eq. 5–7): an *arrival
//! event* `E^A` starts an episode when the occupant enters a zone, an *exit
//! event* `E^E` ends it, and the *stay* `E^S` is the difference.

use serde::{Deserialize, Serialize};

use shatter_smarthome::{OccupantId, ZoneId};

use crate::Dataset;

/// One contiguous stay of an occupant in a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// Which occupant stayed.
    pub occupant: OccupantId,
    /// Which zone they stayed in.
    pub zone: ZoneId,
    /// Day index the episode started on.
    pub day: u32,
    /// Arrival minute-of-day (`t1` in the paper).
    pub arrival: u32,
    /// Stay duration in minutes (`t2 - t1`).
    pub stay: u32,
}

impl Episode {
    /// The episode as an (arrival, stay) feature pair.
    pub fn feature(&self) -> (f64, f64) {
        (self.arrival as f64, self.stay as f64)
    }

    /// Exit minute (may equal 1440 when the stay runs to midnight).
    pub fn exit(&self) -> u32 {
        self.arrival + self.stay
    }
}

/// Extracts every stay episode from a dataset, day by day.
///
/// A stay that spans midnight is split at the day boundary (the ADM's
/// feature space is minute-of-day, so this matches the paper's treatment of
/// the 1440-slot horizon).
///
/// ```
/// use shatter_dataset::{episodes::extract_episodes, synthesize, HouseSpec, SynthConfig};
/// let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 2, 1));
/// let eps = extract_episodes(&ds);
/// assert!(!eps.is_empty());
/// // Episodes within a day tile the full 1440 minutes per occupant.
/// let day0_occ0: u32 = eps
///     .iter()
///     .filter(|e| e.day == 0 && e.occupant.index() == 0)
///     .map(|e| e.stay)
///     .sum();
/// assert_eq!(day0_occ0, 1440);
/// ```
pub fn extract_episodes(ds: &Dataset) -> Vec<Episode> {
    let mut out = Vec::new();
    for day in &ds.days {
        for o in 0..ds.n_occupants {
            let mut start = 0usize;
            let mut cur = day.minutes[0].occupants[o].zone;
            for m in 1..day.minutes.len() {
                let z = day.minutes[m].occupants[o].zone;
                if z != cur {
                    out.push(Episode {
                        occupant: OccupantId(o),
                        zone: cur,
                        day: day.day,
                        arrival: start as u32,
                        stay: (m - start) as u32,
                    });
                    start = m;
                    cur = z;
                }
            }
            out.push(Episode {
                occupant: OccupantId(o),
                zone: cur,
                day: day.day,
                arrival: start as u32,
                stay: (day.minutes.len() - start) as u32,
            });
        }
    }
    out
}

/// Filters episodes down to one occupant and zone, as (arrival, stay)
/// feature pairs — the input to one per-(occupant, zone) ADM cluster model.
pub fn features_for(episodes: &[Episode], occupant: OccupantId, zone: ZoneId) -> Vec<(f64, f64)> {
    episodes
        .iter()
        .filter(|e| e.occupant == occupant && e.zone == zone)
        .map(Episode::feature)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, HouseSpec, SynthConfig};
    use shatter_smarthome::MINUTES_PER_DAY;

    #[test]
    fn episodes_tile_each_day() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 3, 21));
        let eps = extract_episodes(&ds);
        for day in 0..3u32 {
            for o in 0..ds.n_occupants {
                let sel: Vec<&Episode> = eps
                    .iter()
                    .filter(|e| e.day == day && e.occupant.index() == o)
                    .collect();
                let total: u32 = sel.iter().map(|e| e.stay).sum();
                assert_eq!(total, MINUTES_PER_DAY as u32);
                // Episodes are contiguous and ordered.
                let mut cursor = 0;
                for e in sel {
                    assert_eq!(e.arrival, cursor);
                    cursor = e.exit();
                }
                assert_eq!(cursor, MINUTES_PER_DAY as u32);
            }
        }
    }

    #[test]
    fn consecutive_episodes_change_zone() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_b(), 2, 33));
        let eps = extract_episodes(&ds);
        for w in eps.windows(2) {
            if w[0].day == w[1].day && w[0].occupant == w[1].occupant {
                assert_ne!(w[0].zone, w[1].zone, "adjacent episodes must differ");
            }
        }
    }

    #[test]
    fn features_for_filters() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 2, 5));
        let eps = extract_episodes(&ds);
        let f = features_for(&eps, OccupantId(0), ZoneId(1));
        assert!(!f.is_empty());
        let count = eps
            .iter()
            .filter(|e| e.occupant == OccupantId(0) && e.zone == ZoneId(1))
            .count();
        assert_eq!(f.len(), count);
    }
}
