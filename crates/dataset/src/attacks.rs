//! BIoTA-style attack-sample generation in episode space.
//!
//! The paper scores its ADMs against attack samples produced by the BIoTA
//! framework (Haque et al., SECON 2021): greedy FDI attacks that respect
//! rule-based verification (zone capacity, occupant-count conservation) but
//! are blind to learned behavioural clusters, so they keep "a large margin
//! from the benign data distribution" (§VII-A). This module reproduces that
//! generator: given the training data *visible to the attacker*, it emits
//! occupancy episodes that extend or displace stays beyond the attacker's
//! observed benign ranges, preferring high-cost zones.
//!
//! The attacker-knowledge axis of paper Table IV is the `knowledge`
//! parameter: an attacker who saw only half the data estimates narrower
//! benign ranges, so its "beyond the range" attacks land closer to the true
//! benign distribution and are harder to detect — reproducing the lower
//! partial-knowledge detection scores.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shatter_smarthome::{OccupantId, ZoneId, MINUTES_PER_DAY};

use crate::episodes::{extract_episodes, Episode};
use crate::Dataset;

/// How much of the ADM's training data the attacker has seen (paper
/// Table IV's "Attacker's Knowledge" axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackerKnowledge {
    /// The attacker saw every training day.
    All,
    /// The attacker saw only the given fraction of training days
    /// (the paper uses 50%).
    Partial(f64),
}

impl AttackerKnowledge {
    /// Fraction of training days visible to the attacker.
    pub fn fraction(self) -> f64 {
        match self {
            AttackerKnowledge::All => 1.0,
            AttackerKnowledge::Partial(f) => f.clamp(0.0, 1.0),
        }
    }

    /// The paper's "Partial Data" setting (50%).
    pub fn half() -> Self {
        AttackerKnowledge::Partial(0.5)
    }
}

/// Configuration for the BIoTA attack-sample generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiotaConfig {
    /// Attacker's visibility into the training data.
    pub knowledge: AttackerKnowledge,
    /// Attack episodes to emit per (occupant, zone) pair.
    pub samples_per_zone: usize,
    /// Relative stay-extension margin range; BIoTA attacks extend stays by
    /// `U(margin.0, margin.1)` × the attacker-observed maximum stay.
    pub margin: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for BiotaConfig {
    fn default() -> Self {
        BiotaConfig {
            knowledge: AttackerKnowledge::All,
            samples_per_zone: 12,
            margin: (0.05, 0.45),
            seed: 0xB107A,
        }
    }
}

/// Per-(occupant, zone) benign ranges as estimated from visible data.
#[derive(Debug, Clone, Copy)]
struct Ranges {
    arrival_min: u32,
    arrival_max: u32,
    stay_max: u32,
}

fn observed_ranges(episodes: &[Episode], occupant: OccupantId, zone: ZoneId) -> Option<Ranges> {
    let mut r: Option<Ranges> = None;
    for e in episodes
        .iter()
        .filter(|e| e.occupant == occupant && e.zone == zone)
    {
        let cur = r.get_or_insert(Ranges {
            arrival_min: e.arrival,
            arrival_max: e.arrival,
            stay_max: e.stay,
        });
        cur.arrival_min = cur.arrival_min.min(e.arrival);
        cur.arrival_max = cur.arrival_max.max(e.arrival);
        cur.stay_max = cur.stay_max.max(e.stay);
    }
    r
}

/// Generates BIoTA-style attack episodes against a training dataset.
///
/// The attacker observes a prefix of `train` determined by
/// [`BiotaConfig::knowledge`], estimates per-zone benign (arrival, stay)
/// ranges, and emits episodes whose stays exceed the *observed* maximum by
/// the configured margin — the greedy "hold the occupant in the rewarding
/// zone as long as possible" strategy of BIoTA's fixed-rule world.
///
/// ```
/// use shatter_dataset::{attacks::{biota_attack_episodes, BiotaConfig}, synthesize, HouseSpec, SynthConfig};
/// let train = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 10, 1));
/// let attacks = biota_attack_episodes(&train, &BiotaConfig::default());
/// assert!(!attacks.is_empty());
/// ```
pub fn biota_attack_episodes(train: &Dataset, cfg: &BiotaConfig) -> Vec<Episode> {
    let visible_days = ((train.days.len() as f64) * cfg.knowledge.fraction())
        .round()
        .max(1.0) as usize;
    let visible = train.prefix_days(visible_days.min(train.days.len()));
    let episodes = extract_episodes(&visible);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    let zones: Vec<ZoneId> = {
        let mut zs: Vec<ZoneId> = episodes.iter().map(|e| e.zone).collect();
        zs.sort();
        zs.dedup();
        zs
    };
    for o in 0..train.n_occupants {
        let occupant = OccupantId(o);
        for &zone in &zones {
            // Outside is not a conditioned zone; holding an occupant
            // "outside" gains the attacker nothing, so BIoTA skips it.
            if zone == ZoneId(0) {
                continue;
            }
            if observed_ranges(&episodes, occupant, zone).is_none() {
                continue;
            }
            // Greedy base selection: BIoTA wants energy, so it stretches
            // the *longest* stays it has seen; it knows habitual times, so
            // arrivals are small perturbations of observed arrivals.
            let mut visible: Vec<&Episode> = episodes
                .iter()
                .filter(|e| e.occupant == occupant && e.zone == zone)
                .collect();
            visible.sort_by_key(|e| std::cmp::Reverse(e.stay));
            let top = &visible[..visible.len().min(6)];
            for _ in 0..cfg.samples_per_zone {
                let base = top[rng.random_range(0..top.len())];
                let jitter: i64 = rng.random_range(-15..=15);
                let arrival =
                    (base.arrival as i64 + jitter).clamp(0, MINUTES_PER_DAY as i64 - 2) as u32;
                let margin = rng.random_range(cfg.margin.0..cfg.margin.1);
                // Stretch the chosen stay. Whether the result escapes the
                // learned clusters depends on how close the chosen base is
                // to the true behavioural ceiling — which is exactly where
                // the attacker's data visibility bites.
                let stay = ((base.stay as f64) * (1.0 + margin)).round() as u32;
                let stay = stay.min(MINUTES_PER_DAY as u32 - arrival).max(1);
                out.push(Episode {
                    occupant,
                    zone,
                    day: u32::MAX, // synthetic attack day marker
                    arrival,
                    stay,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, HouseSpec, SynthConfig};

    fn train() -> Dataset {
        synthesize(&SynthConfig::new(HouseSpec::aras_a(), 10, 77))
    }

    #[test]
    fn attacks_extend_observed_stays() {
        let t = train();
        let cfg = BiotaConfig::default();
        let attacks = biota_attack_episodes(&t, &cfg);
        let benign = extract_episodes(&t);
        for a in &attacks {
            // Every attack stretches some genuine episode observed at a
            // nearby arrival time, or is clipped by midnight.
            let has_base = benign.iter().any(|e| {
                e.occupant == a.occupant
                    && e.zone == a.zone
                    && e.arrival.abs_diff(a.arrival) <= 16
                    && a.stay > e.stay
            });
            assert!(
                has_base || a.exit() == MINUTES_PER_DAY as u32,
                "attack {a:?} stretches nothing"
            );
        }
    }

    #[test]
    fn partial_knowledge_attacks_are_shorter() {
        let t = train();
        let full = biota_attack_episodes(
            &t,
            &BiotaConfig {
                knowledge: AttackerKnowledge::All,
                ..BiotaConfig::default()
            },
        );
        let partial = biota_attack_episodes(
            &t,
            &BiotaConfig {
                knowledge: AttackerKnowledge::half(),
                ..BiotaConfig::default()
            },
        );
        let mean = |v: &[Episode]| -> f64 {
            v.iter().map(|e| e.stay as f64).sum::<f64>() / v.len() as f64
        };
        // Narrower observed ranges => generally shorter attack stays.
        assert!(mean(&partial) <= mean(&full) * 1.05);
    }

    #[test]
    fn never_targets_outside_zone() {
        let attacks = biota_attack_episodes(&train(), &BiotaConfig::default());
        assert!(attacks.iter().all(|a| a.zone != ZoneId(0)));
    }

    #[test]
    fn deterministic_given_seed() {
        let t = train();
        let cfg = BiotaConfig::default();
        assert_eq!(
            biota_attack_episodes(&t, &cfg),
            biota_attack_episodes(&t, &cfg)
        );
    }

    #[test]
    fn episodes_stay_within_day() {
        let attacks = biota_attack_episodes(&train(), &BiotaConfig::default());
        for a in &attacks {
            assert!(a.exit() <= MINUTES_PER_DAY as u32);
            assert!(a.stay >= 1);
        }
    }
}
