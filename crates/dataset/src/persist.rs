//! Blob-store serialization of datasets and episode sets (the disk
//! tier under the engine's fixture cache).
//!
//! Encodings are versioned via [`Blob::TAG`]; a tag bump makes every
//! old blob decode to `None` (a recompute), never to a wrong value.
//! Occupant-minute states are packed as `(u32 zone, u8 activity-code)`
//! and appliance states as a bitmask, so a 30-day month with four
//! occupants stays well under a megabyte.

use shatter_smarthome::{Activity, OccupantId, ZoneId, MINUTES_PER_DAY};
use shatter_store::wire::{Reader, Writer};
use shatter_store::Blob;

use crate::episodes::Episode;
use crate::{Dataset, DayTrace, MinuteRecord, OccupantState};

impl Blob for Dataset {
    const TAG: &'static str = "dataset/1";

    fn encode(&self, w: &mut Writer) {
        w.str(&self.house);
        w.usize(self.n_occupants);
        w.usize(self.n_appliances);
        w.usize(self.days.len());
        let mask_len = self.n_appliances.div_ceil(8);
        for day in &self.days {
            w.u32(day.day);
            w.usize(day.minutes.len());
            for rec in &day.minutes {
                for occ in &rec.occupants {
                    w.u32(occ.zone.0 as u32);
                    w.u8(occ.activity.code());
                }
                let mut mask = vec![0u8; mask_len];
                for (i, &on) in rec.appliances.iter().enumerate() {
                    if on {
                        mask[i / 8] |= 1 << (i % 8);
                    }
                }
                for b in mask {
                    w.u8(b);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let house = r.str()?.to_string();
        let n_occupants = r.usize()?;
        let n_appliances = r.usize()?;
        let n_days = r.seq_len()?;
        let mask_len = n_appliances.div_ceil(8);
        let mut days = Vec::with_capacity(n_days);
        for _ in 0..n_days {
            let day = r.u32()?;
            let n_minutes = r.usize()?;
            if n_minutes != MINUTES_PER_DAY {
                return None;
            }
            let mut minutes = Vec::with_capacity(n_minutes);
            for _ in 0..n_minutes {
                let mut occupants = Vec::with_capacity(n_occupants);
                for _ in 0..n_occupants {
                    let zone = ZoneId(r.u32()? as usize);
                    let activity = Activity::from_code(r.u8()?)?;
                    occupants.push(OccupantState { zone, activity });
                }
                let mut appliances = Vec::with_capacity(n_appliances);
                for i in 0..mask_len {
                    let byte = r.u8()?;
                    for bit in 0..8 {
                        if i * 8 + bit < n_appliances {
                            appliances.push(byte & (1 << bit) != 0);
                        }
                    }
                }
                minutes.push(MinuteRecord {
                    occupants,
                    appliances,
                });
            }
            days.push(DayTrace { day, minutes });
        }
        let ds = Dataset {
            house,
            n_occupants,
            n_appliances,
            days,
        };
        // Structural invariants are part of the format: a blob that
        // decodes but fails validation is damage, not data.
        ds.validate().ok()?;
        Some(ds)
    }
}

/// Envelope tag of an episode-set blob (`Vec<Episode>` is foreign to
/// the `Blob` trait, so the set travels through these free functions).
const EPISODES_TAG: &str = "episodes/1";

/// Serializes an episode set as a tagged blob.
pub fn episodes_to_blob(episodes: &[Episode]) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(EPISODES_TAG);
    w.usize(episodes.len());
    for ep in episodes {
        w.u32(ep.occupant.0 as u32);
        w.u32(ep.zone.0 as u32);
        w.u32(ep.day);
        w.u32(ep.arrival);
        w.u32(ep.stay);
    }
    w.into_bytes()
}

/// Deserializes an episode-set blob; `None` on any damage.
pub fn episodes_from_blob(bytes: &[u8]) -> Option<Vec<Episode>> {
    let mut r = Reader::new(bytes);
    if r.str()? != EPISODES_TAG {
        return None;
    }
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Episode {
            occupant: OccupantId(r.u32()? as usize),
            zone: ZoneId(r.u32()? as usize),
            day: r.u32()?,
            arrival: r.u32()?,
            stay: r.u32()?,
        });
    }
    r.finished().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HouseSpec;
    use crate::{synthesize, SynthConfig};

    #[test]
    fn dataset_roundtrip_is_exact() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 3, 42));
        let bytes = ds.to_blob();
        let back = Dataset::from_blob(&bytes).expect("decode");
        assert_eq!(back, ds);
        // Determinism of the encoding itself (byte-identical re-encode).
        assert_eq!(back.to_blob(), bytes);
    }

    #[test]
    fn truncated_dataset_blob_is_none() {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 1, 7));
        let bytes = ds.to_blob();
        assert_eq!(Dataset::from_blob(&bytes[..bytes.len() - 3]), None);
        assert_eq!(Dataset::from_blob(b"garbage"), None);
    }

    #[test]
    fn episodes_roundtrip() {
        let eps = vec![
            Episode {
                occupant: OccupantId(1),
                zone: ZoneId(4),
                day: 2,
                arrival: 610,
                stay: 55,
            },
            Episode {
                occupant: OccupantId(0),
                zone: ZoneId(0),
                day: 0,
                arrival: 0,
                stay: 1440,
            },
        ];
        assert_eq!(episodes_from_blob(&episodes_to_blob(&eps)), Some(eps));
    }

    #[test]
    fn wrong_tag_is_rejected() {
        assert_eq!(Dataset::from_blob(&episodes_to_blob(&[])), None);
    }
}
