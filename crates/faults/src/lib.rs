//! Deterministic fault injection for the SHATTER dependability layer.
//!
//! A *fault plan* is a set of rules keyed by `(scenario id, site,
//! hit-counter)`. Instrumented code names its sites (`scenario.run`,
//! `smt.window`, `simplex.pivot`, …) and consults [`hit`] at each one;
//! the harness counts consults per `(scenario, site)` pair and fires a
//! rule exactly once — on the consult whose counter matches the rule's
//! `hit` index (default 0, the first consult). Counters are advanced by
//! solver events (pivots, window solves), never by wall time, so a
//! serial chaos run fires the same fault at the same point every time.
//!
//! Plans come from the `SHATTER_FAULTS` environment variable or
//! [`install`] (the `repro --inject` path). The syntax is a
//! comma-separated list of `scenario/site/kind[@hit]` rules, e.g.
//!
//! ```text
//! SHATTER_FAULTS='fig3/scenario.run/panic,strategies/smt.window/budget@2'
//! ```
//!
//! `kind` is one of `panic`, `overflow`, `budget`, `io`; `scenario` may
//! be `*` to match any scenario (including code running outside a
//! scenario scope). With no plan installed every entry point is a single
//! relaxed atomic load, so clean runs pay nothing and stay
//! byte-identical.
//!
//! Site catalog: `scenario.run` (runner, before the scenario body),
//! `smt.window` (per SMT window solve), `simplex.pivot` (per simplex
//! pivot), `fleet.house` (per-house fleet evaluation, inside the retry
//! loop), `store.write` (journal record / blob write; `io` tears the
//! write, `panic` crashes mid-fleet), `store.read` (blob-store read;
//! `io` treats the cached blob as damaged — deleted, counted as
//! discarded, and recomputed by the caller).
//!
//! The current scenario travels in thread-local state: the runner wraps
//! each scenario in [`with_scenario`], and `ScenarioCtx::par_map`
//! re-establishes the scope on pool worker threads via
//! [`current_scenario`] + [`scoped`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// What an armed fault rule does when it fires. The *site* decides the
/// mechanics: `panic` unwinds (isolation path), `overflow` forces the
/// site's rational-overflow degradation (poisoned tableau → `ExactOnly`
/// retry), `budget` forces the site's budget-exhaustion degradation
/// (anytime best-so-far / fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a panic at the site.
    Panic,
    /// Behave as if the site hit an `i128` rational overflow.
    Overflow,
    /// Behave as if the site exhausted its deterministic budget.
    Budget,
    /// Behave as if the site's I/O went wrong: `store.write` produces a
    /// torn (truncated, checksum-failing) record; sites without real
    /// I/O degrade like `budget`.
    Io,
}

impl FaultKind {
    /// Lowercase plan-syntax name of the kind (`panic` / `overflow` /
    /// `budget` / `io`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Overflow => "overflow",
            FaultKind::Budget => "budget",
            FaultKind::Io => "io",
        }
    }

    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "overflow" => Ok(FaultKind::Overflow),
            "budget" => Ok(FaultKind::Budget),
            "io" => Ok(FaultKind::Io),
            other => Err(format!(
                "unknown fault kind {other:?} (expected panic|overflow|budget|io)"
            )),
        }
    }
}

/// One parsed fault rule: fire `kind` at `site` in `scenario`, on the
/// `hit`-th consult of that site within that scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Scenario id the rule targets; `*` matches any scope.
    pub scenario: String,
    /// Instrumented site name (see the crate docs for the catalog).
    pub site: String,
    /// What to do when the rule fires.
    pub kind: FaultKind,
    /// Zero-based consult index at which the rule fires (then never again).
    pub hit: u64,
}

/// Parses a comma-separated `scenario/site/kind[@hit]` plan.
pub fn parse_plan(plan: &str) -> Result<Vec<FaultSpec>, String> {
    let mut specs = Vec::new();
    for rule in plan.split(',') {
        let rule = rule.trim();
        if rule.is_empty() {
            continue;
        }
        let (head, hit) = match rule.rsplit_once('@') {
            Some((head, idx)) => {
                let hit = idx
                    .parse::<u64>()
                    .map_err(|_| format!("bad hit index in rule {rule:?}"))?;
                (head, hit)
            }
            None => (rule, 0),
        };
        let parts: Vec<&str> = head.split('/').collect();
        let [scenario, site, kind] = parts[..] else {
            return Err(format!(
                "bad rule {rule:?} (expected scenario/site/kind[@hit])"
            ));
        };
        if scenario.is_empty() || site.is_empty() {
            return Err(format!("empty scenario or site in rule {rule:?}"));
        }
        specs.push(FaultSpec {
            scenario: scenario.to_string(),
            site: site.to_string(),
            kind: FaultKind::parse(kind)?,
            hit,
        });
    }
    Ok(specs)
}

struct PlanState {
    specs: Vec<FaultSpec>,
    /// Consults so far per (scenario-or-empty, site).
    counters: HashMap<(String, String), u64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static STATE: OnceLock<Mutex<PlanState>> = OnceLock::new();

thread_local! {
    static SCENARIO: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn state() -> &'static Mutex<PlanState> {
    STATE.get_or_init(|| {
        Mutex::new(PlanState {
            specs: Vec::new(),
            counters: HashMap::new(),
        })
    })
}

/// Reads `SHATTER_FAULTS` once per process (all entry points call this;
/// after the first call it is a single atomic check).
fn ensure_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("SHATTER_FAULTS") {
            if !v.trim().is_empty() {
                let specs =
                    parse_plan(&v).unwrap_or_else(|e| panic!("invalid SHATTER_FAULTS plan: {e}"));
                install(specs);
            }
        }
    });
}

/// Installs (appends) fault rules and arms the harness. Rules are
/// additive; per-`(scenario, site)` hit counters are shared across all
/// installed rules, so tests running in one process should target
/// unique scenario names.
pub fn install(specs: Vec<FaultSpec>) {
    if specs.is_empty() {
        return;
    }
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.specs.extend(specs);
    ARMED.store(true, Ordering::SeqCst);
}

/// Parses and installs a plan string (the `repro --inject` path).
pub fn install_str(plan: &str) -> Result<(), String> {
    install(parse_plan(plan)?);
    Ok(())
}

/// Runs `f` with the thread-local scenario scope set to `id`, restoring
/// the previous scope afterwards (also on unwind, so an injected panic
/// leaves no stale scope behind). A no-op wrapper while unarmed.
pub fn with_scenario<R>(id: &str, f: impl FnOnce() -> R) -> R {
    ensure_env();
    if !ARMED.load(Ordering::Relaxed) {
        return f();
    }
    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            SCENARIO.with(|s| *s.borrow_mut() = prev);
        }
    }
    let prev = SCENARIO.with(|s| s.borrow_mut().replace(id.to_string()));
    let _restore = Restore(prev);
    f()
}

/// The scenario scope of the current thread (`None` while unarmed or
/// outside any [`with_scenario`]). Pool fan-out captures this on the
/// submitting thread and re-establishes it on workers via [`scoped`].
pub fn current_scenario() -> Option<String> {
    ensure_env();
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    SCENARIO.with(|s| s.borrow().clone())
}

/// [`with_scenario`] for a captured scope: re-enters `id` when `Some`,
/// otherwise just runs `f`.
pub fn scoped<R>(id: Option<&str>, f: impl FnOnce() -> R) -> R {
    match id {
        Some(id) => with_scenario(id, f),
        None => f(),
    }
}

fn spec_matches_scope(spec_scenario: &str, scope: Option<&str>) -> bool {
    spec_scenario == "*" || scope == Some(spec_scenario)
}

/// Whether any installed rule targets the current scenario scope. The
/// scheduler uses this to bypass the shared window memo under injection
/// so faulted fragments never leak into clean scenarios.
pub fn scenario_armed() -> bool {
    ensure_env();
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let scope = SCENARIO.with(|s| s.borrow().clone());
    let st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.specs
        .iter()
        .any(|spec| spec_matches_scope(&spec.scenario, scope.as_deref()))
}

/// Consults an instrumented site: advances the `(scenario, site)` hit
/// counter and returns the kind of the rule (if any) armed for exactly
/// this consult. Each rule fires at most once — its `hit` index is
/// passed exactly once by the monotone counter.
pub fn hit(site: &str) -> Option<FaultKind> {
    ensure_env();
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let scope = SCENARIO.with(|s| s.borrow().clone());
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    let key = (scope.clone().unwrap_or_default(), site.to_string());
    let counter = st.counters.entry(key).or_insert(0);
    let n = *counter;
    *counter += 1;
    st.specs
        .iter()
        .find(|spec| {
            spec.site == site
                && spec.hit == n
                && spec_matches_scope(&spec.scenario, scope.as_deref())
        })
        .map(|spec| spec.kind)
}

/// Panics with the canonical injected-fault message for `site`.
pub fn panic_now(site: &str) -> ! {
    panic!("injected fault: panic at {site}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_plan() {
        let specs = parse_plan("fig3/scenario.run/panic, s2/simplex.pivot/overflow@7").unwrap();
        assert_eq!(
            specs,
            vec![
                FaultSpec {
                    scenario: "fig3".into(),
                    site: "scenario.run".into(),
                    kind: FaultKind::Panic,
                    hit: 0,
                },
                FaultSpec {
                    scenario: "s2".into(),
                    site: "simplex.pivot".into(),
                    kind: FaultKind::Overflow,
                    hit: 7,
                },
            ]
        );
    }

    #[test]
    fn parse_io_kind() {
        let specs = parse_plan("fleet/store.write/io@4").unwrap();
        assert_eq!(specs[0].kind, FaultKind::Io);
        assert_eq!(specs[0].hit, 4);
        assert_eq!(FaultKind::Io.name(), "io");
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        assert!(parse_plan("no-slashes").is_err());
        assert!(parse_plan("a/b/notakind").is_err());
        assert!(parse_plan("a/b/panic@x").is_err());
        assert!(parse_plan("/b/panic").is_err());
        assert!(parse_plan("").unwrap().is_empty());
        assert!(parse_plan(" , ").unwrap().is_empty());
    }

    #[test]
    fn rule_fires_once_at_its_hit_index() {
        install(vec![FaultSpec {
            scenario: "faults-test-once".into(),
            site: "site.x".into(),
            kind: FaultKind::Budget,
            hit: 2,
        }]);
        with_scenario("faults-test-once", || {
            assert_eq!(hit("site.x"), None);
            assert_eq!(hit("site.x"), None);
            assert_eq!(hit("site.x"), Some(FaultKind::Budget));
            assert_eq!(hit("site.x"), None, "a rule fires exactly once");
            assert_eq!(hit("site.other"), None, "sites count independently");
        });
    }

    #[test]
    fn scope_is_respected_and_restored() {
        install(vec![FaultSpec {
            scenario: "faults-test-scope".into(),
            site: "site.y".into(),
            kind: FaultKind::Panic,
            hit: 0,
        }]);
        // Outside the scope nothing matches (but counters still advance
        // under the anonymous scope).
        assert_eq!(hit("site.y"), None);
        with_scenario("faults-test-scope", || {
            assert!(scenario_armed());
            assert_eq!(current_scenario().as_deref(), Some("faults-test-scope"));
            assert_eq!(hit("site.y"), Some(FaultKind::Panic));
        });
        assert_eq!(current_scenario(), None);
    }

    #[test]
    fn scope_survives_injected_unwind() {
        install(vec![FaultSpec {
            scenario: "faults-test-unwind".into(),
            site: "site.z".into(),
            kind: FaultKind::Panic,
            hit: 0,
        }]);
        let r = std::panic::catch_unwind(|| {
            with_scenario("faults-test-unwind", || {
                if hit("site.z").is_some() {
                    panic_now("site.z");
                }
            })
        });
        assert!(r.is_err());
        assert_eq!(current_scenario(), None, "unwind must restore the scope");
    }

    #[test]
    fn wildcard_matches_any_scope() {
        install(vec![FaultSpec {
            scenario: "*".into(),
            site: "site.wild-faults-test".into(),
            kind: FaultKind::Overflow,
            hit: 0,
        }]);
        with_scenario("faults-test-wild", || {
            assert_eq!(hit("site.wild-faults-test"), Some(FaultKind::Overflow));
        });
    }
}
