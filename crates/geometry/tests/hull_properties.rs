//! Property-based tests for the geometry substrate: hull invariants and
//! agreement between the two hull algorithms.

use proptest::prelude::*;
use shatter_geometry::{convex_hull, quickhull, Point};

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..1440.0, 0.0f64..600.0), 3..60)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn hull_contains_all_generating_points(pts in arb_points()) {
        if let Ok(hull) = convex_hull(&pts) {
            for p in &pts {
                prop_assert!(hull.contains(*p), "hull must contain input {p}");
            }
        }
    }

    #[test]
    fn hull_is_convex(pts in arb_points()) {
        if let Ok(hull) = convex_hull(&pts) {
            // Midpoint of any two vertices stays inside.
            let vs = hull.vertices();
            for i in 0..vs.len() {
                for j in 0..vs.len() {
                    let mid = Point::new(
                        (vs[i].x + vs[j].x) / 2.0,
                        (vs[i].y + vs[j].y) / 2.0,
                    );
                    prop_assert!(hull.contains(mid));
                }
            }
        }
    }

    #[test]
    fn hull_area_positive_and_bounded(pts in arb_points()) {
        if let Ok(hull) = convex_hull(&pts) {
            prop_assert!(hull.area() > 0.0);
            // Bounded by the bounding box of its input domain.
            prop_assert!(hull.area() <= 1440.0 * 600.0 + 1.0);
        }
    }

    #[test]
    fn quickhull_agrees_with_monotone_chain(pts in arb_points()) {
        match (convex_hull(&pts), quickhull(&pts)) {
            (Ok(h1), Ok(h2)) => {
                prop_assert!((h1.area() - h2.area()).abs() < 1e-6 * (1.0 + h1.area()));
                for v in h1.vertices() {
                    prop_assert!(h2.contains(*v));
                }
            }
            (Err(_), Err(_)) => {}
            // One algorithm may treat a near-degenerate input slightly
            // differently; both succeeding or both failing is the norm, a
            // split is acceptable only for ~zero-area inputs.
            (Ok(h), Err(_)) | (Err(_), Ok(h)) => {
                prop_assert!(h.area() < 1.0, "split verdict on non-degenerate input");
            }
        }
    }

    #[test]
    fn y_range_consistent_with_containment(pts in arb_points(), x in 0.0f64..1440.0) {
        if let Ok(hull) = convex_hull(&pts) {
            if let Some((lo, hi)) = hull.y_range_at(x) {
                prop_assert!(lo <= hi + 1e-9);
                let mid = (lo + hi) / 2.0;
                prop_assert!(hull.contains(Point::new(x, mid)));
                prop_assert!(!hull.contains(Point::new(x, hi + 1.0)));
                prop_assert!(!hull.contains(Point::new(x, lo - 1.0)));
            }
        }
    }

    #[test]
    fn centroid_inside_hull(pts in arb_points()) {
        if let Ok(hull) = convex_hull(&pts) {
            prop_assert!(hull.contains(hull.centroid()));
        }
    }
}
