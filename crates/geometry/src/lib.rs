//! 2-D computational geometry used by SHATTER's anomaly-detection layer.
//!
//! The SHATTER framework (DSN 2023) linearizes clustering-based anomaly
//! detection models into convex hulls so that cluster membership becomes a
//! conjunction of *left-of-line-segment* linear constraints (paper Eq. 9–10,
//! Fig. 7). This crate provides the geometric substrate:
//!
//! - [`Point`]: a 2-D point in the (arrival-time, stay-duration) plane,
//! - [`convex_hull`]: Andrew's monotone-chain hull construction,
//! - [`quickhull`]: the quickhull algorithm the paper cites (Barber et al.),
//! - [`Hull`]: a counter-clockwise convex polygon with containment tests,
//!   area, and the half-plane (line-segment) view used by the formal model.
//!
//! # Examples
//!
//! ```
//! use shatter_geometry::{convex_hull, Point};
//!
//! let pts = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(4.0, 0.0),
//!     Point::new(4.0, 3.0),
//!     Point::new(0.0, 3.0),
//!     Point::new(2.0, 1.5), // interior
//! ];
//! let hull = convex_hull(&pts).expect("non-degenerate input");
//! assert_eq!(hull.vertices().len(), 4);
//! assert!(hull.contains(shatter_geometry::Point::new(1.0, 1.0)));
//! assert!(!hull.contains(shatter_geometry::Point::new(5.0, 1.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hull;
mod point;
mod segment;

pub use hull::{convex_hull, quickhull, Hull, HullError};
pub use point::Point;
pub use segment::{orientation, HalfPlane, Orientation, Segment};
