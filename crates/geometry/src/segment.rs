use crate::Point;

/// Tolerance used for collinearity decisions throughout the crate.
pub(crate) const EPS: f64 = 1e-9;

/// Relative orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The triple turns counter-clockwise (positive cross product).
    CounterClockwise,
    /// The triple turns clockwise (negative cross product).
    Clockwise,
    /// The three points are (numerically) collinear.
    Collinear,
}

/// Computes the orientation of the ordered triple `(a, b, c)`.
///
/// ```
/// use shatter_geometry::{orientation, Orientation, Point};
/// let o = orientation(
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(1.0, 1.0),
/// );
/// assert_eq!(o, Orientation::CounterClockwise);
/// ```
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let cross = b.cross(a, c);
    if cross > EPS {
        Orientation::CounterClockwise
    } else if cross < -EPS {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// A directed line segment between two points.
///
/// SHATTER's formal ADM model (paper Eq. 10) represents each convex-hull
/// cluster as a conjunction of `leftOfLineSegment` predicates over the
/// directed boundary segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start point.
    pub start: Point,
    /// Segment end point.
    pub end: Point,
}

impl Segment {
    /// Creates a directed segment.
    pub fn new(start: Point, end: Point) -> Self {
        Segment { start, end }
    }

    /// Signed distance-like quantity: positive when `p` lies strictly to the
    /// left of the directed segment, negative to the right, ~0 on the line.
    pub fn side(&self, p: Point) -> f64 {
        self.end.cross(self.start, p)
    }

    /// The paper's `leftOfLineSegment(t1, t2, K)` predicate: is the point on
    /// the left of (or exactly on) the directed segment?
    pub fn left_of(&self, p: Point) -> bool {
        self.side(p) >= -EPS
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.start.distance(self.end)
    }

    /// The half-plane `a*x + b*y <= c` consisting of points left of (or on)
    /// this directed segment. This is the linear-constraint form handed to
    /// the SMT encoding.
    pub fn half_plane(&self) -> HalfPlane {
        // left_of: (end - start) × (p - start) >= 0
        //  => (ex-sx)(py-sy) - (ey-sy)(px-sx) >= 0
        //  => -(ey-sy) px + (ex-sx) py >= -(ey-sy) sx + (ex-sx) sy
        // normalized to a*x + b*y <= c with (a, b, c) below.
        let dx = self.end.x - self.start.x;
        let dy = self.end.y - self.start.y;
        HalfPlane {
            a: dy,
            b: -dx,
            c: dy * self.start.x - dx * self.start.y,
        }
    }
}

/// A closed half-plane `a*x + b*y <= c`.
///
/// Produced by [`Segment::half_plane`]; a convex hull is the intersection of
/// the half-planes of its counter-clockwise boundary segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    /// Coefficient of `x`.
    pub a: f64,
    /// Coefficient of `y`.
    pub b: f64,
    /// Right-hand side.
    pub c: f64,
}

impl HalfPlane {
    /// Returns `true` when the point satisfies `a*x + b*y <= c` (within
    /// tolerance).
    pub fn contains(&self, p: Point) -> bool {
        self.a * p.x + self.b * p.y <= self.c + EPS
    }

    /// Slack `c - (a*x + b*y)`; non-negative inside the half-plane.
    pub fn slack(&self, p: Point) -> f64 {
        self.c - (self.a * p.x + self.b * p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_sign_matches_left_right() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        assert!(s.side(Point::new(0.5, 1.0)) > 0.0);
        assert!(s.side(Point::new(0.5, -1.0)) < 0.0);
        assert!(s.left_of(Point::new(0.5, 1.0)));
        assert!(!s.left_of(Point::new(0.5, -1.0)));
        // On the line counts as left (closed half-plane).
        assert!(s.left_of(Point::new(0.5, 0.0)));
    }

    #[test]
    fn half_plane_agrees_with_left_of() {
        let s = Segment::new(Point::new(1.0, 2.0), Point::new(4.0, -1.0));
        let hp = s.half_plane();
        for p in [
            Point::new(0.0, 0.0),
            Point::new(3.0, 3.0),
            Point::new(-2.0, -5.0),
            Point::new(10.0, 0.1),
        ] {
            assert_eq!(s.left_of(p), hp.contains(p), "disagree at {p}");
        }
    }

    #[test]
    fn half_plane_slack_is_zero_on_boundary() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let hp = s.half_plane();
        assert!(hp.slack(Point::new(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn collinear_triples_detected() {
        let o = orientation(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        );
        assert_eq!(o, Orientation::Collinear);
    }

    #[test]
    fn segment_length() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert!((s.length() - 5.0).abs() < 1e-12);
    }
}
