use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the 2-D plane.
///
/// In SHATTER's anomaly-detection model the `x` coordinate is the arrival
/// time of an occupant at a zone (minute of day) and the `y` coordinate is
/// the stay duration (minutes), but the type is domain-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (arrival time in the ADM use case).
    pub x: f64,
    /// Vertical coordinate (stay duration in the ADM use case).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    ///
    /// ```
    /// use shatter_geometry::Point;
    /// let d = Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0));
    /// assert!((d - 5.0).abs() < 1e-12);
    /// ```
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// 2-D cross product `(self - origin) × (other - origin)`.
    ///
    /// Positive when the turn `origin -> self -> other` is counter-clockwise.
    pub fn cross(self, origin: Point, other: Point) -> f64 {
        (self.x - origin.x) * (other.y - origin.y) - (self.y - origin.y) * (other.x - origin.x)
    }

    /// Dot product treating the points as vectors.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Returns `true` when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison by `(x, y)`; used by hull construction.
    pub fn lex_cmp(self, other: Point) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let o = Point::new(0.0, 0.0);
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert!(a.cross(o, b) > 0.0); // ccw
        assert!(b.cross(o, a) < 0.0); // cw
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Point = (4.0, 7.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (4.0, 7.0));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering::*;
        assert_eq!(Point::new(0.0, 5.0).lex_cmp(Point::new(1.0, 0.0)), Less);
        assert_eq!(Point::new(1.0, 0.0).lex_cmp(Point::new(1.0, 2.0)), Less);
        assert_eq!(Point::new(1.0, 2.0).lex_cmp(Point::new(1.0, 2.0)), Equal);
    }
}
