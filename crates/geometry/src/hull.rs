use std::fmt;

use crate::segment::{orientation, Orientation, EPS};
use crate::{HalfPlane, Point, Segment};

/// Error produced when a convex hull cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HullError {
    /// Fewer than three input points were supplied.
    TooFewPoints {
        /// Number of (distinct) points that were available.
        got: usize,
    },
    /// All input points are collinear, so the hull would be degenerate.
    Degenerate,
    /// An input coordinate was NaN or infinite.
    NonFinite,
}

impl fmt::Display for HullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HullError::TooFewPoints { got } => {
                write!(f, "convex hull needs at least 3 distinct points, got {got}")
            }
            HullError::Degenerate => write!(f, "all points are collinear"),
            HullError::NonFinite => write!(f, "input contains non-finite coordinates"),
        }
    }
}

impl std::error::Error for HullError {}

/// A convex polygon stored as counter-clockwise vertices.
///
/// This is SHATTER's linearized cluster representation (paper Fig. 7): the
/// boundary segments, taken counter-clockwise, give the
/// `leftOfLineSegment` constraints of Eq. 10, and a point is *within* the
/// cluster (Eq. 9) iff it is left of every segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Hull {
    vertices: Vec<Point>,
}

impl Hull {
    /// Builds a hull directly from counter-clockwise vertices.
    ///
    /// # Errors
    ///
    /// Returns [`HullError`] when fewer than three vertices are given, when
    /// any coordinate is non-finite, or when the polygon has (numerically)
    /// zero area.
    pub fn from_ccw_vertices(vertices: Vec<Point>) -> Result<Self, HullError> {
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(HullError::NonFinite);
        }
        if vertices.len() < 3 {
            return Err(HullError::TooFewPoints {
                got: vertices.len(),
            });
        }
        let hull = Hull { vertices };
        if hull.area() <= EPS {
            return Err(HullError::Degenerate);
        }
        Ok(hull)
    }

    /// The counter-clockwise vertex list.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of boundary segments (equals the number of vertices).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// A hull is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the counter-clockwise directed boundary segments
    /// (`K_{o,z,i}` in the paper's notation).
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// The half-plane (linear constraint) view of the boundary; their
    /// conjunction defines hull membership for the SMT encoding.
    pub fn half_planes(&self) -> Vec<HalfPlane> {
        self.segments().map(|s| s.half_plane()).collect()
    }

    /// The paper's `withinCluster(t1, t2, C)` predicate: `true` iff the point
    /// is left of every counter-clockwise boundary segment.
    pub fn contains(&self, p: Point) -> bool {
        self.segments().all(|s| s.left_of(p))
    }

    /// Polygon area by the shoelace formula (positive for ccw ordering).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        let mut twice = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            twice += a.x * b.y - b.x * a.y;
        }
        twice / 2.0
    }

    /// Vertex centroid of the polygon.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len() as f64;
        let sum = self
            .vertices
            .iter()
            .fold(Point::default(), |acc, &p| acc + p);
        Point::new(sum.x / n, sum.y / n)
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.vertices {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (min, max)
    }

    /// Given an arrival time `x`, returns the `[y_min, y_max]` range of stay
    /// durations inside the hull at that abscissa, or `None` when the
    /// vertical line misses the hull.
    ///
    /// This implements the paper's `minStay`/`maxStay` primitives: the
    /// minimum/maximum stealthy stay duration for an arrival time.
    pub fn y_range_at(&self, x: f64) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let (xa, xb) = (a.x, b.x);
            if (xa - x).abs() <= EPS {
                lo = lo.min(a.y);
                hi = hi.max(a.y);
            }
            if (xa < x && xb > x) || (xb < x && xa > x) {
                let t = (x - xa) / (xb - xa);
                let y = a.y + t * (b.y - a.y);
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
        if lo.is_finite() && hi.is_finite() && lo <= hi + EPS {
            Some((lo.min(hi), hi.max(lo)))
        } else {
            None
        }
    }
}

fn distinct_lex_sorted(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup_by(|a, b| (a.x - b.x).abs() <= EPS && (a.y - b.y).abs() <= EPS);
    pts
}

/// Computes the convex hull of a point set with Andrew's monotone chain.
///
/// Returns counter-clockwise vertices with collinear boundary points
/// removed.
///
/// # Errors
///
/// Returns [`HullError`] for fewer than three distinct points, collinear
/// input, or non-finite coordinates.
pub fn convex_hull(points: &[Point]) -> Result<Hull, HullError> {
    if points.iter().any(|p| !p.is_finite()) {
        return Err(HullError::NonFinite);
    }
    let pts = distinct_lex_sorted(points);
    if pts.len() < 3 {
        return Err(HullError::TooFewPoints { got: pts.len() });
    }

    let mut lower: Vec<Point> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2
            && orientation(lower[lower.len() - 2], lower[lower.len() - 1], p)
                != Orientation::CounterClockwise
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2
            && orientation(upper[upper.len() - 2], upper[upper.len() - 1], p)
                != Orientation::CounterClockwise
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    Hull::from_ccw_vertices(lower)
}

/// Computes the convex hull with the quickhull algorithm (Barber, Dobkin,
/// Huhdanpaa 1996), which the paper cites for ADM linearization.
///
/// Produces the same hull as [`convex_hull`] (up to vertex rotation); kept as
/// an independent implementation so the two can cross-check each other in
/// property tests.
///
/// # Errors
///
/// Same failure conditions as [`convex_hull`].
pub fn quickhull(points: &[Point]) -> Result<Hull, HullError> {
    if points.iter().any(|p| !p.is_finite()) {
        return Err(HullError::NonFinite);
    }
    let pts = distinct_lex_sorted(points);
    if pts.len() < 3 {
        return Err(HullError::TooFewPoints { got: pts.len() });
    }
    let leftmost = pts[0];
    let rightmost = *pts.last().expect("non-empty");

    // Split into points strictly right of L->R (the lower chain candidates)
    // and strictly right of R->L (the upper chain candidates).
    let base = Segment::new(leftmost, rightmost);
    let below: Vec<Point> = pts
        .iter()
        .copied()
        .filter(|&p| base.side(p) < -EPS)
        .collect();
    let above: Vec<Point> = pts
        .iter()
        .copied()
        .filter(|&p| base.side(p) > EPS)
        .collect();

    // Counter-clockwise: leftmost, lower chain left->right, rightmost,
    // upper chain right->left.
    let mut ccw: Vec<Point> = Vec::new();
    ccw.push(leftmost);
    quickhull_rec(leftmost, rightmost, &below, &mut |p| ccw.push(p));
    ccw.push(rightmost);
    quickhull_rec(rightmost, leftmost, &above, &mut |p| ccw.push(p));
    Hull::from_ccw_vertices(ccw)
}

/// Emits, in chain order from `a` to `b` (both exclusive), the hull points
/// among `pts`, which must all lie strictly to the right of the directed
/// segment `a -> b`.
fn quickhull_rec(a: Point, b: Point, pts: &[Point], emit: &mut impl FnMut(Point)) {
    if pts.is_empty() {
        return;
    }
    let seg = Segment::new(a, b);
    // Farthest to the right = most negative side value.
    let far = *pts
        .iter()
        .min_by(|p, q| {
            seg.side(**p)
                .partial_cmp(&seg.side(**q))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty");

    let seg1 = Segment::new(a, far);
    let seg2 = Segment::new(far, b);
    let outside1: Vec<Point> = pts
        .iter()
        .copied()
        .filter(|&p| seg1.side(p) < -EPS)
        .collect();
    let outside2: Vec<Point> = pts
        .iter()
        .copied()
        .filter(|&p| seg2.side(p) < -EPS)
        .collect();

    quickhull_rec(a, far, &outside1, emit);
    emit(far);
    quickhull_rec(far, b, &outside2, emit);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let mut pts = square();
        pts.push(Point::new(2.0, 2.0));
        pts.push(Point::new(1.0, 3.0));
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.len(), 4);
        assert!((hull.area() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let hull = convex_hull(&square()).unwrap();
        assert!(hull.area() > 0.0);
    }

    #[test]
    fn containment_closed_boundary() {
        let hull = convex_hull(&square()).unwrap();
        assert!(hull.contains(Point::new(0.0, 0.0))); // vertex
        assert!(hull.contains(Point::new(2.0, 0.0))); // edge
        assert!(hull.contains(Point::new(2.0, 2.0))); // interior
        assert!(!hull.contains(Point::new(4.1, 2.0)));
        assert!(!hull.contains(Point::new(-0.1, 2.0)));
    }

    #[test]
    fn collinear_input_is_degenerate() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        assert!(matches!(
            convex_hull(&pts),
            Err(HullError::TooFewPoints { .. }) | Err(HullError::Degenerate)
        ));
    }

    #[test]
    fn too_few_points_error() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        assert_eq!(convex_hull(&pts), Err(HullError::TooFewPoints { got: 2 }));
    }

    #[test]
    fn duplicate_points_deduplicated() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn non_finite_rejected() {
        let pts = vec![
            Point::new(f64::NAN, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        assert_eq!(convex_hull(&pts), Err(HullError::NonFinite));
    }

    #[test]
    fn quickhull_matches_monotone_chain_on_grid() {
        let mut pts = Vec::new();
        for i in 0..7 {
            for j in 0..5 {
                pts.push(Point::new(i as f64, (j * j) as f64 * 0.5));
            }
        }
        let h1 = convex_hull(&pts).unwrap();
        let h2 = quickhull(&pts).unwrap();
        assert!(
            (h1.area() - h2.area()).abs() < 1e-9,
            "areas {} vs {}",
            h1.area(),
            h2.area()
        );
        for v in h1.vertices() {
            assert!(h2.contains(*v));
        }
        for v in h2.vertices() {
            assert!(h1.contains(*v));
        }
    }

    #[test]
    fn y_range_at_square() {
        let hull = convex_hull(&square()).unwrap();
        let (lo, hi) = hull.y_range_at(2.0).unwrap();
        assert!((lo - 0.0).abs() < 1e-9);
        assert!((hi - 4.0).abs() < 1e-9);
        assert!(hull.y_range_at(5.0).is_none());
        assert!(hull.y_range_at(-1.0).is_none());
    }

    #[test]
    fn y_range_at_triangle_interpolates() {
        let hull = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 4.0),
        ])
        .unwrap();
        let (lo, hi) = hull.y_range_at(1.0).unwrap();
        assert!((lo - 0.0).abs() < 1e-9);
        assert!((hi - 2.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_and_bbox() {
        let hull = convex_hull(&square()).unwrap();
        let c = hull.centroid();
        assert!((c.x - 2.0).abs() < 1e-9 && (c.y - 2.0).abs() < 1e-9);
        let (min, max) = hull.bounding_box();
        assert_eq!((min.x, min.y, max.x, max.y), (0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    fn half_planes_conjunction_equals_containment() {
        let hull = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(6.0, 1.0),
            Point::new(4.0, 5.0),
            Point::new(-1.0, 3.0),
        ])
        .unwrap();
        let hps = hull.half_planes();
        for p in [
            Point::new(2.0, 2.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 0.0),
            Point::new(-2.0, 1.0),
        ] {
            let by_hps = hps.iter().all(|hp| hp.contains(p));
            assert_eq!(by_hps, hull.contains(p), "disagree at {p}");
        }
    }
}
