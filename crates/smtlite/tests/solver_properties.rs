//! Property-based tests for the SMT stack: random instances cross-checked
//! against brute force / direct reasoning.

use proptest::prelude::*;

use shatter_smt::ast::{Formula, LinExpr};
use shatter_smt::sat::{Lit, SatSolver, SatVerdict};
use shatter_smt::{NumericMode, Rat, Solver};

// ---------- SAT layer -----------------------------------------------------

fn arb_cnf() -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (3usize..9).prop_flat_map(|n| {
        let clause = prop::collection::vec((1..=n as i32, any::<bool>()), 1..4).prop_map(|lits| {
            lits.into_iter()
                .map(|(v, s)| if s { v } else { -v })
                .collect::<Vec<i32>>()
        });
        (Just(n), prop::collection::vec(clause, 1..30))
    })
}

fn brute_force_sat(n: usize, clauses: &[Vec<i32>]) -> bool {
    (0..1u32 << n).any(|mask| {
        clauses.iter().all(|c| {
            c.iter().any(|&l| {
                let v = l.unsigned_abs() - 1;
                ((mask >> v) & 1 == 1) == (l > 0)
            })
        })
    })
}

proptest! {
    #[test]
    fn cdcl_agrees_with_brute_force((n, clauses) in arb_cnf()) {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in &clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&l| {
                    let v = (l.unsigned_abs() - 1) as usize;
                    if l > 0 { Lit::pos(v) } else { Lit::neg(v) }
                })
                .collect();
            s.add_clause(&lits);
        }
        let expected = brute_force_sat(n, &clauses);
        match s.solve() {
            SatVerdict::Sat(model) => {
                prop_assert!(expected, "solver SAT, brute force UNSAT");
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| {
                        let v = (l.unsigned_abs() - 1) as usize;
                        (l > 0) == model[v]
                    }), "model violates clause {c:?}");
                }
            }
            SatVerdict::Unsat => prop_assert!(!expected, "solver UNSAT, brute force SAT"),
            SatVerdict::Unknown => prop_assert!(false, "unbudgeted solve returned Unknown"),
        }
    }
}

proptest! {
    /// Clause-DB reduction preserves verdicts and model validity: a
    /// solver forced to garbage-collect constantly (budget 1, so the
    /// reducer fires at every conflict) must agree with the untouched
    /// solver on every random instance, and any model it returns must
    /// satisfy every clause.
    #[test]
    fn gc_preserves_verdicts_and_models((n, clauses) in arb_cnf()) {
        let build = |gc_budget: Option<usize>| {
            let mut s = SatSolver::new();
            if let Some(b) = gc_budget {
                s.set_gc_budget(b);
            }
            for _ in 0..n {
                s.new_var();
            }
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&l| {
                        let v = (l.unsigned_abs() - 1) as usize;
                        if l > 0 { Lit::pos(v) } else { Lit::neg(v) }
                    })
                    .collect();
                s.add_clause(&lits);
            }
            s
        };
        let expected = brute_force_sat(n, &clauses);
        let mut gc = build(Some(1));
        match gc.solve() {
            SatVerdict::Sat(model) => {
                prop_assert!(expected, "GC solver SAT, brute force UNSAT");
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| {
                        let v = (l.unsigned_abs() - 1) as usize;
                        (l > 0) == model[v]
                    }), "GC-solver model violates clause {c:?}");
                }
            }
            SatVerdict::Unsat => prop_assert!(!expected, "GC solver UNSAT, brute force SAT"),
            SatVerdict::Unknown => prop_assert!(false, "unbudgeted solve returned Unknown"),
        }
        // And the default-budget solver agrees (differently-searched,
        // same verdict).
        let mut plain = build(None);
        prop_assert_eq!(matches!(plain.solve(), SatVerdict::Sat(_)), expected);
    }

    /// Reduction under assumption probes: interleaved solve_under calls
    /// with a constantly-firing reducer keep verdicts equal to a
    /// GC-free reference solver.
    #[test]
    fn gc_stable_under_assumption_probes(
        (n, clauses) in arb_cnf(),
        probe_var in 0usize..8,
        polarity in any::<bool>(),
    ) {
        let probe_var = probe_var % n.max(1);
        let assumption = if polarity { Lit::pos(probe_var) } else { Lit::neg(probe_var) };
        let mut solvers: Vec<SatSolver> = [Some(1usize), None]
            .iter()
            .map(|budget| {
                let mut s = SatSolver::new();
                if let Some(b) = budget {
                    s.set_gc_budget(*b);
                }
                for _ in 0..n {
                    s.new_var();
                }
                for c in &clauses {
                    let lits: Vec<Lit> = c
                        .iter()
                        .map(|&l| {
                            let v = (l.unsigned_abs() - 1) as usize;
                            if l > 0 { Lit::pos(v) } else { Lit::neg(v) }
                        })
                        .collect();
                    s.add_clause(&lits);
                }
                s
            })
            .collect();
        let verdicts: Vec<(bool, bool, bool)> = solvers
            .iter_mut()
            .map(|s| {
                let under = matches!(s.solve_under(&[assumption]), SatVerdict::Sat(_));
                let free = matches!(s.solve(), SatVerdict::Sat(_));
                let again = matches!(s.solve_under(&[assumption]), SatVerdict::Sat(_));
                (under, free, again)
            })
            .collect();
        prop_assert_eq!(verdicts[0], verdicts[1], "GC diverged from reference");
        // Probes are repeatable: learning (and GC'ing) between calls
        // must not flip a verdict.
        prop_assert_eq!(verdicts[0].0, verdicts[0].2);
    }
}

// ---------- LRA layer ------------------------------------------------------

proptest! {
    /// Random interval constraints on independent variables: satisfiable
    /// iff every interval is non-empty; the model must sit inside.
    #[test]
    fn box_constraints(bounds in prop::collection::vec((-50i64..50, -50i64..50), 1..8)) {
        let mut s = Solver::new();
        let mut vars = Vec::new();
        let mut feasible = true;
        for &(a, b) in &bounds {
            let (lo, hi) = (a.min(b), a.max(b));
            // Every interval [lo, hi] here is non-empty by construction;
            // flip half of them to force emptiness.
            let x = s.new_real();
            s.assert_formula(LinExpr::var(x).ge(lo));
            s.assert_formula(LinExpr::var(x).le(hi));
            vars.push((x, lo, hi));
            feasible &= lo <= hi;
        }
        let model = s.check();
        prop_assert_eq!(model.is_some(), feasible);
        if let Some(m) = model {
            for (x, lo, hi) in vars {
                let v = m.real_exact(x);
                prop_assert!(v >= Rat::int(lo as i128) && v <= Rat::int(hi as i128));
            }
        }
    }

    /// Difference chains: x0 <= x1 - d1 <= ... ; feasible for any d when
    /// unbounded, infeasible once a cycle with positive total weight is
    /// closed.
    #[test]
    fn difference_cycle(ds in prop::collection::vec(-10i64..10, 2..6)) {
        let mut s = Solver::new();
        let n = ds.len();
        let vars: Vec<_> = (0..n).map(|_| s.new_real()).collect();
        // x_{i+1} >= x_i + d_i, cyclically.
        let mut total = 0i64;
        for (i, &d) in ds.iter().enumerate() {
            let a = vars[i];
            let b = vars[(i + 1) % n];
            s.assert_formula(
                LinExpr::var(b).minus(&LinExpr::var(a)).ge(d),
            );
            total += d;
        }
        // Feasible iff the cycle's total required gain is <= 0.
        prop_assert_eq!(s.check().is_some(), total <= 0, "cycle total {}", total);
    }

    /// maximize() returns a value no less than any feasible witness we can
    /// construct by hand, and the model achieves the reported value.
    #[test]
    fn maximize_is_sound(caps in prop::collection::vec(0i64..20, 1..6)) {
        let mut s = Solver::new();
        let mut obj = LinExpr::constant(0);
        for &c in &caps {
            let x = s.new_real();
            s.assert_formula(LinExpr::var(x).ge(0));
            s.assert_formula(LinExpr::var(x).le(c));
            obj = obj.plus(&LinExpr::var(x));
        }
        let total: i64 = caps.iter().sum();
        let (v, m) = s.maximize(&obj, 0.0, total as f64 + 5.0, 1e-3).expect("feasible");
        prop_assert!((v - total as f64).abs() < 0.01, "max {v} expected {total}");
        prop_assert!((m.eval(&obj).to_f64() - v).abs() < 1e-9);
    }

    /// Boolean structure + theory: implication chains force the tightest
    /// asserted bound.
    #[test]
    fn guarded_bounds(guards in prop::collection::vec(any::<bool>(), 1..6)) {
        let mut s = Solver::new();
        let x = s.new_real();
        let mut forced_min = 0i64;
        for (i, &on) in guards.iter().enumerate() {
            let p = s.new_bool();
            let bound = (i as i64 + 1) * 3;
            s.assert_formula(Formula::implies(
                Formula::Bool(p),
                LinExpr::var(x).ge(bound),
            ));
            if on {
                s.assert_formula(Formula::Bool(p));
                forced_min = forced_min.max(bound);
            }
        }
        s.assert_formula(LinExpr::var(x).le(100));
        let m = s.check().expect("always satisfiable");
        prop_assert!(m.real(x) >= forced_min as f64 - 1e-9);
    }
}

// ---------- Numeric-mode equivalence ---------------------------------------

proptest! {
    /// The certified float fast path must reproduce the forced-exact
    /// reference bit for bit: same verdicts, same exact models, same
    /// objective bits, same pivot counts — across random guarded-bound
    /// instances with an OMT maximize on top.
    #[test]
    fn numeric_modes_agree_byte_for_byte(
        caps in prop::collection::vec((1i64..20, any::<bool>()), 1..6),
    ) {
        let run = |mode: NumericMode| {
            let mut s = Solver::new();
            s.set_numeric_mode(mode);
            let mut obj = LinExpr::constant(0);
            let mut vars = Vec::new();
            for &(c, guarded) in &caps {
                let x = s.new_real();
                s.assert_formula(LinExpr::var(x).ge(0));
                if guarded {
                    // p -> x <= c, and ¬p forces the tighter cap c/2.
                    let p = s.new_bool();
                    s.assert_formula(Formula::implies(
                        Formula::Bool(p),
                        LinExpr::var(x).le(c),
                    ));
                    s.assert_formula(Formula::or([
                        Formula::Bool(p),
                        LinExpr::var(x).le(c / 2),
                    ]));
                } else {
                    s.assert_formula(LinExpr::var(x).le(c));
                }
                obj = obj.plus(&LinExpr::var(x));
                vars.push(x);
            }
            let hi = caps.iter().map(|&(c, _)| c).sum::<i64>() as f64 + 5.0;
            let best = s.maximize(&obj, 0.0, hi, 1e-3).map(|(v, m)| {
                (
                    v.to_bits(),
                    vars.iter().map(|&x| m.real_exact(x)).collect::<Vec<Rat>>(),
                )
            });
            (best, s.simplex_stats())
        };
        let (fast, fstats) = run(NumericMode::FloatFirst);
        let (exact, estats) = run(NumericMode::ExactOnly);
        prop_assert_eq!(fast, exact, "modes diverged on objective or model");
        prop_assert_eq!(fstats.pivots, estats.pivots, "pivot sequences diverged");
        prop_assert_eq!(estats.float_pivots, 0);
        prop_assert_eq!(fstats.float_pivots, fstats.pivots);
    }

    /// Near-tie regime: bound pairs differing by ~1e-15 land inside the
    /// float comparison margin, so the fast path must take the exact
    /// fallback — and still agree with the forced-exact verdict and the
    /// hand-computed feasibility.
    #[test]
    fn near_tie_regime_falls_back_to_exact(
        a in -1000i64..1000,
        delta in -2i64..3i64,
        k in 1i64..4,
    ) {
        const D: i128 = 1_000_000_000_000_000;
        let run = |mode: NumericMode| {
            let mut s = Solver::new();
            s.set_numeric_mode(mode);
            let x = s.new_real();
            // a/(kD) <= x <= (a+delta)/(kD): feasible iff delta >= 0,
            // decided by comparisons ~1e-15 apart — far inside the
            // ~1e-12 float margin.
            s.assert_formula(LinExpr::var(x).ge(Rat::new(a as i128, k as i128 * D)));
            s.assert_formula(LinExpr::var(x).le(Rat::new((a + delta) as i128, k as i128 * D)));
            (s.check().map(|m| m.real_exact(x)), s.simplex_stats())
        };
        let (fast, fstats) = run(NumericMode::FloatFirst);
        let (exact, estats) = run(NumericMode::ExactOnly);
        prop_assert_eq!(&fast, &exact, "modes diverged");
        prop_assert_eq!(fast.is_some(), delta >= 0);
        prop_assert_eq!(fstats.pivots, estats.pivots);
        prop_assert!(fstats.exact_fallbacks > 0, "near-tie comparison must fall back");
    }
}
