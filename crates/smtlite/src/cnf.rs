//! Tseitin transformation from [`Formula`] to CNF over the CDCL solver's
//! variables, with a registry mapping theory atoms to propositional
//! variables (the "Boolean skeleton" of lazy SMT).

use std::collections::HashMap;

use crate::ast::{Atom, BoolVar, Formula, LinExpr, Rel};
use crate::sat::{Lit, SatSolver};
use crate::Rat;

/// Canonical hash key for an atom (sorted coefficient list + constant + op).
type AtomKey = (Vec<(usize, Rat)>, Rat, u8);

fn atom_key(a: &Atom) -> AtomKey {
    let coeffs: Vec<(usize, Rat)> = a.expr.coeffs.iter().map(|(v, c)| (v.index(), *c)).collect();
    let op = match a.op {
        Rel::Le => 0u8,
        Rel::Lt => 1,
        Rel::Eq => 2,
    };
    (coeffs, a.expr.constant, op)
}

/// Undo record for [`Encoder::pop`]: registry entries added since the
/// matching push (the SAT-level state is checkpointed by `SatSolver`'s
/// own frame).
#[derive(Debug, Default, Clone)]
struct EncFrame {
    n_atoms: usize,
    added_bools: Vec<usize>,
    lit_true: Option<Lit>,
}

/// Incremental Tseitin encoder: owns the SAT solver and the atom registry.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    /// The underlying CDCL solver.
    pub sat: SatSolver,
    /// SAT variable per registered theory atom (Le/Lt only; Eq is split).
    atom_vars: HashMap<AtomKey, usize>,
    /// Registered atoms with their SAT variables, in registration order —
    /// a `Vec` so the theory-bound gathering in the DPLL(T) loop iterates
    /// deterministically (HashMap order would leak into simplex column
    /// allocation and conflict explanations, i.e. into the models).
    /// Crate-visible so the solver can borrow it alongside `sat` (the
    /// theory hook reads atoms while the CDCL core searches).
    pub(crate) atoms: Vec<(usize, Atom)>,
    /// SAT variable per user-facing Boolean variable.
    bool_vars: HashMap<usize, usize>,
    /// Cached constant-true literal.
    lit_true: Option<Lit>,
    /// Assertion-trail checkpoints mirroring `sat`'s frames.
    frames: Vec<EncFrame>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub(crate) fn new() -> Encoder {
        Encoder::default()
    }

    /// Checkpoints the registry and the underlying SAT solver.
    pub(crate) fn push(&mut self) {
        self.sat.push();
        self.frames.push(EncFrame {
            n_atoms: self.atoms.len(),
            added_bools: Vec::new(),
            lit_true: self.lit_true,
        });
    }

    /// Restores the registry and SAT solver to the matching push.
    pub(crate) fn pop(&mut self) {
        let f = self.frames.pop().expect("pop without matching push");
        for (_, a) in self.atoms.drain(f.n_atoms..) {
            self.atom_vars.remove(&atom_key(&a));
        }
        for b in f.added_bools {
            self.bool_vars.remove(&b);
        }
        self.lit_true = f.lit_true;
        self.sat.pop();
    }

    /// The literal fixed to true.
    pub fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.lit_true {
            return l;
        }
        let v = self.sat.new_var();
        let l = Lit::pos(v);
        self.sat.add_clause(&[l]);
        self.lit_true = Some(l);
        l
    }

    /// SAT variable backing a user Boolean variable.
    pub fn bool_sat_var(&mut self, b: BoolVar) -> usize {
        if let Some(&v) = self.bool_vars.get(&b.index()) {
            return v;
        }
        let v = self.sat.new_var();
        self.bool_vars.insert(b.index(), v);
        if let Some(f) = self.frames.last_mut() {
            f.added_bools.push(b.index());
        }
        v
    }

    /// SAT variable for a (Le/Lt) atom, registering it on first sight.
    fn atom_sat_var(&mut self, a: &Atom) -> usize {
        debug_assert!(a.op != Rel::Eq, "Eq atoms are split before encoding");
        let key = atom_key(a);
        if let Some(&v) = self.atom_vars.get(&key) {
            return v;
        }
        let v = self.sat.new_var();
        self.atom_vars.insert(key, v);
        self.atoms.push((v, a.clone()));
        v
    }

    /// The SAT value of a user Boolean variable in a model, if allocated.
    pub fn bool_value(&self, b: BoolVar, model: &[bool]) -> Option<bool> {
        self.bool_vars.get(&b.index()).map(|&v| model[v])
    }

    /// Encodes a formula to a literal equisatisfiable with it.
    pub fn encode(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::True => self.true_lit(),
            Formula::False => self.true_lit().negated(),
            Formula::Bool(b) => Lit::pos(self.bool_sat_var(*b)),
            Formula::Atom(a) => self.encode_atom(a),
            Formula::Not(g) => self.encode(g).negated(),
            Formula::And(gs) => {
                let lits: Vec<Lit> = gs.iter().map(|g| self.encode(g)).collect();
                self.tseitin_and(&lits)
            }
            Formula::Or(gs) => {
                let lits: Vec<Lit> = gs.iter().map(|g| self.encode(g)).collect();
                self.tseitin_and(&lits.iter().map(|l| l.negated()).collect::<Vec<_>>())
                    .negated()
            }
            Formula::Implies(a, b) => {
                let la = self.encode(a).negated();
                let lb = self.encode(b);
                self.tseitin_and(&[la.negated(), lb.negated()]).negated()
            }
            Formula::Iff(a, b) => {
                let la = self.encode(a);
                let lb = self.encode(b);
                let y = Lit::pos(self.sat.new_var());
                // y <-> (la <-> lb)
                self.sat.add_clause(&[y.negated(), la.negated(), lb]);
                self.sat.add_clause(&[y.negated(), la, lb.negated()]);
                self.sat.add_clause(&[y, la, lb]);
                self.sat.add_clause(&[y, la.negated(), lb.negated()]);
                y
            }
        }
    }

    fn encode_atom(&mut self, a: &Atom) -> Lit {
        if a.expr.is_constant() {
            let k = a.expr.constant;
            let truth = match a.op {
                Rel::Le => k <= Rat::ZERO,
                Rel::Lt => k < Rat::ZERO,
                Rel::Eq => k == Rat::ZERO,
            };
            let t = self.true_lit();
            return if truth { t } else { t.negated() };
        }
        match a.op {
            Rel::Eq => {
                // e = 0  <=>  e <= 0  &  -e <= 0
                let le = Atom {
                    expr: a.expr.clone(),
                    op: Rel::Le,
                };
                let ge = Atom {
                    expr: a.expr.scaled(Rat::int(-1)),
                    op: Rel::Le,
                };
                let l1 = Lit::pos(self.atom_sat_var(&le));
                let l2 = Lit::pos(self.atom_sat_var(&ge));
                self.tseitin_and(&[l1, l2])
            }
            _ => Lit::pos(self.atom_sat_var(a)),
        }
    }

    /// `y <-> AND(lits)` via fresh `y`.
    fn tseitin_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit(),
            1 => lits[0],
            _ => {
                let y = Lit::pos(self.sat.new_var());
                for &l in lits {
                    self.sat.add_clause(&[y.negated(), l]);
                }
                let mut big: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
                big.push(y);
                self.sat.add_clause(&big);
                y
            }
        }
    }

    /// Asserts a formula (encode + unit clause).
    pub fn assert_formula(&mut self, f: &Formula) {
        let l = self.encode(f);
        self.sat.add_clause(&[l]);
    }
}

/// Re-export used by the solver driver: a linear expression without its
/// constant (folded into the bound), as (coeff, var-index) pairs.
pub(crate) fn strip_expr(e: &LinExpr) -> (Vec<(Rat, usize)>, Rat) {
    (
        e.coeffs.iter().map(|(v, c)| (*c, v.index())).collect(),
        e.constant,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RealVar;
    use crate::sat::SatVerdict;

    #[test]
    fn and_of_bools_sat() {
        let mut enc = Encoder::new();
        let a = BoolVar(0);
        let b = BoolVar(1);
        enc.assert_formula(&Formula::and([Formula::Bool(a), Formula::Bool(b)]));
        let SatVerdict::Sat(m) = enc.sat.solve() else {
            panic!()
        };
        assert_eq!(enc.bool_value(a, &m), Some(true));
        assert_eq!(enc.bool_value(b, &m), Some(true));
    }

    #[test]
    fn contradiction_unsat() {
        let mut enc = Encoder::new();
        let a = BoolVar(0);
        enc.assert_formula(&Formula::Bool(a));
        enc.assert_formula(&Formula::not(Formula::Bool(a)));
        assert_eq!(enc.sat.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn atoms_deduplicated() {
        let mut enc = Encoder::new();
        let x = RealVar(0);
        let f1 = LinExpr::var(x).le(3);
        let f2 = LinExpr::var(x).le(3);
        enc.assert_formula(&f1);
        enc.assert_formula(&f2);
        assert_eq!(enc.atoms.len(), 1);
    }

    #[test]
    fn eq_atom_splits_into_two_inequalities() {
        let mut enc = Encoder::new();
        let x = RealVar(0);
        enc.assert_formula(&LinExpr::var(x).eq(5));
        assert_eq!(enc.atoms.len(), 2);
    }

    #[test]
    fn constant_atoms_fold() {
        let mut enc = Encoder::new();
        enc.assert_formula(&LinExpr::constant(-1).le(0)); // trivially true
        assert!(matches!(enc.sat.solve(), SatVerdict::Sat(_)));
        enc.assert_formula(&LinExpr::constant(1).le(0)); // trivially false
        assert_eq!(enc.sat.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn exactly_one_enforced() {
        let mut enc = Encoder::new();
        let vars = [BoolVar(0), BoolVar(1), BoolVar(2)];
        enc.assert_formula(&Formula::exactly_one(&vars));
        let SatVerdict::Sat(m) = enc.sat.solve() else {
            panic!()
        };
        let on = vars
            .iter()
            .filter(|&&v| enc.bool_value(v, &m) == Some(true))
            .count();
        assert_eq!(on, 1);
    }

    #[test]
    fn iff_encoding() {
        let mut enc = Encoder::new();
        let a = BoolVar(0);
        let b = BoolVar(1);
        enc.assert_formula(&Formula::iff(Formula::Bool(a), Formula::Bool(b)));
        enc.assert_formula(&Formula::Bool(a));
        let SatVerdict::Sat(m) = enc.sat.solve() else {
            panic!()
        };
        assert_eq!(enc.bool_value(b, &m), Some(true));
    }
}
