//! A general simplex decision procedure for conjunctions of linear-real
//! bounds, after Dutertre & de Moura, *A Fast Linear-Arithmetic Solver for
//! DPLL(T)* (CAV 2006).
//!
//! Strict inequalities are handled with *delta-rationals* `r + d·ε`
//! (symbolic infinitesimal ε); Bland's rule guarantees termination; an
//! infeasibility is explained by the set of asserted bound ids in the
//! violated row, which the DPLL(T) driver turns into a blocking clause.
//!
//! The procedure is packaged two ways: the stateless [`check`] (decide
//! one conjunction from scratch) and the *persistent* [`Simplex`], which
//! the DPLL(T) driver owns across calls. [`Simplex::check_assignment`]
//! re-asserts the bound set of each candidate Boolean assignment but
//! keeps the tableau — columns, slack definitions and, crucially, the
//! pivoted basis — from the previous call, so consecutive checks inside
//! one OMT search warm-start from the last feasible basis instead of
//! re-pivoting from the origin.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::{Add, Mul, Neg, Sub};

use crate::Rat;

/// A rational extended with a symbolic infinitesimal: `r + d·ε`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRat {
    /// Standard part.
    pub r: Rat,
    /// Coefficient of ε.
    pub d: Rat,
}

impl DeltaRat {
    /// Zero.
    pub const ZERO: DeltaRat = DeltaRat {
        r: Rat::ZERO,
        d: Rat::ZERO,
    };

    /// A standard rational (no infinitesimal part).
    pub fn standard(r: Rat) -> DeltaRat {
        DeltaRat { r, d: Rat::ZERO }
    }

    /// `r + ε` (used for strict lower bounds).
    pub fn plus_eps(r: Rat) -> DeltaRat {
        DeltaRat { r, d: Rat::ONE }
    }

    /// `r - ε` (used for strict upper bounds).
    pub fn minus_eps(r: Rat) -> DeltaRat {
        DeltaRat { r, d: -Rat::ONE }
    }

    /// Concretizes with a specific ε value.
    pub fn concretize(self, eps: Rat) -> Rat {
        self.r + self.d * eps
    }
}

impl PartialOrd for DeltaRat {
    fn partial_cmp(&self, other: &DeltaRat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRat {
    fn cmp(&self, other: &DeltaRat) -> Ordering {
        self.r.cmp(&other.r).then(self.d.cmp(&other.d))
    }
}

impl Add for DeltaRat {
    type Output = DeltaRat;
    fn add(self, o: DeltaRat) -> DeltaRat {
        DeltaRat {
            r: self.r + o.r,
            d: self.d + o.d,
        }
    }
}

impl Sub for DeltaRat {
    type Output = DeltaRat;
    fn sub(self, o: DeltaRat) -> DeltaRat {
        DeltaRat {
            r: self.r - o.r,
            d: self.d - o.d,
        }
    }
}

impl Mul<Rat> for DeltaRat {
    type Output = DeltaRat;
    fn mul(self, c: Rat) -> DeltaRat {
        DeltaRat {
            r: self.r * c,
            d: self.d * c,
        }
    }
}

impl Neg for DeltaRat {
    type Output = DeltaRat;
    fn neg(self) -> DeltaRat {
        DeltaRat {
            r: -self.r,
            d: -self.d,
        }
    }
}

/// Which side a bound constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// `expr ≥ bound`.
    Lower,
    /// `expr ≤ bound`.
    Upper,
}

/// One asserted bound on a linear form, tagged with the asserting atom's id
/// (the SAT variable of the theory literal) for conflict explanations.
#[derive(Debug, Clone)]
pub struct BoundConstraint {
    /// The linear form `Σ cᵢ·xᵢ` (no constant; folded into the bound).
    pub expr: Vec<(Rat, usize)>,
    /// The bound value (possibly with an ε part for strict bounds).
    pub bound: DeltaRat,
    /// Which side is constrained.
    pub kind: BoundKind,
    /// Identifier echoed back in conflict explanations.
    pub id: usize,
}

/// A bound with the id of the atom that asserted it, as stored per
/// column (`None` = unconstrained on that side).
pub type AssertedBound = Option<(DeltaRat, usize)>;

/// Result of a feasibility check.
#[derive(Debug, Clone)]
pub enum SimplexResult {
    /// Feasible, with a concrete rational assignment per variable index.
    Feasible(HashMap<usize, Rat>),
    /// Infeasible; the ids of a conflicting subset of bounds.
    Infeasible(Vec<usize>),
}

/// Persistent simplex state: columns for every real variable and slack
/// (one per distinct multi-term linear form) seen so far, the current
/// basis (`rows`), values, and the bounds asserted by the most recent
/// [`Simplex::check_assignment`] call.
///
/// Column indices are allocated on first sight, interleaving variables
/// and slacks; `var_col`/`col_var` keep the two spaces mapped. The basis
/// survives between calls — that persistence *is* the warm start.
#[derive(Debug, Clone, Default)]
pub struct Simplex {
    /// Total columns allocated.
    n_cols: usize,
    /// Real-variable index -> column (`usize::MAX` = not yet allocated).
    var_col: Vec<usize>,
    /// Column -> real-variable index (`None` for slack columns).
    col_var: Vec<Option<usize>>,
    /// Distinct multi-term linear form (sorted by var) -> slack column.
    form_slack: HashMap<Vec<(Rat, usize)>, usize>,
    /// For basic columns: their row as dense-ish map col -> coeff
    /// (only over nonbasic columns).
    rows: HashMap<usize, HashMap<usize, Rat>>,
    value: Vec<DeltaRat>,
    lower: Vec<Option<(DeltaRat, usize)>>,
    upper: Vec<Option<(DeltaRat, usize)>>,
}

impl Simplex {
    /// Creates an empty tableau.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    fn is_basic(&self, v: usize) -> bool {
        self.rows.contains_key(&v)
    }

    fn new_col(&mut self, var: Option<usize>) -> usize {
        let c = self.n_cols;
        self.n_cols += 1;
        self.col_var.push(var);
        self.value.push(DeltaRat::ZERO);
        self.lower.push(None);
        self.upper.push(None);
        c
    }

    fn var_column(&mut self, v: usize) -> usize {
        if v >= self.var_col.len() {
            self.var_col.resize(v + 1, usize::MAX);
        }
        if self.var_col[v] == usize::MAX {
            self.var_col[v] = self.new_col(Some(v));
        }
        self.var_col[v]
    }

    /// Column deciding a bound on `expr`: a single positive-unit term
    /// binds the variable's own column; any other form gets (or reuses)
    /// a slack column whose defining row is expressed over the *current*
    /// nonbasic columns (substituting rows of already-basic variables,
    /// so the new definition composes with prior pivots).
    fn column_for(&mut self, expr: &[(Rat, usize)]) -> usize {
        if expr.len() == 1 && expr[0].0 == Rat::ONE {
            return self.var_column(expr[0].1);
        }
        let mut key: Vec<(Rat, usize)> = expr.to_vec();
        key.sort_by_key(|&(_, v)| v);
        if let Some(&c) = self.form_slack.get(&key) {
            return c;
        }
        let mut row: HashMap<usize, Rat> = HashMap::new();
        // Iterate a copy: `var_column` needs `&mut self` inside the body.
        for (c, v) in key.clone() {
            let col = self.var_column(v);
            if let Some(brow) = self.rows.get(&col) {
                let brow = brow.clone();
                for (&k, &a) in &brow {
                    let entry = row.entry(k).or_insert(Rat::ZERO);
                    *entry = *entry + c * a;
                    if entry.is_zero() {
                        row.remove(&k);
                    }
                }
            } else {
                let entry = row.entry(col).or_insert(Rat::ZERO);
                *entry = *entry + c;
                if entry.is_zero() {
                    row.remove(&col);
                }
            }
        }
        let s = self.new_col(None);
        self.form_slack.insert(key, s);
        self.value[s] = self.row_value(&row);
        self.rows.insert(s, row);
        s
    }

    /// Recomputes a basic variable's value from its row.
    fn row_value(&self, row: &HashMap<usize, Rat>) -> DeltaRat {
        let mut v = DeltaRat::ZERO;
        for (&c, &a) in row {
            v = v + self.value[c] * a;
        }
        v
    }

    /// Pivot basic `bi` with nonbasic `nj`, then set `bi`'s value to
    /// `target` by adjusting `nj`.
    fn pivot_and_update(&mut self, bi: usize, nj: usize, target: DeltaRat) {
        let row = self.rows.remove(&bi).expect("bi is basic");
        let a_ij = row[&nj];
        let theta = (target - self.value[bi]) * a_ij.recip();
        self.value[nj] = self.value[nj] + theta;
        self.value[bi] = target;

        // Express nj in terms of bi and the rest of the row:
        // bi = Σ a_k x_k  =>  nj = bi/a_ij - Σ_{k≠j} (a_k/a_ij) x_k
        let mut new_row: HashMap<usize, Rat> = HashMap::new();
        new_row.insert(bi, a_ij.recip());
        for (&k, &a) in &row {
            if k != nj {
                let c = -(a / a_ij);
                if !c.is_zero() {
                    new_row.insert(k, c);
                }
            }
        }

        // Substitute into every other row containing nj, and refresh values.
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for b in basics {
            let a_bj = match self.rows[&b].get(&nj) {
                Some(&c) => c,
                None => continue,
            };
            let r = self.rows.get_mut(&b).expect("exists");
            r.remove(&nj);
            for (&k, &c) in &new_row {
                let entry = r.entry(k).or_insert(Rat::ZERO);
                *entry = *entry + a_bj * c;
                if entry.is_zero() {
                    r.remove(&k);
                }
            }
            self.value[b] = self.value[b] + DeltaRat::standard(Rat::ZERO); // no-op; recomputed below
        }
        // Update basic values directly: x_b changes by a_bj * theta.
        // (Done via full recomputation for robustness.)
        self.rows.insert(nj, new_row);
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for b in basics {
            let row = self.rows[&b].clone();
            self.value[b] = self.row_value(&row);
        }
    }
}

/// Decides the conjunction of the given bounds.
///
/// Bounds over the *same* linear form share a slack variable; directly
/// conflicting bounds (`lower > upper`) are reported without pivoting.
///
/// ```
/// use shatter_smt::simplex::{check, BoundConstraint, BoundKind, DeltaRat};
/// use shatter_smt::Rat;
///
/// // x >= 3  and  x <= 2  is infeasible.
/// let bounds = vec![
///     BoundConstraint {
///         expr: vec![(Rat::ONE, 0)],
///         bound: DeltaRat::standard(Rat::int(3)),
///         kind: BoundKind::Lower,
///         id: 0,
///     },
///     BoundConstraint {
///         expr: vec![(Rat::ONE, 0)],
///         bound: DeltaRat::standard(Rat::int(2)),
///         kind: BoundKind::Upper,
///         id: 1,
///     },
/// ];
/// match check(&bounds) {
///     shatter_smt::simplex::SimplexResult::Infeasible(ids) => {
///         assert_eq!(ids, vec![0, 1]);
///     }
///     _ => panic!("expected infeasible"),
/// }
/// ```
pub fn check(bounds: &[BoundConstraint]) -> SimplexResult {
    Simplex::new().check_assignment(bounds)
}

impl Simplex {
    /// Decides the conjunction of `bounds`, warm-starting from whatever
    /// basis previous calls left behind. Bounds are re-asserted from
    /// scratch each call (they follow the Boolean assignment under
    /// test); columns, slack definitions and pivots persist.
    ///
    /// Nonbasic values already inside their new bounds keep their
    /// position; out-of-range ones are clamped to the violated side.
    /// With an unchanged or mildly-shifted bound set — consecutive
    /// probes of one OMT binary search — the subsequent Bland loop then
    /// starts at (or next to) the previous feasible point.
    pub fn check_assignment(&mut self, bounds: &[BoundConstraint]) -> SimplexResult {
        match self.assert_and_solve(bounds) {
            Some(ids) => SimplexResult::Infeasible(ids),
            // Feasible: concretize ε and return original-variable values.
            None => SimplexResult::Feasible(self.concretize()),
        }
    }

    /// The tightest lower/upper bounds (with the asserting ids) currently
    /// asserted on a column. Valid after [`Simplex::assert_and_solve`] /
    /// [`Simplex::check_assignment`]; the DPLL(T) driver reads these to
    /// propagate theory-implied bound literals — any feasible point keeps
    /// the column's form within the returned interval. Resolve the column
    /// once via [`Simplex::column_index`] and cache it.
    pub(crate) fn asserted_bounds_at(&self, col: usize) -> (AssertedBound, AssertedBound) {
        (self.lower[col], self.upper[col])
    }

    /// Resolves (allocating on first sight) the column of `expr`;
    /// crate-visible so the DPLL(T) hook can cache the mapping.
    pub(crate) fn column_index(&mut self, expr: &[(Rat, usize)]) -> usize {
        self.column_for(expr)
    }

    /// [`Simplex::check_assignment`] without the model extraction: the
    /// feasibility verdict alone (`None` = feasible), which is all the
    /// partial-assignment theory checkpoints need. The feasible basis is
    /// left in place for a later extraction or warm restart.
    pub fn assert_and_solve(&mut self, bounds: &[BoundConstraint]) -> Option<Vec<usize>> {
        // Retract every bound from the previous call.
        for b in &mut self.lower {
            *b = None;
        }
        for b in &mut self.upper {
            *b = None;
        }

        // Assert bounds, detecting immediate lower>upper conflicts.
        for b in bounds {
            let col = self.column_for(&b.expr);
            match b.kind {
                BoundKind::Lower => {
                    if let Some((u, uid)) = self.upper[col] {
                        if b.bound > u {
                            return Some(vec![b.id, uid]);
                        }
                    }
                    if self.lower[col].is_none_or(|(l, _)| b.bound > l) {
                        self.lower[col] = Some((b.bound, b.id));
                    }
                }
                BoundKind::Upper => {
                    if let Some((l, lid)) = self.lower[col] {
                        if b.bound < l {
                            return Some(vec![lid, b.id]);
                        }
                    }
                    if self.upper[col].is_none_or(|(u, _)| b.bound < u) {
                        self.upper[col] = Some((b.bound, b.id));
                    }
                }
            }
        }

        // Move nonbasic values inside their bounds, keeping in-range
        // values where they are (the warm start).
        for v in 0..self.n_cols {
            if self.is_basic(v) {
                continue;
            }
            if let Some((l, _)) = self.lower[v] {
                if self.value[v] < l {
                    self.value[v] = l;
                    continue;
                }
            }
            if let Some((u, _)) = self.upper[v] {
                if self.value[v] > u {
                    self.value[v] = u;
                }
            }
        }
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for b in basics {
            let row = self.rows.remove(&b).expect("exists");
            self.value[b] = self.row_value(&row);
            self.rows.insert(b, row);
        }

        // Main Bland-rule loop.
        loop {
            // Smallest-index basic variable violating a bound.
            let mut violated: Option<(usize, bool)> = None; // (var, too_low)
            let mut basic_sorted: Vec<usize> = self.rows.keys().copied().collect();
            basic_sorted.sort_unstable();
            for &b in &basic_sorted {
                if let Some((l, _)) = self.lower[b] {
                    if self.value[b] < l {
                        violated = Some((b, true));
                        break;
                    }
                }
                if let Some((u, _)) = self.upper[b] {
                    if self.value[b] > u {
                        violated = Some((b, false));
                        break;
                    }
                }
            }
            let Some((bi, too_low)) = violated else {
                // Feasible; the basis stays for extraction or warm restart.
                return None;
            };

            let row = self.rows[&bi].clone();
            let mut cols: Vec<usize> = row.keys().copied().collect();
            cols.sort_unstable();
            let mut pivot_col: Option<usize> = None;
            for &j in &cols {
                let a = row[&j];
                let can = if too_low {
                    // Need to increase bi.
                    (a.is_positive() && self.upper[j].is_none_or(|(u, _)| self.value[j] < u))
                        || (a.is_negative() && self.lower[j].is_none_or(|(l, _)| self.value[j] > l))
                } else {
                    // Need to decrease bi.
                    (a.is_positive() && self.lower[j].is_none_or(|(l, _)| self.value[j] > l))
                        || (a.is_negative() && self.upper[j].is_none_or(|(u, _)| self.value[j] < u))
                };
                if can {
                    pivot_col = Some(j);
                    break;
                }
            }

            match pivot_col {
                Some(nj) => {
                    let target = if too_low {
                        self.lower[bi].expect("violated lower").0
                    } else {
                        self.upper[bi].expect("violated upper").0
                    };
                    self.pivot_and_update(bi, nj, target);
                }
                None => {
                    // Conflict: violated bound of bi plus the limiting bounds of
                    // every nonbasic in the row.
                    let mut ids = Vec::new();
                    if too_low {
                        ids.push(self.lower[bi].expect("violated lower").1);
                        for &j in &cols {
                            let a = row[&j];
                            if a.is_positive() {
                                ids.push(self.upper[j].expect("limited above").1);
                            } else {
                                ids.push(self.lower[j].expect("limited below").1);
                            }
                        }
                    } else {
                        ids.push(self.upper[bi].expect("violated upper").1);
                        for &j in &cols {
                            let a = row[&j];
                            if a.is_positive() {
                                ids.push(self.lower[j].expect("limited below").1);
                            } else {
                                ids.push(self.upper[j].expect("limited above").1);
                            }
                        }
                    }
                    ids.sort_unstable();
                    ids.dedup();
                    return Some(ids);
                }
            }
        }
    }

    /// Chooses a concrete ε small enough that all strict bounds stay
    /// strict, then maps the delta-valued assignment of the *variable*
    /// columns (slacks skipped) to plain rationals.
    fn concretize(&self) -> HashMap<usize, Rat> {
        let mut eps = Rat::ONE;
        for v in 0..self.n_cols {
            let val = self.value[v];
            if let Some((l, _)) = self.lower[v] {
                // need val.r + val.d e >= l.r + l.d e
                //   =>  (val.d - l.d) e >= l.r - val.r
                let dd = val.d - l.d;
                let rr = val.r - l.r;
                if dd.is_negative() && rr.is_positive() {
                    eps = eps.min(rr / (-dd));
                }
            }
            if let Some((u, _)) = self.upper[v] {
                let dd = u.d - val.d;
                let rr = u.r - val.r;
                if dd.is_negative() && rr.is_positive() {
                    eps = eps.min(rr / (-dd));
                }
            }
        }
        let eps = eps * Rat::new(1, 2);
        (0..self.n_cols)
            .filter_map(|c| self.col_var[c].map(|v| (v, self.value[c].concretize(eps))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(expr: Vec<(i128, usize)>, b: i128, id: usize) -> BoundConstraint {
        BoundConstraint {
            expr: expr.into_iter().map(|(c, v)| (Rat::int(c), v)).collect(),
            bound: DeltaRat::standard(Rat::int(b)),
            kind: BoundKind::Lower,
            id,
        }
    }

    fn upper(expr: Vec<(i128, usize)>, b: i128, id: usize) -> BoundConstraint {
        BoundConstraint {
            expr: expr.into_iter().map(|(c, v)| (Rat::int(c), v)).collect(),
            bound: DeltaRat::standard(Rat::int(b)),
            kind: BoundKind::Upper,
            id,
        }
    }

    fn assert_feasible(bounds: &[BoundConstraint]) -> HashMap<usize, Rat> {
        match check(bounds) {
            SimplexResult::Feasible(m) => {
                // Verify every bound holds on the concrete assignment.
                for b in bounds {
                    let val: Rat = b
                        .expr
                        .iter()
                        .map(|&(c, v)| c * m.get(&v).copied().unwrap_or(Rat::ZERO))
                        .fold(Rat::ZERO, |a, x| a + x);
                    match b.kind {
                        BoundKind::Lower => {
                            if b.bound.d.is_zero() {
                                assert!(val >= b.bound.r, "bound {} violated", b.id);
                            } else {
                                assert!(val > b.bound.r, "strict bound {} violated", b.id);
                            }
                        }
                        BoundKind::Upper => {
                            if b.bound.d.is_zero() {
                                assert!(val <= b.bound.r, "bound {} violated", b.id);
                            } else {
                                assert!(val < b.bound.r, "strict bound {} violated", b.id);
                            }
                        }
                    }
                }
                m
            }
            SimplexResult::Infeasible(ids) => panic!("unexpected infeasible: {ids:?}"),
        }
    }

    #[test]
    fn simple_feasible_box() {
        assert_feasible(&[
            lower(vec![(1, 0)], 1, 0),
            upper(vec![(1, 0)], 5, 1),
            lower(vec![(1, 1)], 2, 2),
            upper(vec![(1, 1)], 3, 3),
        ]);
    }

    #[test]
    fn direct_bound_conflict() {
        let r = check(&[lower(vec![(1, 0)], 3, 7), upper(vec![(1, 0)], 2, 9)]);
        let SimplexResult::Infeasible(ids) = r else {
            panic!()
        };
        assert_eq!(ids, vec![7, 9]);
    }

    #[test]
    fn sum_constraint_feasible() {
        // x + y <= 4, x >= 1, y >= 2.
        let m = assert_feasible(&[
            upper(vec![(1, 0), (1, 1)], 4, 0),
            lower(vec![(1, 0)], 1, 1),
            lower(vec![(1, 1)], 2, 2),
        ]);
        assert!(m[&0] + m[&1] <= Rat::int(4));
    }

    #[test]
    fn sum_constraint_infeasible_with_explanation() {
        // x + y <= 3, x >= 2, y >= 2.
        let r = check(&[
            upper(vec![(1, 0), (1, 1)], 3, 0),
            lower(vec![(1, 0)], 2, 1),
            lower(vec![(1, 1)], 2, 2),
        ]);
        let SimplexResult::Infeasible(ids) = r else {
            panic!()
        };
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn strict_bounds_respected() {
        // x > 0, x < 1 is feasible with a concrete witness strictly inside.
        let m = assert_feasible(&[
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::plus_eps(Rat::ZERO),
                kind: BoundKind::Lower,
                id: 0,
            },
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::minus_eps(Rat::ONE),
                kind: BoundKind::Upper,
                id: 1,
            },
        ]);
        assert!(m[&0] > Rat::ZERO && m[&0] < Rat::ONE);
    }

    #[test]
    fn strict_vs_nonstrict_conflict() {
        // x <= 2 and x > 2.
        let r = check(&[
            upper(vec![(1, 0)], 2, 0),
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::plus_eps(Rat::int(2)),
                kind: BoundKind::Lower,
                id: 1,
            },
        ]);
        assert!(matches!(r, SimplexResult::Infeasible(_)));
    }

    #[test]
    fn chained_equalities() {
        // x = y, y = z, z >= 5, x <= 5  => all equal 5.
        let m = assert_feasible(&[
            upper(vec![(1, 0), (-1, 1)], 0, 0),
            lower(vec![(1, 0), (-1, 1)], 0, 1),
            upper(vec![(1, 1), (-1, 2)], 0, 2),
            lower(vec![(1, 1), (-1, 2)], 0, 3),
            lower(vec![(1, 2)], 5, 4),
            upper(vec![(1, 0)], 5, 5),
        ]);
        assert_eq!(m[&0], Rat::int(5));
        assert_eq!(m[&1], Rat::int(5));
        assert_eq!(m[&2], Rat::int(5));
    }

    #[test]
    fn triangle_infeasibility() {
        // x - y <= -1, y - z <= -1, z - x <= -1 sums to 0 <= -3.
        let r = check(&[
            upper(vec![(1, 0), (-1, 1)], -1, 0),
            upper(vec![(1, 1), (-1, 2)], -1, 1),
            upper(vec![(1, 2), (-1, 0)], -1, 2),
        ]);
        let SimplexResult::Infeasible(ids) = r else {
            panic!()
        };
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn redundant_bounds_keep_tightest() {
        let m = assert_feasible(&[
            lower(vec![(1, 0)], 1, 0),
            lower(vec![(1, 0)], 3, 1),
            upper(vec![(1, 0)], 10, 2),
            upper(vec![(1, 0)], 7, 3),
        ]);
        assert!(m[&0] >= Rat::int(3) && m[&0] <= Rat::int(7));
    }

    #[test]
    fn fractional_coefficients() {
        // 0.5x + 0.25y >= 10, x <= 4  =>  y >= 32.
        let m = assert_feasible(&[
            BoundConstraint {
                expr: vec![(Rat::new(1, 2), 0), (Rat::new(1, 4), 1)],
                bound: DeltaRat::standard(Rat::int(10)),
                kind: BoundKind::Lower,
                id: 0,
            },
            upper(vec![(1, 0)], 4, 1),
        ]);
        assert!(m[&0] * Rat::new(1, 2) + m[&1] * Rat::new(1, 4) >= Rat::int(10));
    }
}
