//! A general simplex decision procedure for conjunctions of linear-real
//! bounds, after Dutertre & de Moura, *A Fast Linear-Arithmetic Solver for
//! DPLL(T)* (CAV 2006).
//!
//! Strict inequalities are handled with *delta-rationals* `r + d·ε`
//! (symbolic infinitesimal ε); Bland's rule guarantees termination; an
//! infeasibility is explained by the set of asserted bound ids in the
//! violated row, which the DPLL(T) driver turns into a blocking clause.
//!
//! The procedure is packaged two ways: the stateless [`check`] (decide
//! one conjunction from scratch) and the *persistent* [`Simplex`], which
//! the DPLL(T) driver owns across calls. [`Simplex::check_assignment`]
//! re-asserts the bound set of each candidate Boolean assignment but
//! keeps the tableau — columns, slack definitions and, crucially, the
//! pivoted basis — from the previous call, so consecutive checks inside
//! one OMT search warm-start from the last feasible basis instead of
//! re-pivoting from the origin.
//!
//! # Two-phase numerics
//!
//! All tableau state lives in exact `i128` rationals — the ground truth
//! that certifies every verdict and extracted model. On top of them the
//! solver maintains `f64` *mirrors* of each column value and asserted
//! bound (standard parts only), refreshed from the exact values whenever
//! those change. Mirrors are never produced by chained float arithmetic,
//! so each carries a relative error below `2⁻⁵¹`. Every hot comparison
//! (bound-conflict detection, nonbasic clamping, violation scan, pivot
//! eligibility) first compares the mirrors with the magnitude-scaled
//! margin `(|a| + |b| + 1)·10⁻¹²`: outside the margin the float sign
//! provably equals the exact sign (the margin dwarfs the combined mirror
//! error), so the decision is certified without touching the rationals;
//! inside the margin — including every exact tie, where the ε parts
//! decide — the comparison falls back to the exact path and is counted
//! in [`SimplexStats::exact_fallbacks`]. Verdicts, conflict
//! explanations, pivot sequences and models are therefore bit-for-bit
//! identical to [`NumericMode::ExactOnly`], which skips the float layer
//! entirely.
//!
//! Tableau rows are sorted sparse vectors recycled through an internal
//! arena: pivoting merges rows into buffers drawn from a free list
//! instead of allocating, so warm-started windows stop hitting the
//! allocator. Row arithmetic goes through the checked `Rat` ops; an
//! `i128` overflow surfaces as [`SimplexHalt::Overflow`] from the
//! `try_*` entry points (the tableau is then poisoned until the owner
//! restores a consistent clone or starts fresh) instead of panicking
//! mid-scenario, and a deterministic pivot budget
//! ([`Simplex::set_pivot_limit`]) surfaces as [`SimplexHalt::Budget`]
//! between pivots, leaving the tableau valid.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::{Add, Mul, Neg, Sub};

use crate::rational::RatOverflow;
use crate::Rat;

/// Why a `try_*` simplex call stopped without a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplexHalt {
    /// `i128` rational arithmetic overflowed mid-pivot; the tableau is
    /// poisoned until the owner restores a consistent clone.
    Overflow,
    /// The deterministic pivot budget ran out *between* pivots. The
    /// tableau stays consistent (not poisoned): re-solving after raising
    /// or clearing the limit continues from the current basis.
    Budget,
}

impl From<RatOverflow> for SimplexHalt {
    fn from(_: RatOverflow) -> SimplexHalt {
        SimplexHalt::Overflow
    }
}

/// The panic the legacy (non-`try_`) entry points raise on a halt; the
/// overflow message is a long-standing contract other layers match on.
fn halt_panic(halt: SimplexHalt) -> ! {
    match halt {
        SimplexHalt::Overflow => panic!("rational arithmetic overflow"),
        SimplexHalt::Budget => panic!("simplex pivot budget exhausted"),
    }
}

/// A rational extended with a symbolic infinitesimal: `r + d·ε`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRat {
    /// Standard part.
    pub r: Rat,
    /// Coefficient of ε.
    pub d: Rat,
}

impl DeltaRat {
    /// Zero.
    pub const ZERO: DeltaRat = DeltaRat {
        r: Rat::ZERO,
        d: Rat::ZERO,
    };

    /// A standard rational (no infinitesimal part).
    pub fn standard(r: Rat) -> DeltaRat {
        DeltaRat { r, d: Rat::ZERO }
    }

    /// `r + ε` (used for strict lower bounds).
    pub fn plus_eps(r: Rat) -> DeltaRat {
        DeltaRat { r, d: Rat::ONE }
    }

    /// `r - ε` (used for strict upper bounds).
    pub fn minus_eps(r: Rat) -> DeltaRat {
        DeltaRat { r, d: -Rat::ONE }
    }

    /// Concretizes with a specific ε value.
    pub fn concretize(self, eps: Rat) -> Rat {
        self.r + self.d * eps
    }

    fn try_add_dr(self, o: DeltaRat) -> Result<DeltaRat, RatOverflow> {
        Ok(DeltaRat {
            r: self.r.try_add(o.r)?,
            d: self.d.try_add(o.d)?,
        })
    }

    fn try_sub_dr(self, o: DeltaRat) -> Result<DeltaRat, RatOverflow> {
        Ok(DeltaRat {
            r: self.r.try_sub(o.r)?,
            d: self.d.try_sub(o.d)?,
        })
    }

    fn try_mul_rat(self, c: Rat) -> Result<DeltaRat, RatOverflow> {
        Ok(DeltaRat {
            r: self.r.try_mul(c)?,
            d: self.d.try_mul(c)?,
        })
    }
}

impl PartialOrd for DeltaRat {
    fn partial_cmp(&self, other: &DeltaRat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRat {
    fn cmp(&self, other: &DeltaRat) -> Ordering {
        self.r.cmp(&other.r).then(self.d.cmp(&other.d))
    }
}

impl Add for DeltaRat {
    type Output = DeltaRat;
    fn add(self, o: DeltaRat) -> DeltaRat {
        DeltaRat {
            r: self.r + o.r,
            d: self.d + o.d,
        }
    }
}

impl Sub for DeltaRat {
    type Output = DeltaRat;
    fn sub(self, o: DeltaRat) -> DeltaRat {
        DeltaRat {
            r: self.r - o.r,
            d: self.d - o.d,
        }
    }
}

impl Mul<Rat> for DeltaRat {
    type Output = DeltaRat;
    fn mul(self, c: Rat) -> DeltaRat {
        DeltaRat {
            r: self.r * c,
            d: self.d * c,
        }
    }
}

impl Neg for DeltaRat {
    type Output = DeltaRat;
    fn neg(self) -> DeltaRat {
        DeltaRat {
            r: -self.r,
            d: -self.d,
        }
    }
}

/// Which side a bound constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// `expr ≥ bound`.
    Lower,
    /// `expr ≤ bound`.
    Upper,
}

/// One asserted bound on a linear form, tagged with the asserting atom's id
/// (the SAT variable of the theory literal) for conflict explanations.
#[derive(Debug, Clone)]
pub struct BoundConstraint {
    /// The linear form `Σ cᵢ·xᵢ` (no constant; folded into the bound).
    pub expr: Vec<(Rat, usize)>,
    /// The bound value (possibly with an ε part for strict bounds).
    pub bound: DeltaRat,
    /// Which side is constrained.
    pub kind: BoundKind,
    /// Identifier echoed back in conflict explanations.
    pub id: usize,
}

/// A bound with the id of the atom that asserted it, as stored per
/// column (`None` = unconstrained on that side).
pub type AssertedBound = Option<(DeltaRat, usize)>;

/// Result of a feasibility check.
#[derive(Debug, Clone)]
pub enum SimplexResult {
    /// Feasible, with a concrete rational assignment per variable index.
    Feasible(HashMap<usize, Rat>),
    /// Infeasible; the ids of a conflicting subset of bounds.
    Infeasible(Vec<usize>),
}

/// Numeric strategy for the simplex comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericMode {
    /// Compare `f64` mirrors first; fall back to exact rationals whenever
    /// a comparison lands inside the certified error margin. The default.
    #[default]
    FloatFirst,
    /// Skip the float layer: every comparison runs on exact rationals.
    /// The reference path; verdicts are identical by construction.
    ExactOnly,
}

/// Counters describing how the two-phase numeric pipeline behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexStats {
    /// Total pivots performed (identical across numeric modes).
    pub pivots: u64,
    /// Pivots performed while the float fast path was active.
    pub float_pivots: u64,
    /// Comparisons that landed inside the float error margin and were
    /// re-certified on exact rationals.
    pub exact_fallbacks: u64,
}

impl SimplexStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(self, before: SimplexStats) -> SimplexStats {
        SimplexStats {
            pivots: self.pivots.saturating_sub(before.pivots),
            float_pivots: self.float_pivots.saturating_sub(before.float_pivots),
            exact_fallbacks: self.exact_fallbacks.saturating_sub(before.exact_fallbacks),
        }
    }
}

/// A tableau row: nonzero coefficients over nonbasic columns, sorted by
/// column index.
type SparseRow = Vec<(usize, Rat)>;

/// Free-list arena recycling row buffers across pivots: a pivot releases
/// the rows it rewrites and draws replacements from here, so steady-state
/// pivoting performs no heap allocation.
#[derive(Debug, Default)]
struct RowArena {
    free: Vec<SparseRow>,
}

impl RowArena {
    fn alloc(&mut self) -> SparseRow {
        self.free.pop().unwrap_or_default()
    }

    fn release(&mut self, mut row: SparseRow) {
        row.clear();
        self.free.push(row);
    }
}

// Cloning a tableau (DPLL(T) push frames) does not drag spare buffers
// along: the clone starts with an empty free list.
impl Clone for RowArena {
    fn clone(&self) -> RowArena {
        RowArena::default()
    }
}

/// Float-first comparison of two exact values through their mirrors.
/// `Some(ordering)` is returned only when the mirrors are separated by
/// more than the worst-case combined mirror error (each mirror is one
/// `i128 → f64` conversion pair plus one division, relative error below
/// `2⁻⁵¹` ≈ `4.4·10⁻¹⁶`, which the `10⁻¹²` margin dwarfs), so the float
/// ordering provably equals the exact one; `None` means "too close —
/// certify exactly".
fn float_cmp(fa: f64, fb: f64) -> Option<Ordering> {
    let margin = (fa.abs() + fb.abs() + 1.0) * 1e-12;
    let d = fa - fb;
    if d > margin {
        Some(Ordering::Greater)
    } else if d < -margin {
        Some(Ordering::Less)
    } else {
        None
    }
}

/// `dst = a + scale·b`, where `a` skips its entry at column `skip`
/// (`usize::MAX` to keep all). Both inputs are sorted sparse rows; the
/// output is sorted and zero-free. Linear-time merge, no allocation
/// beyond `dst`'s (recycled) capacity.
fn merge_axpy(
    dst: &mut SparseRow,
    a: &[(usize, Rat)],
    skip: usize,
    scale: Rat,
    b: &[(usize, Rat)],
) -> Result<(), RatOverflow> {
    dst.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if i < a.len() && a[i].0 == skip {
            i += 1;
            continue;
        }
        let ka = a.get(i).map_or(usize::MAX, |&(k, _)| k);
        let kb = b.get(j).map_or(usize::MAX, |&(k, _)| k);
        match ka.cmp(&kb) {
            Ordering::Less => {
                dst.push(a[i]);
                i += 1;
            }
            Ordering::Greater => {
                let c = scale.try_mul(b[j].1)?;
                if !c.is_zero() {
                    dst.push((kb, c));
                }
                j += 1;
            }
            Ordering::Equal => {
                let c = a[i].1.try_add(scale.try_mul(b[j].1)?)?;
                if !c.is_zero() {
                    dst.push((ka, c));
                }
                i += 1;
                j += 1;
            }
        }
    }
    Ok(())
}

/// Persistent simplex state: columns for every real variable and slack
/// (one per distinct multi-term linear form) seen so far, the current
/// basis (`rows`), values, and the bounds asserted by the most recent
/// [`Simplex::check_assignment`] call.
///
/// Column indices are allocated on first sight, interleaving variables
/// and slacks; `var_col`/`col_var` keep the two spaces mapped. The basis
/// survives between calls — that persistence *is* the warm start.
#[derive(Debug, Clone, Default)]
pub struct Simplex {
    /// Total columns allocated.
    n_cols: usize,
    /// Real-variable index -> column (`usize::MAX` = not yet allocated).
    var_col: Vec<usize>,
    /// Column -> real-variable index (`None` for slack columns).
    col_var: Vec<Option<usize>>,
    /// Distinct multi-term linear form (sorted by var) -> slack column.
    form_slack: HashMap<Vec<(Rat, usize)>, usize>,
    /// Basic columns' defining rows over nonbasic columns (`None` =
    /// nonbasic), indexed by column — index order *is* Bland order.
    rows: Vec<Option<SparseRow>>,
    value: Vec<DeltaRat>,
    lower: Vec<AssertedBound>,
    upper: Vec<AssertedBound>,
    /// `f64` mirrors of `value[·].r`, refreshed on every exact write.
    fvalue: Vec<f64>,
    /// Mirrors of the asserted bound standard parts; meaningful only
    /// while the matching `lower`/`upper` entry is `Some`.
    flower: Vec<f64>,
    fupper: Vec<f64>,
    arena: RowArena,
    mode: NumericMode,
    stats: SimplexStats,
    /// Set when an overflow aborted mid-pivot: the tableau invariants no
    /// longer hold, so every `try_*` call refuses until the owner
    /// restores a consistent clone or starts fresh.
    poisoned: bool,
    /// Absolute cap on `stats.pivots` (`None` = unlimited): the Bland
    /// loop halts with [`SimplexHalt::Budget`] before the pivot that
    /// would exceed it. Deterministic — pivots, never wall time.
    pivot_limit: Option<u64>,
}

impl Simplex {
    /// Creates an empty tableau.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    /// Selects the numeric strategy for subsequent calls. Verdicts,
    /// models and pivot sequences do not depend on the mode; only the
    /// counters and the wall clock do. Safe to flip between calls on a
    /// live tableau.
    pub fn set_numeric_mode(&mut self, mode: NumericMode) {
        self.mode = mode;
    }

    /// The active numeric strategy.
    pub fn numeric_mode(&self) -> NumericMode {
        self.mode
    }

    /// Cumulative two-phase pipeline counters.
    pub fn stats(&self) -> SimplexStats {
        self.stats
    }

    /// Overwrites the counters — the DPLL(T) driver uses this to carry
    /// them across push/pop frame restores.
    pub(crate) fn set_stats(&mut self, stats: SimplexStats) {
        self.stats = stats;
    }

    /// Caps cumulative pivots at `limit` (absolute, against
    /// [`Simplex::stats`]; `None` lifts the cap). Exhaustion halts the
    /// solve with [`SimplexHalt::Budget`] between pivots — the tableau
    /// stays valid. Like the numeric mode, the cap is a knob, not state:
    /// the DPLL(T) driver carries it across push/pop restores.
    pub fn set_pivot_limit(&mut self, limit: Option<u64>) {
        self.pivot_limit = limit;
    }

    /// The active absolute pivot cap.
    pub fn pivot_limit(&self) -> Option<u64> {
        self.pivot_limit
    }

    fn is_basic(&self, v: usize) -> bool {
        self.rows[v].is_some()
    }

    fn set_value(&mut self, c: usize, v: DeltaRat) {
        self.value[c] = v;
        self.fvalue[c] = v.r.to_f64();
    }

    /// The certified comparison: float mirrors first (in
    /// [`NumericMode::FloatFirst`]), exact rationals inside the margin.
    fn cmp_dr(&mut self, a: DeltaRat, fa: f64, b: DeltaRat, fb: f64) -> Ordering {
        if self.mode == NumericMode::FloatFirst {
            if let Some(o) = float_cmp(fa, fb) {
                return o;
            }
            self.stats.exact_fallbacks += 1;
        }
        a.cmp(&b)
    }

    /// Whether nonbasic `j` can still move up (strictly below its upper
    /// bound, or unbounded above).
    fn below_upper(&mut self, j: usize) -> bool {
        match self.upper[j] {
            None => true,
            Some((u, _)) => {
                self.cmp_dr(self.value[j], self.fvalue[j], u, self.fupper[j]) == Ordering::Less
            }
        }
    }

    /// Whether nonbasic `j` can still move down (strictly above its
    /// lower bound, or unbounded below).
    fn above_lower(&mut self, j: usize) -> bool {
        match self.lower[j] {
            None => true,
            Some((l, _)) => {
                self.cmp_dr(self.value[j], self.fvalue[j], l, self.flower[j]) == Ordering::Greater
            }
        }
    }

    fn new_col(&mut self, var: Option<usize>) -> usize {
        let c = self.n_cols;
        self.n_cols += 1;
        self.col_var.push(var);
        self.rows.push(None);
        self.value.push(DeltaRat::ZERO);
        self.fvalue.push(0.0);
        self.lower.push(None);
        self.upper.push(None);
        self.flower.push(0.0);
        self.fupper.push(0.0);
        c
    }

    fn var_column(&mut self, v: usize) -> usize {
        if v >= self.var_col.len() {
            self.var_col.resize(v + 1, usize::MAX);
        }
        if self.var_col[v] == usize::MAX {
            self.var_col[v] = self.new_col(Some(v));
        }
        self.var_col[v]
    }

    /// Column deciding a bound on `expr`: a single positive-unit term
    /// binds the variable's own column; any other form gets (or reuses)
    /// a slack column whose defining row is expressed over the *current*
    /// nonbasic columns (substituting rows of already-basic variables,
    /// so the new definition composes with prior pivots).
    fn try_column_for(&mut self, expr: &[(Rat, usize)]) -> Result<usize, RatOverflow> {
        if expr.len() == 1 && expr[0].0 == Rat::ONE {
            return Ok(self.var_column(expr[0].1));
        }
        let mut key: Vec<(Rat, usize)> = expr.to_vec();
        key.sort_by_key(|&(_, v)| v);
        if let Some(&c) = self.form_slack.get(&key) {
            return Ok(c);
        }
        // Resolve (allocating) every variable column up front, then
        // accumulate Σ c·(column or its defining row) by sorted merges,
        // ping-ponging between two recycled buffers.
        let mut terms: Vec<(Rat, usize)> = Vec::with_capacity(key.len());
        for &(c, v) in &key {
            let col = self.var_column(v);
            terms.push((c, col));
        }
        let mut acc = self.arena.alloc();
        let mut next = self.arena.alloc();
        for (c, col) in terms {
            let unit = [(col, Rat::ONE)];
            let term: &[(usize, Rat)] = match self.rows[col].as_deref() {
                Some(r) => r,
                None => &unit,
            };
            merge_axpy(&mut next, &acc, usize::MAX, c, term)?;
            std::mem::swap(&mut acc, &mut next);
        }
        self.arena.release(next);
        let v = self.try_row_value(&acc)?;
        let s = self.new_col(None);
        self.form_slack.insert(key, s);
        self.set_value(s, v);
        self.rows[s] = Some(acc);
        Ok(s)
    }

    /// Recomputes a basic variable's value from its row.
    fn try_row_value(&self, row: &[(usize, Rat)]) -> Result<DeltaRat, RatOverflow> {
        let mut v = DeltaRat::ZERO;
        for &(c, a) in row {
            v = v.try_add_dr(self.value[c].try_mul_rat(a)?)?;
        }
        Ok(v)
    }

    /// Pivot basic `bi` (whose row the caller already detached) with
    /// nonbasic `nj`, then set `bi`'s value to `target` by adjusting
    /// `nj`. Affected basic values move incrementally (`Δx_b = a_bj·θ`)
    /// instead of being recomputed from scratch.
    fn try_pivot_with_row(
        &mut self,
        bi: usize,
        nj: usize,
        row: SparseRow,
        target: DeltaRat,
    ) -> Result<(), RatOverflow> {
        let idx = row
            .binary_search_by_key(&nj, |&(k, _)| k)
            .expect("nj in row");
        let a_ij = row[idx].1;
        let inv = a_ij.recip();
        let theta = target.try_sub_dr(self.value[bi])?.try_mul_rat(inv)?;
        let vnj = self.value[nj].try_add_dr(theta)?;
        self.set_value(nj, vnj);
        self.set_value(bi, target);

        // nj = bi/a_ij − Σ_{k≠j} (a_k/a_ij)·x_k, as a sorted row.
        let neg_inv = -inv;
        let mut new_row = self.arena.alloc();
        for &(k, a) in &row {
            if k != nj {
                new_row.push((k, a.try_mul(neg_inv)?));
            }
        }
        let pos = new_row
            .binary_search_by_key(&bi, |&(k, _)| k)
            .expect_err("bi was basic, absent from its own row");
        new_row.insert(pos, (bi, inv));
        self.arena.release(row);

        // Substitute into every other row containing nj; each affected
        // basic moves by a_bj·θ.
        for b in 0..self.n_cols {
            let Some(r) = self.rows[b].as_deref() else {
                continue;
            };
            let Ok(ri) = r.binary_search_by_key(&nj, |&(k, _)| k) else {
                continue;
            };
            let a_bj = r[ri].1;
            let mut dst = self.arena.alloc();
            merge_axpy(&mut dst, r, nj, a_bj, &new_row)?;
            let old = self.rows[b].replace(dst).expect("basic");
            self.arena.release(old);
            let vb = self.value[b].try_add_dr(theta.try_mul_rat(a_bj)?)?;
            self.set_value(b, vb);
        }
        self.rows[nj] = Some(new_row);
        self.stats.pivots += 1;
        if self.mode == NumericMode::FloatFirst {
            self.stats.float_pivots += 1;
        }
        Ok(())
    }
}

/// Decides the conjunction of the given bounds.
///
/// Bounds over the *same* linear form share a slack variable; directly
/// conflicting bounds (`lower > upper`) are reported without pivoting.
///
/// ```
/// use shatter_smt::simplex::{check, BoundConstraint, BoundKind, DeltaRat};
/// use shatter_smt::Rat;
///
/// // x >= 3  and  x <= 2  is infeasible.
/// let bounds = vec![
///     BoundConstraint {
///         expr: vec![(Rat::ONE, 0)],
///         bound: DeltaRat::standard(Rat::int(3)),
///         kind: BoundKind::Lower,
///         id: 0,
///     },
///     BoundConstraint {
///         expr: vec![(Rat::ONE, 0)],
///         bound: DeltaRat::standard(Rat::int(2)),
///         kind: BoundKind::Upper,
///         id: 1,
///     },
/// ];
/// match check(&bounds) {
///     shatter_smt::simplex::SimplexResult::Infeasible(ids) => {
///         assert_eq!(ids, vec![0, 1]);
///     }
///     _ => panic!("expected infeasible"),
/// }
/// ```
pub fn check(bounds: &[BoundConstraint]) -> SimplexResult {
    Simplex::new().check_assignment(bounds)
}

impl Simplex {
    /// Decides the conjunction of `bounds`, warm-starting from whatever
    /// basis previous calls left behind. Bounds are re-asserted from
    /// scratch each call (they follow the Boolean assignment under
    /// test); columns, slack definitions and pivots persist.
    ///
    /// Nonbasic values already inside their new bounds keep their
    /// position; out-of-range ones are clamped to the violated side.
    /// With an unchanged or mildly-shifted bound set — consecutive
    /// probes of one OMT binary search — the subsequent Bland loop then
    /// starts at (or next to) the previous feasible point.
    ///
    /// # Panics
    ///
    /// Panics on `i128` overflow or pivot-budget exhaustion; use
    /// [`Simplex::try_check_assignment`] to degrade gracefully instead.
    pub fn check_assignment(&mut self, bounds: &[BoundConstraint]) -> SimplexResult {
        self.try_check_assignment(bounds)
            .unwrap_or_else(|halt| halt_panic(halt))
    }

    /// [`Simplex::check_assignment`] that reports `i128` overflow (or an
    /// exhausted pivot budget) as [`SimplexHalt`] instead of panicking.
    /// After an *overflow* the tableau is poisoned: every further `try_*`
    /// call returns `Err` until the owner replaces it (e.g. restoring a
    /// pre-error clone). A *budget* halt does not poison.
    pub fn try_check_assignment(
        &mut self,
        bounds: &[BoundConstraint],
    ) -> Result<SimplexResult, SimplexHalt> {
        Ok(match self.try_assert_and_solve(bounds)? {
            Some(ids) => SimplexResult::Infeasible(ids),
            // Feasible: concretize ε and return original-variable values.
            None => SimplexResult::Feasible(self.concretize()),
        })
    }

    /// The tightest lower/upper bounds (with the asserting ids) currently
    /// asserted on a column. Valid after [`Simplex::assert_and_solve`] /
    /// [`Simplex::check_assignment`]; the DPLL(T) driver reads these to
    /// propagate theory-implied bound literals — any feasible point keeps
    /// the column's form within the returned interval. Resolve the column
    /// once via [`Simplex::column_index`] and cache it.
    pub(crate) fn asserted_bounds_at(&self, col: usize) -> (AssertedBound, AssertedBound) {
        (self.lower[col], self.upper[col])
    }

    /// Resolves (allocating on first sight) the column of `expr`;
    /// crate-visible so the DPLL(T) hook can cache the mapping.
    pub(crate) fn column_index(&mut self, expr: &[(Rat, usize)]) -> usize {
        self.try_column_for(expr)
            .expect("rational arithmetic overflow")
    }

    /// [`Simplex::check_assignment`] without the model extraction: the
    /// feasibility verdict alone (`None` = feasible), which is all the
    /// partial-assignment theory checkpoints need. The feasible basis is
    /// left in place for a later extraction or warm restart.
    ///
    /// # Panics
    ///
    /// Panics on `i128` overflow or pivot-budget exhaustion; use
    /// [`Simplex::try_assert_and_solve`] to degrade gracefully instead.
    pub fn assert_and_solve(&mut self, bounds: &[BoundConstraint]) -> Option<Vec<usize>> {
        self.try_assert_and_solve(bounds)
            .unwrap_or_else(|halt| halt_panic(halt))
    }

    /// [`Simplex::assert_and_solve`] that reports `i128` overflow (or an
    /// exhausted pivot budget) as [`SimplexHalt`] instead of panicking;
    /// see [`Simplex::try_check_assignment`] for the poisoning contract.
    pub fn try_assert_and_solve(
        &mut self,
        bounds: &[BoundConstraint],
    ) -> Result<Option<Vec<usize>>, SimplexHalt> {
        if self.poisoned {
            return Err(SimplexHalt::Overflow);
        }
        match self.solve_core(bounds) {
            Ok(r) => Ok(r),
            Err(halt) => {
                if halt == SimplexHalt::Overflow {
                    // A pivot aborted halfway: the tableau invariants no
                    // longer hold, so refuse all further use. (A budget
                    // halt stops *between* pivots — the tableau is fine.)
                    self.poisoned = true;
                }
                Err(halt)
            }
        }
    }

    fn solve_core(
        &mut self,
        bounds: &[BoundConstraint],
    ) -> Result<Option<Vec<usize>>, SimplexHalt> {
        // Retract every bound from the previous call.
        for b in &mut self.lower {
            *b = None;
        }
        for b in &mut self.upper {
            *b = None;
        }

        // Assert bounds, detecting immediate lower>upper conflicts.
        for b in bounds {
            let col = self.try_column_for(&b.expr)?;
            let fb = b.bound.r.to_f64();
            match b.kind {
                BoundKind::Lower => {
                    if let Some((u, uid)) = self.upper[col] {
                        if self.cmp_dr(b.bound, fb, u, self.fupper[col]) == Ordering::Greater {
                            return Ok(Some(vec![b.id, uid]));
                        }
                    }
                    let tighter = match self.lower[col] {
                        None => true,
                        Some((l, _)) => {
                            self.cmp_dr(b.bound, fb, l, self.flower[col]) == Ordering::Greater
                        }
                    };
                    if tighter {
                        self.lower[col] = Some((b.bound, b.id));
                        self.flower[col] = fb;
                    }
                }
                BoundKind::Upper => {
                    if let Some((l, lid)) = self.lower[col] {
                        if self.cmp_dr(b.bound, fb, l, self.flower[col]) == Ordering::Less {
                            return Ok(Some(vec![lid, b.id]));
                        }
                    }
                    let tighter = match self.upper[col] {
                        None => true,
                        Some((u, _)) => {
                            self.cmp_dr(b.bound, fb, u, self.fupper[col]) == Ordering::Less
                        }
                    };
                    if tighter {
                        self.upper[col] = Some((b.bound, b.id));
                        self.fupper[col] = fb;
                    }
                }
            }
        }

        // Move nonbasic values inside their bounds, keeping in-range
        // values where they are (the warm start).
        for v in 0..self.n_cols {
            if self.is_basic(v) {
                continue;
            }
            if let Some((l, _)) = self.lower[v] {
                if self.cmp_dr(self.value[v], self.fvalue[v], l, self.flower[v]) == Ordering::Less {
                    self.set_value(v, l);
                    continue;
                }
            }
            if let Some((u, _)) = self.upper[v] {
                if self.cmp_dr(self.value[v], self.fvalue[v], u, self.fupper[v])
                    == Ordering::Greater
                {
                    self.set_value(v, u);
                }
            }
        }
        for b in 0..self.n_cols {
            let Some(row) = self.rows[b].take() else {
                continue;
            };
            let v = self.try_row_value(&row);
            self.rows[b] = Some(row);
            self.set_value(b, v?);
        }

        // Main Bland-rule loop: smallest-index violated basic, then
        // smallest-index eligible nonbasic in its (sorted) row.
        loop {
            let mut violated: Option<(usize, bool)> = None; // (col, too_low)
            for b in 0..self.n_cols {
                if !self.is_basic(b) {
                    continue;
                }
                if let Some((l, _)) = self.lower[b] {
                    if self.cmp_dr(self.value[b], self.fvalue[b], l, self.flower[b])
                        == Ordering::Less
                    {
                        violated = Some((b, true));
                        break;
                    }
                }
                if let Some((u, _)) = self.upper[b] {
                    if self.cmp_dr(self.value[b], self.fvalue[b], u, self.fupper[b])
                        == Ordering::Greater
                    {
                        violated = Some((b, false));
                        break;
                    }
                }
            }
            let Some((bi, too_low)) = violated else {
                // Feasible; the basis stays for extraction or warm restart.
                return Ok(None);
            };

            let row = self.rows[bi].take().expect("bi is basic");
            let mut pivot_col: Option<usize> = None;
            for &(j, a) in &row {
                let can = if too_low {
                    // Need to increase bi.
                    (a.is_positive() && self.below_upper(j))
                        || (a.is_negative() && self.above_lower(j))
                } else {
                    // Need to decrease bi.
                    (a.is_positive() && self.above_lower(j))
                        || (a.is_negative() && self.below_upper(j))
                };
                if can {
                    pivot_col = Some(j);
                    break;
                }
            }

            match pivot_col {
                Some(nj) => {
                    // Budget gate and fault-injection site, both landing
                    // *between* pivots so a halt leaves a valid tableau
                    // (except an injected overflow, which poisons like a
                    // real one). Injection counts in pivot attempts — a
                    // deterministic unit — so a rule fires at the same
                    // pivot in every serial run and in both numeric modes.
                    if let Some(limit) = self.pivot_limit {
                        if self.stats.pivots >= limit {
                            self.rows[bi] = Some(row);
                            return Err(SimplexHalt::Budget);
                        }
                    }
                    if let Some(kind) = shatter_faults::hit("simplex.pivot") {
                        match kind {
                            shatter_faults::FaultKind::Panic => {
                                shatter_faults::panic_now("simplex.pivot")
                            }
                            shatter_faults::FaultKind::Overflow => {
                                return Err(SimplexHalt::Overflow)
                            }
                            // No real I/O at a pivot; `io` halts like
                            // budget exhaustion.
                            shatter_faults::FaultKind::Budget | shatter_faults::FaultKind::Io => {
                                self.rows[bi] = Some(row);
                                return Err(SimplexHalt::Budget);
                            }
                        }
                    }
                    let target = if too_low {
                        self.lower[bi].expect("violated lower").0
                    } else {
                        self.upper[bi].expect("violated upper").0
                    };
                    self.try_pivot_with_row(bi, nj, row, target)?;
                }
                None => {
                    // Conflict: violated bound of bi plus the limiting
                    // bounds of every nonbasic in the row.
                    let mut ids = Vec::new();
                    if too_low {
                        ids.push(self.lower[bi].expect("violated lower").1);
                        for &(j, a) in &row {
                            if a.is_positive() {
                                ids.push(self.upper[j].expect("limited above").1);
                            } else {
                                ids.push(self.lower[j].expect("limited below").1);
                            }
                        }
                    } else {
                        ids.push(self.upper[bi].expect("violated upper").1);
                        for &(j, a) in &row {
                            if a.is_positive() {
                                ids.push(self.lower[j].expect("limited below").1);
                            } else {
                                ids.push(self.upper[j].expect("limited above").1);
                            }
                        }
                    }
                    self.rows[bi] = Some(row);
                    ids.sort_unstable();
                    ids.dedup();
                    return Ok(Some(ids));
                }
            }
        }
    }

    /// Chooses a concrete ε small enough that all strict bounds stay
    /// strict, then maps the delta-valued assignment of the *variable*
    /// columns (slacks skipped) to plain rationals.
    fn concretize(&self) -> HashMap<usize, Rat> {
        let mut eps = Rat::ONE;
        for v in 0..self.n_cols {
            let val = self.value[v];
            if let Some((l, _)) = self.lower[v] {
                // need val.r + val.d e >= l.r + l.d e
                //   =>  (val.d - l.d) e >= l.r - val.r
                let dd = val.d - l.d;
                let rr = val.r - l.r;
                if dd.is_negative() && rr.is_positive() {
                    eps = eps.min(rr / (-dd));
                }
            }
            if let Some((u, _)) = self.upper[v] {
                let dd = u.d - val.d;
                let rr = u.r - val.r;
                if dd.is_negative() && rr.is_positive() {
                    eps = eps.min(rr / (-dd));
                }
            }
        }
        let eps = eps * Rat::new(1, 2);
        (0..self.n_cols)
            .filter_map(|c| self.col_var[c].map(|v| (v, self.value[c].concretize(eps))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(expr: Vec<(i128, usize)>, b: i128, id: usize) -> BoundConstraint {
        BoundConstraint {
            expr: expr.into_iter().map(|(c, v)| (Rat::int(c), v)).collect(),
            bound: DeltaRat::standard(Rat::int(b)),
            kind: BoundKind::Lower,
            id,
        }
    }

    fn upper(expr: Vec<(i128, usize)>, b: i128, id: usize) -> BoundConstraint {
        BoundConstraint {
            expr: expr.into_iter().map(|(c, v)| (Rat::int(c), v)).collect(),
            bound: DeltaRat::standard(Rat::int(b)),
            kind: BoundKind::Upper,
            id,
        }
    }

    fn assert_feasible(bounds: &[BoundConstraint]) -> HashMap<usize, Rat> {
        match check(bounds) {
            SimplexResult::Feasible(m) => {
                // Verify every bound holds on the concrete assignment.
                for b in bounds {
                    let val: Rat = b
                        .expr
                        .iter()
                        .map(|&(c, v)| c * m.get(&v).copied().unwrap_or(Rat::ZERO))
                        .fold(Rat::ZERO, |a, x| a + x);
                    match b.kind {
                        BoundKind::Lower => {
                            if b.bound.d.is_zero() {
                                assert!(val >= b.bound.r, "bound {} violated", b.id);
                            } else {
                                assert!(val > b.bound.r, "strict bound {} violated", b.id);
                            }
                        }
                        BoundKind::Upper => {
                            if b.bound.d.is_zero() {
                                assert!(val <= b.bound.r, "bound {} violated", b.id);
                            } else {
                                assert!(val < b.bound.r, "strict bound {} violated", b.id);
                            }
                        }
                    }
                }
                m
            }
            SimplexResult::Infeasible(ids) => panic!("unexpected infeasible: {ids:?}"),
        }
    }

    #[test]
    fn simple_feasible_box() {
        assert_feasible(&[
            lower(vec![(1, 0)], 1, 0),
            upper(vec![(1, 0)], 5, 1),
            lower(vec![(1, 1)], 2, 2),
            upper(vec![(1, 1)], 3, 3),
        ]);
    }

    #[test]
    fn direct_bound_conflict() {
        let r = check(&[lower(vec![(1, 0)], 3, 7), upper(vec![(1, 0)], 2, 9)]);
        let SimplexResult::Infeasible(ids) = r else {
            panic!()
        };
        assert_eq!(ids, vec![7, 9]);
    }

    #[test]
    fn sum_constraint_feasible() {
        // x + y <= 4, x >= 1, y >= 2.
        let m = assert_feasible(&[
            upper(vec![(1, 0), (1, 1)], 4, 0),
            lower(vec![(1, 0)], 1, 1),
            lower(vec![(1, 1)], 2, 2),
        ]);
        assert!(m[&0] + m[&1] <= Rat::int(4));
    }

    #[test]
    fn sum_constraint_infeasible_with_explanation() {
        // x + y <= 3, x >= 2, y >= 2.
        let r = check(&[
            upper(vec![(1, 0), (1, 1)], 3, 0),
            lower(vec![(1, 0)], 2, 1),
            lower(vec![(1, 1)], 2, 2),
        ]);
        let SimplexResult::Infeasible(ids) = r else {
            panic!()
        };
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn strict_bounds_respected() {
        // x > 0, x < 1 is feasible with a concrete witness strictly inside.
        let m = assert_feasible(&[
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::plus_eps(Rat::ZERO),
                kind: BoundKind::Lower,
                id: 0,
            },
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::minus_eps(Rat::ONE),
                kind: BoundKind::Upper,
                id: 1,
            },
        ]);
        assert!(m[&0] > Rat::ZERO && m[&0] < Rat::ONE);
    }

    #[test]
    fn strict_vs_nonstrict_conflict() {
        // x <= 2 and x > 2.
        let r = check(&[
            upper(vec![(1, 0)], 2, 0),
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::plus_eps(Rat::int(2)),
                kind: BoundKind::Lower,
                id: 1,
            },
        ]);
        assert!(matches!(r, SimplexResult::Infeasible(_)));
    }

    #[test]
    fn chained_equalities() {
        // x = y, y = z, z >= 5, x <= 5  => all equal 5.
        let m = assert_feasible(&[
            upper(vec![(1, 0), (-1, 1)], 0, 0),
            lower(vec![(1, 0), (-1, 1)], 0, 1),
            upper(vec![(1, 1), (-1, 2)], 0, 2),
            lower(vec![(1, 1), (-1, 2)], 0, 3),
            lower(vec![(1, 2)], 5, 4),
            upper(vec![(1, 0)], 5, 5),
        ]);
        assert_eq!(m[&0], Rat::int(5));
        assert_eq!(m[&1], Rat::int(5));
        assert_eq!(m[&2], Rat::int(5));
    }

    #[test]
    fn triangle_infeasibility() {
        // x - y <= -1, y - z <= -1, z - x <= -1 sums to 0 <= -3.
        let r = check(&[
            upper(vec![(1, 0), (-1, 1)], -1, 0),
            upper(vec![(1, 1), (-1, 2)], -1, 1),
            upper(vec![(1, 2), (-1, 0)], -1, 2),
        ]);
        let SimplexResult::Infeasible(ids) = r else {
            panic!()
        };
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn redundant_bounds_keep_tightest() {
        let m = assert_feasible(&[
            lower(vec![(1, 0)], 1, 0),
            lower(vec![(1, 0)], 3, 1),
            upper(vec![(1, 0)], 10, 2),
            upper(vec![(1, 0)], 7, 3),
        ]);
        assert!(m[&0] >= Rat::int(3) && m[&0] <= Rat::int(7));
    }

    #[test]
    fn fractional_coefficients() {
        // 0.5x + 0.25y >= 10, x <= 4  =>  y >= 32.
        let m = assert_feasible(&[
            BoundConstraint {
                expr: vec![(Rat::new(1, 2), 0), (Rat::new(1, 4), 1)],
                bound: DeltaRat::standard(Rat::int(10)),
                kind: BoundKind::Lower,
                id: 0,
            },
            upper(vec![(1, 0)], 4, 1),
        ]);
        assert!(m[&0] * Rat::new(1, 2) + m[&1] * Rat::new(1, 4) >= Rat::int(10));
    }

    // ---- two-phase numeric pipeline ------------------------------------

    /// Instances that actually pivot, reused by the mode-equivalence
    /// checks.
    fn pivoting_instances() -> Vec<Vec<BoundConstraint>> {
        vec![
            vec![
                upper(vec![(1, 0), (1, 1)], 4, 0),
                lower(vec![(1, 0)], 1, 1),
                lower(vec![(1, 1)], 2, 2),
            ],
            vec![
                upper(vec![(1, 0), (-1, 1)], 0, 0),
                lower(vec![(1, 0), (-1, 1)], 0, 1),
                upper(vec![(1, 1), (-1, 2)], 0, 2),
                lower(vec![(1, 1), (-1, 2)], 0, 3),
                lower(vec![(1, 2)], 5, 4),
                upper(vec![(1, 0)], 5, 5),
            ],
            vec![
                upper(vec![(1, 0), (1, 1)], 3, 0),
                lower(vec![(1, 0)], 2, 1),
                lower(vec![(1, 1)], 2, 2),
            ],
            vec![
                upper(vec![(1, 0), (-1, 1)], -1, 0),
                upper(vec![(1, 1), (-1, 2)], -1, 1),
                upper(vec![(1, 2), (-1, 0)], -1, 2),
            ],
        ]
    }

    #[test]
    fn modes_agree_bit_for_bit_and_pivot_identically() {
        for bounds in pivoting_instances() {
            let mut fast = Simplex::new();
            let mut exact = Simplex::new();
            exact.set_numeric_mode(NumericMode::ExactOnly);
            let rf = fast.check_assignment(&bounds);
            let re = exact.check_assignment(&bounds);
            match (rf, re) {
                (SimplexResult::Feasible(a), SimplexResult::Feasible(b)) => assert_eq!(a, b),
                (SimplexResult::Infeasible(a), SimplexResult::Infeasible(b)) => assert_eq!(a, b),
                (a, b) => panic!("verdicts diverged: {a:?} vs {b:?}"),
            }
            // The float layer changes no decision: identical pivot
            // sequences, hence identical counts.
            assert_eq!(fast.stats().pivots, exact.stats().pivots);
            assert_eq!(fast.stats().float_pivots, fast.stats().pivots);
            assert_eq!(exact.stats().float_pivots, 0);
        }
    }

    #[test]
    fn near_tie_falls_back_to_exact_and_stays_correct() {
        // 10⁻¹⁵ vs 0 sits inside the float margin (~10⁻¹²): the float
        // layer must refuse to decide and the exact layer must still
        // separate them.
        let tiny = Rat::new(1, 1_000_000_000_000_000);
        let bounds = vec![
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::standard(tiny),
                kind: BoundKind::Lower,
                id: 0,
            },
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::standard(Rat::ZERO),
                kind: BoundKind::Upper,
                id: 1,
            },
        ];
        let mut s = Simplex::new();
        let r = s.check_assignment(&bounds);
        let SimplexResult::Infeasible(ids) = r else {
            panic!("x >= 1e-15 and x <= 0 must be infeasible");
        };
        assert_eq!(ids, vec![0, 1]);
        assert!(
            s.stats().exact_fallbacks > 0,
            "margin must force a fallback"
        );
    }

    #[test]
    fn exact_ties_on_eps_parts_fall_back() {
        // Strict vs non-strict at the same standard value: floats see a
        // tie, the ε parts decide. The fallback keeps it correct.
        let mut s = Simplex::new();
        let r = s.check_assignment(&[
            upper(vec![(1, 0)], 2, 0),
            BoundConstraint {
                expr: vec![(Rat::ONE, 0)],
                bound: DeltaRat::plus_eps(Rat::int(2)),
                kind: BoundKind::Lower,
                id: 1,
            },
        ]);
        assert!(matches!(r, SimplexResult::Infeasible(_)));
        assert!(s.stats().exact_fallbacks > 0);
    }

    #[test]
    fn overflow_degrades_to_error_and_poisons() {
        // Clamping both variables to near-i128::MAX makes the slack
        // recomputation overflow. The checked path reports it; the
        // tableau then refuses further work instead of computing on a
        // half-updated basis.
        let huge = i128::MAX - 1;
        let bounds = vec![
            upper(vec![(1, 0), (1, 1)], 0, 0),
            lower(vec![(1, 0)], huge, 1),
            lower(vec![(1, 1)], huge, 2),
        ];
        let mut s = Simplex::new();
        assert_eq!(s.try_assert_and_solve(&bounds), Err(SimplexHalt::Overflow));
        assert_eq!(s.try_assert_and_solve(&[]), Err(SimplexHalt::Overflow));
        // A pre-error clone is unaffected.
        let mut fresh = Simplex::new();
        assert!(fresh
            .try_assert_and_solve(&[lower(vec![(1, 0)], 1, 0)])
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "rational arithmetic overflow")]
    fn overflow_panics_via_legacy_entry_point() {
        let huge = i128::MAX - 1;
        let mut s = Simplex::new();
        s.assert_and_solve(&[
            upper(vec![(1, 0), (1, 1)], 0, 0),
            lower(vec![(1, 0)], huge, 1),
            lower(vec![(1, 1)], huge, 2),
        ]);
    }

    #[test]
    fn pivot_budget_halts_between_pivots_without_poisoning() {
        // x + y >= 5, x <= 3, y <= 3 needs at least one pivot. A zero
        // budget halts before the first pivot; the tableau stays valid,
        // so lifting the cap finishes the same solve from where it
        // stopped.
        let bounds = vec![
            lower(vec![(1, 0), (1, 1)], 5, 0),
            upper(vec![(1, 0)], 3, 1),
            upper(vec![(1, 1)], 3, 2),
        ];
        let mut s = Simplex::new();
        s.set_pivot_limit(Some(0));
        assert_eq!(s.try_assert_and_solve(&bounds), Err(SimplexHalt::Budget));
        s.set_pivot_limit(None);
        assert_eq!(
            s.try_assert_and_solve(&bounds),
            Ok(None),
            "budget halt must not poison the tableau"
        );
        assert!(s.stats().pivots > 0);
    }

    #[test]
    #[should_panic(expected = "simplex pivot budget exhausted")]
    fn budget_panics_via_legacy_entry_point() {
        let mut s = Simplex::new();
        s.set_pivot_limit(Some(0));
        s.assert_and_solve(&[
            lower(vec![(1, 0), (1, 1)], 5, 0),
            upper(vec![(1, 0)], 3, 1),
            upper(vec![(1, 1)], 3, 2),
        ]);
    }

    #[test]
    fn injected_overflow_poisons_like_a_real_one() {
        shatter_faults::install(vec![shatter_faults::FaultSpec {
            scenario: "simplex-inject-test".into(),
            site: "simplex.pivot".into(),
            kind: shatter_faults::FaultKind::Overflow,
            hit: 0,
        }]);
        let bounds = vec![
            lower(vec![(1, 0), (1, 1)], 5, 0),
            upper(vec![(1, 0)], 3, 1),
            upper(vec![(1, 1)], 3, 2),
        ];
        shatter_faults::with_scenario("simplex-inject-test", || {
            let mut s = Simplex::new();
            assert_eq!(s.try_assert_and_solve(&bounds), Err(SimplexHalt::Overflow));
            assert_eq!(
                s.try_assert_and_solve(&[]),
                Err(SimplexHalt::Overflow),
                "injected overflow must poison"
            );
            // The rule fired once; a fresh tableau in the same scope
            // completes untouched (the ExactOnly-retry contract).
            let mut retry = Simplex::new();
            retry.set_numeric_mode(NumericMode::ExactOnly);
            assert_eq!(retry.try_assert_and_solve(&bounds), Ok(None));
        });
    }

    #[test]
    fn warm_restart_reuses_arena_rows() {
        // Re-solving shifted bound sets on one tableau must keep
        // verdicts correct while pivots recycle row buffers (smoke: the
        // second call is where releases from the first get reused).
        let mut s = Simplex::new();
        for shift in 0..6i128 {
            // The slack starts below its lower bound, so every call
            // pivots it against a variable column.
            let r = s.check_assignment(&[
                lower(vec![(1, 0), (1, 1)], 5 + shift, 0),
                upper(vec![(1, 0)], 3 + shift, 1),
                upper(vec![(1, 1)], 3, 2),
            ]);
            assert!(matches!(r, SimplexResult::Feasible(_)), "shift {shift}");
        }
        assert!(s.stats().pivots > 0);
    }
}
