//! `smtlite` — a from-scratch SMT solver for quantifier-free linear real
//! arithmetic (QF_LRA) with Boolean structure, plus a linear-objective
//! optimizer.
//!
//! SHATTER's formal attack synthesis (paper §IV) uses Z3 to find stealthy
//! FDI attack vectors: Boolean occupancy/schedule structure constrained by
//! the convex-hull ADM clusters (conjunctions of linear half-planes,
//! Eq. 9–10) and the control-consistency equations (Eq. 13–15), maximizing
//! the energy-cost objective (Eq. 11/17). All of that is QF_LRA + Bool,
//! which this crate decides end to end:
//!
//! - [`ast`]: formula AST over Boolean variables and linear-rational atoms,
//! - [`Rat`]: exact `i128` rational arithmetic (no float drift in pivots),
//! - [`sat`]: an *incremental* CDCL SAT solver (two-watched-literals,
//!   1UIP learning, VSIDS-style activity, Luby restarts) with
//!   assumption-based solving, retained learned clauses and an
//!   assertion-trail `push`/`pop`,
//! - [`simplex`]: a Dutertre–de Moura general simplex for bound
//!   consistency of linear atoms, with infeasibility explanations and a
//!   persistent warm-started tableau,
//! - [`Solver`]: the lazy DPLL(T) loop tying them together, plus
//!   [`Solver::maximize`] — objective maximization by iterative
//!   strengthening run entirely inside one solver via guard assumptions
//!   (the OMT loop the attack scheduler calls).
//!
//! # Examples
//!
//! ```
//! use shatter_smt::{ast::LinExpr, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_real();
//! let y = solver.new_real();
//! // x + y <= 4, x >= 1, y >= 2
//! solver.assert_formula(LinExpr::var(x).plus(&LinExpr::var(y)).le(4));
//! solver.assert_formula(LinExpr::var(x).ge(1));
//! solver.assert_formula(LinExpr::var(y).ge(2));
//! let model = solver.check().expect("satisfiable");
//! let (xv, yv) = (model.real(x), model.real(y));
//! assert!(xv + yv <= 4.000001 && xv >= 0.999999 && yv >= 1.999999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod budget;
mod cnf;
mod rational;
pub mod sat;
pub mod simplex;
mod solver;

pub use budget::Budget;
pub use rational::{Rat, RatOverflow};
pub use sat::{SatStats, SearchConfig};
pub use simplex::{NumericMode, SimplexHalt, SimplexStats};
pub use solver::{CheckOutcome, HaltCause, Model, OmtOutcome, SatResult, Solver};
