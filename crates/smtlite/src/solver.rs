use std::collections::HashMap;

use crate::ast::{Atom, BoolVar, Formula, LinExpr, RealVar, Rel};
use crate::cnf::{strip_expr, Encoder};
use crate::sat::{Lit, SatVerdict};
use crate::simplex::{check, BoundConstraint, BoundKind, DeltaRat, SimplexResult};
use crate::Rat;

/// A satisfying assignment.
#[derive(Debug, Clone)]
pub struct Model {
    bools: HashMap<usize, bool>,
    reals: HashMap<usize, Rat>,
}

impl Model {
    /// Value of a Boolean variable (false when never constrained).
    pub fn bool(&self, b: BoolVar) -> bool {
        self.bools.get(&b.index()).copied().unwrap_or(false)
    }

    /// Value of a real variable as `f64` (0 when never constrained).
    pub fn real(&self, x: RealVar) -> f64 {
        self.real_exact(x).to_f64()
    }

    /// Exact rational value of a real variable.
    pub fn real_exact(&self, x: RealVar) -> Rat {
        self.reals.get(&x.index()).copied().unwrap_or(Rat::ZERO)
    }

    /// Evaluates a linear expression under this model.
    pub fn eval(&self, e: &LinExpr) -> Rat {
        e.eval(&|v| self.real_exact(v))
    }
}

/// Outcome of a `check` call (kept for API clarity; `check` returns an
/// `Option<Model>`).
#[derive(Debug, Clone)]
pub enum SatResult {
    /// Satisfiable with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

/// The lazy DPLL(T) SMT solver for QF_LRA + Booleans.
///
/// Asserted formulas are Tseitin-encoded; the CDCL core enumerates Boolean
/// skeleton models; the simplex theory solver validates the implied
/// conjunction of linear bounds, contributing blocking clauses built from
/// its infeasibility explanations until the loop converges.
#[derive(Debug, Default, Clone)]
pub struct Solver {
    enc: Encoder,
    n_reals: usize,
    n_bools: usize,
    real_names: Vec<String>,
    /// Statistics: theory conflicts encountered across `check` calls.
    pub theory_conflicts: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            enc: Encoder::new(),
            ..Solver::default()
        }
    }

    /// Allocates a real-valued theory variable.
    pub fn new_real(&mut self, name: impl Into<String>) -> RealVar {
        let v = RealVar(self.n_reals);
        self.n_reals += 1;
        self.real_names.push(name.into());
        v
    }

    /// Allocates a propositional variable.
    pub fn new_bool(&mut self, _name: impl Into<String>) -> BoolVar {
        let v = BoolVar(self.n_bools);
        self.n_bools += 1;
        v
    }

    /// Asserts a formula.
    pub fn assert_formula(&mut self, f: Formula) {
        self.enc.assert_formula(&f);
    }

    /// Decides the asserted conjunction. Returns a model when satisfiable.
    pub fn check(&mut self) -> Option<Model> {
        loop {
            let SatVerdict::Sat(assignment) = self.enc.sat.solve() else {
                return None;
            };
            // Gather asserted theory literals.
            let mut bounds: Vec<BoundConstraint> = Vec::new();
            for (sat_var, atom) in self.enc.registered_atoms() {
                let positive = assignment[sat_var];
                bounds.push(atom_to_bound(atom, positive, sat_var));
            }
            match check(&bounds) {
                SimplexResult::Feasible(reals) => {
                    let mut bools = HashMap::new();
                    for b in 0..self.n_bools {
                        if let Some(v) = self.enc.bool_value(BoolVar(b), &assignment) {
                            bools.insert(b, v);
                        }
                    }
                    let reals = reals
                        .into_iter()
                        .filter(|(v, _)| *v < self.n_reals)
                        .collect();
                    return Some(Model { bools, reals });
                }
                SimplexResult::Infeasible(conflict_vars) => {
                    self.theory_conflicts += 1;
                    // Block this combination of theory literals.
                    let clause: Vec<Lit> = conflict_vars
                        .iter()
                        .map(|&v| {
                            if assignment[v] {
                                Lit::neg(v)
                            } else {
                                Lit::pos(v)
                            }
                        })
                        .collect();
                    if !self.enc.sat.add_clause(&clause) {
                        return None;
                    }
                }
            }
        }
    }

    /// Maximizes a linear objective subject to the asserted formulas, by
    /// iterative strengthening (binary search on the objective bound) —
    /// the OMT loop SHATTER runs per attack window (paper Eq. 17).
    ///
    /// `lo`/`hi` bracket the objective; `tol` is the termination gap.
    /// Returns the best model found and its objective value, or `None`
    /// when the constraints are unsatisfiable.
    pub fn maximize(
        &mut self,
        objective: &LinExpr,
        lo: f64,
        hi: f64,
        tol: f64,
    ) -> Option<(f64, Model)> {
        let base_model = self.check()?;
        let mut best_val = base_model.eval(objective).to_f64();
        let mut best_model = base_model;
        let mut lo = best_val.max(lo);
        let mut hi = hi.max(lo);
        while hi - lo > tol {
            let mid = lo + (hi - lo) / 2.0;
            let mut probe = self.clone();
            probe.assert_formula(objective.ge(Rat::from_f64_approx(mid)));
            match probe.check() {
                Some(m) => {
                    let v = m.eval(objective).to_f64();
                    self.theory_conflicts = probe.theory_conflicts;
                    if v > best_val {
                        best_val = v;
                        best_model = m;
                    }
                    lo = best_val.max(mid);
                }
                None => {
                    self.theory_conflicts = probe.theory_conflicts;
                    hi = mid;
                }
            }
        }
        Some((best_val, best_model))
    }
}

/// Converts an asserted theory literal into a simplex bound.
///
/// Atom is `expr ⋈ 0` with `⋈ ∈ {≤, <}` (equalities were split by the
/// encoder). With constant `k` folded out: `Σcx ⋈ −k`.
fn atom_to_bound(atom: &Atom, positive: bool, id: usize) -> BoundConstraint {
    let (expr, k) = strip_expr(&atom.expr);
    let rhs = -k;
    let (kind, bound) = match (atom.op, positive) {
        // Σcx <= rhs
        (Rel::Le, true) => (BoundKind::Upper, DeltaRat::standard(rhs)),
        // ¬(Σcx <= rhs)  =>  Σcx > rhs
        (Rel::Le, false) => (BoundKind::Lower, DeltaRat::plus_eps(rhs)),
        // Σcx < rhs
        (Rel::Lt, true) => (BoundKind::Upper, DeltaRat::minus_eps(rhs)),
        // ¬(Σcx < rhs)  =>  Σcx >= rhs
        (Rel::Lt, false) => (BoundKind::Lower, DeltaRat::standard(rhs)),
        (Rel::Eq, _) => unreachable!("Eq atoms split during encoding"),
    };
    BoundConstraint {
        expr,
        bound,
        kind,
        id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;

    #[test]
    fn pure_boolean_sat() {
        let mut s = Solver::new();
        let a = s.new_bool("a");
        let b = s.new_bool("b");
        s.assert_formula(Formula::or([Formula::Bool(a), Formula::Bool(b)]));
        s.assert_formula(Formula::not(Formula::Bool(a)));
        let m = s.check().expect("sat");
        assert!(!m.bool(a));
        assert!(m.bool(b));
    }

    #[test]
    fn linear_system_solved() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        let y = s.new_real("y");
        s.assert_formula(LinExpr::var(x).plus(&LinExpr::var(y)).eq(10));
        s.assert_formula(LinExpr::var(x).minus(&LinExpr::var(y)).eq(4));
        let m = s.check().expect("sat");
        assert!((m.real(x) - 7.0).abs() < 1e-9);
        assert!((m.real(y) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn theory_conflict_forces_boolean_backtrack() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        let p = s.new_bool("p");
        // p -> x >= 5;  !p -> x >= 7;  x <= 6. Must pick p.
        s.assert_formula(Formula::implies(Formula::Bool(p), LinExpr::var(x).ge(5)));
        s.assert_formula(Formula::implies(
            Formula::not(Formula::Bool(p)),
            LinExpr::var(x).ge(7),
        ));
        s.assert_formula(LinExpr::var(x).le(6));
        let m = s.check().expect("sat");
        assert!(m.bool(p));
        assert!(m.real(x) >= 5.0 - 1e-9 && m.real(x) <= 6.0 + 1e-9);
    }

    #[test]
    fn unsat_conjunction() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        s.assert_formula(LinExpr::var(x).ge(5));
        s.assert_formula(LinExpr::var(x).le(4));
        assert!(s.check().is_none());
    }

    #[test]
    fn disjunction_of_regions() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        // (x <= -10 or x >= 10) and -5 <= x <= 15  => x in [10, 15].
        s.assert_formula(Formula::or([
            LinExpr::var(x).le(-10),
            LinExpr::var(x).ge(10),
        ]));
        s.assert_formula(LinExpr::var(x).ge(-5));
        s.assert_formula(LinExpr::var(x).le(15));
        let m = s.check().expect("sat");
        assert!(m.real(x) >= 10.0 - 1e-9 && m.real(x) <= 15.0 + 1e-9);
    }

    #[test]
    fn strict_inequalities() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        s.assert_formula(LinExpr::var(x).gt(0));
        s.assert_formula(LinExpr::var(x).lt(1));
        let m = s.check().expect("sat");
        let v = m.real(x);
        assert!(v > 0.0 && v < 1.0, "witness {v}");
    }

    #[test]
    fn strict_contradiction_unsat() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        s.assert_formula(LinExpr::var(x).gt(3));
        s.assert_formula(LinExpr::var(x).le(3));
        assert!(s.check().is_none());
    }

    #[test]
    fn negated_equality_splits() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        s.assert_formula(Formula::not(LinExpr::var(x).eq(5)));
        s.assert_formula(LinExpr::var(x).ge(5));
        s.assert_formula(LinExpr::var(x).le(6));
        let m = s.check().expect("sat");
        assert!(m.real(x) > 5.0 && m.real(x) <= 6.0 + 1e-9);
    }

    #[test]
    fn maximize_simple_lp() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        let y = s.new_real("y");
        s.assert_formula(LinExpr::var(x).le(4));
        s.assert_formula(LinExpr::var(y).le(3));
        s.assert_formula(LinExpr::var(x).ge(0));
        s.assert_formula(LinExpr::var(y).ge(0));
        let obj = LinExpr::var(x).plus(&LinExpr::var(y));
        let (v, m) = s.maximize(&obj, 0.0, 100.0, 1e-3).expect("sat");
        assert!((v - 7.0).abs() < 0.01, "max {v}");
        assert!((m.real(x) - 4.0).abs() < 0.01);
    }

    #[test]
    fn maximize_with_boolean_choice() {
        // Choosing p gives reward 10, else 3; p forces cost x >= 8 <= budget.
        let mut s = Solver::new();
        let p = s.new_bool("p");
        let x = s.new_real("x");
        let reward = s.new_real("reward");
        s.assert_formula(Formula::implies(
            Formula::Bool(p),
            Formula::and([LinExpr::var(reward).eq(10), LinExpr::var(x).ge(8)]),
        ));
        s.assert_formula(Formula::implies(
            Formula::not(Formula::Bool(p)),
            Formula::and([LinExpr::var(reward).eq(3), LinExpr::var(x).eq(0)]),
        ));
        s.assert_formula(LinExpr::var(x).le(9));
        let (v, m) = s
            .maximize(&LinExpr::var(reward), 0.0, 20.0, 1e-3)
            .expect("sat");
        assert!((v - 10.0).abs() < 0.01);
        assert!(m.bool(p));
    }

    #[test]
    fn maximize_infeasible_returns_none() {
        let mut s = Solver::new();
        let x = s.new_real("x");
        s.assert_formula(LinExpr::var(x).ge(1));
        s.assert_formula(LinExpr::var(x).le(0));
        assert!(s.maximize(&LinExpr::var(x), 0.0, 10.0, 1e-3).is_none());
    }

    #[test]
    fn hull_membership_style_constraints() {
        // Triangle (0,0)-(4,0)-(2,4) as half-planes over (a, b); point
        // inside must exist with b maximized at 4.
        let mut s = Solver::new();
        let a = s.new_real("a");
        let b = s.new_real("b");
        // y >= 0: -b <= 0
        s.assert_formula(LinExpr::var(b).ge(0));
        // right edge: from (4,0) to (2,4): 2x + y <= 8
        s.assert_formula(LinExpr::term(2, a).plus(&LinExpr::var(b)).le(8));
        // left edge: from (2,4) to (0,0): -2x + y <= 0
        s.assert_formula(LinExpr::term(-2, a).plus(&LinExpr::var(b)).le(0));
        let (v, m) = s.maximize(&LinExpr::var(b), 0.0, 10.0, 1e-4).expect("sat");
        assert!((v - 4.0).abs() < 0.01, "max y = {v}");
        assert!((m.real(a) - 2.0).abs() < 0.1);
    }
}
