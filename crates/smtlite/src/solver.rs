use std::collections::HashMap;

use crate::ast::{Atom, BoolVar, Formula, LinExpr, RealVar, Rel};
use crate::budget::Budget;
use crate::cnf::{strip_expr, Encoder};
use crate::sat::{Lit, SatStats, SatVerdict, SearchConfig, Theory, TheoryResult, TheoryView};
use crate::simplex::{
    BoundConstraint, BoundKind, DeltaRat, NumericMode, Simplex, SimplexHalt, SimplexResult,
    SimplexStats,
};
use crate::Rat;

/// A satisfying assignment.
#[derive(Debug, Clone)]
pub struct Model {
    bools: HashMap<usize, bool>,
    reals: HashMap<usize, Rat>,
}

impl Model {
    /// Value of a Boolean variable (false when never constrained).
    pub fn bool(&self, b: BoolVar) -> bool {
        self.bools.get(&b.index()).copied().unwrap_or(false)
    }

    /// Value of a real variable as `f64` (0 when never constrained).
    pub fn real(&self, x: RealVar) -> f64 {
        self.real_exact(x).to_f64()
    }

    /// Exact rational value of a real variable.
    pub fn real_exact(&self, x: RealVar) -> Rat {
        self.reals.get(&x.index()).copied().unwrap_or(Rat::ZERO)
    }

    /// Evaluates a linear expression under this model.
    pub fn eval(&self, e: &LinExpr) -> Rat {
        e.eval(&|v| self.real_exact(v))
    }
}

/// Outcome of a `check` call (kept for API clarity; `check` returns an
/// `Option<Model>`).
#[derive(Debug, Clone)]
pub enum SatResult {
    /// Satisfiable with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

/// Why a budget-aware solve stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltCause {
    /// The CDCL conflict budget ([`Budget::max_conflicts`]) ran out.
    Conflicts,
    /// The simplex pivot budget ([`Budget::max_pivots`]) ran out.
    Pivots,
    /// The OMT probe budget ([`Budget::max_probes`]) ran out.
    Probes,
    /// `i128` rational arithmetic overflowed; the tableau is poisoned
    /// until a [`Solver::pop`] restores a pre-overflow checkpoint.
    Overflow,
}

impl From<SimplexHalt> for HaltCause {
    fn from(halt: SimplexHalt) -> HaltCause {
        match halt {
            SimplexHalt::Overflow => HaltCause::Overflow,
            SimplexHalt::Budget => HaltCause::Pivots,
        }
    }
}

/// Outcome of [`Solver::check_full`]: a `check` that distinguishes
/// budget exhaustion and numeric degradation from unsatisfiability.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Satisfiable with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Undecided: the search halted early for the given cause. The
    /// solver remains usable (after [`HaltCause::Overflow`], once the
    /// enclosing frame is popped).
    Halted(HaltCause),
}

/// Outcome of [`Solver::maximize_budgeted`] — the anytime OMT contract:
/// exhaustion degrades to the best verified model instead of hanging.
#[derive(Debug, Clone)]
pub enum OmtOutcome {
    /// The binary search converged below `tol`.
    Optimal {
        /// Objective value of the returned model.
        value: f64,
        /// The optimal model.
        model: Model,
    },
    /// A budget ran out (or the tableau degraded) mid-search: the best
    /// model proven feasible *before* the halt, marked with the cause.
    Degraded {
        /// Objective value of the best-so-far model.
        value: f64,
        /// The best model found before the halt.
        model: Model,
        /// Why the search stopped early.
        cause: HaltCause,
    },
    /// The assertions are unsatisfiable (no budget involved).
    Unsat,
    /// The search halted before proving any model feasible.
    Halted(HaltCause),
}

/// The panic legacy (budget-unaware) entry points raise when a halt
/// surfaces under them; the overflow message is the long-standing
/// contract of the pre-budget API.
fn halted_panic(cause: HaltCause) -> ! {
    match cause {
        HaltCause::Overflow => panic!("rational arithmetic overflow"),
        other => panic!(
            "solver halted ({other:?}) under a budget-unaware entry point; \
             use check_full/maximize_budgeted with Solver::set_budget"
        ),
    }
}

/// Checkpoint for [`Solver::pop`].
#[derive(Debug, Clone)]
struct SolverFrame {
    n_reals: usize,
    n_bools: usize,
    simplex: Simplex,
}

/// The lazy DPLL(T) SMT solver for QF_LRA + Booleans.
///
/// Asserted formulas are Tseitin-encoded; the CDCL core enumerates Boolean
/// skeleton models; the simplex theory solver validates the implied
/// conjunction of linear bounds, contributing blocking clauses built from
/// its infeasibility explanations until the loop converges.
///
/// The solver is incremental end to end:
///
/// - [`Solver::check_under`] decides the assertions under *assumption*
///   literals without asserting them, retaining everything the CDCL core
///   learns for later calls;
/// - the simplex tableau persists between checks, warm-starting each
///   theory validation from the previous feasible basis;
/// - [`Solver::push`]/[`Solver::pop`] checkpoint the whole stack
///   (clauses, variables, atom registry, tableau, heuristics), and `pop`
///   restores it *exactly* — a popped solver continues byte-for-byte
///   like a fresh one that never saw the popped assertions, which is what
///   lets the attack scheduler reuse one solver across windows while
///   keeping schedules identical to the fresh-solver path;
/// - [`Solver::maximize`] runs its whole objective binary search inside
///   this one solver, guarding each probe with a fresh assumption
///   literal instead of cloning.
#[derive(Debug, Default, Clone)]
pub struct Solver {
    enc: Encoder,
    n_reals: usize,
    n_bools: usize,
    simplex: Simplex,
    frames: Vec<SolverFrame>,
    /// OMT probe cap from the active [`Budget`] (`None` = unlimited).
    probe_limit: Option<u64>,
    /// Statistics: theory conflicts encountered across `check` calls.
    pub theory_conflicts: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            enc: Encoder::new(),
            ..Solver::default()
        }
    }

    /// Allocates a real-valued theory variable.
    pub fn new_real(&mut self) -> RealVar {
        let v = RealVar(self.n_reals);
        self.n_reals += 1;
        v
    }

    /// Allocates a propositional variable.
    pub fn new_bool(&mut self) -> BoolVar {
        let v = BoolVar(self.n_bools);
        self.n_bools += 1;
        v
    }

    /// Asserts a formula.
    pub fn assert_formula(&mut self, f: Formula) {
        self.enc.assert_formula(&f);
    }

    /// Cumulative CDCL effort counters (decisions, propagations,
    /// conflicts, learned clauses, restarts, GC'd and carried clauses).
    /// Like [`Solver::theory_conflicts`] they measure work done and
    /// survive [`Solver::pop`].
    pub fn sat_stats(&self) -> SatStats {
        self.enc.sat.stats
    }

    /// Learnt clauses currently stored in the CDCL core (gauge).
    pub fn live_learnts(&self) -> usize {
        self.enc.sat.live_learnts()
    }

    /// Cumulative simplex pivot counters (total pivots, float-first
    /// pivots, exact fallbacks). Like [`Solver::sat_stats`] they measure
    /// work done and survive [`Solver::pop`].
    pub fn simplex_stats(&self) -> SimplexStats {
        self.simplex.stats()
    }

    /// Selects the simplex numeric pipeline (see
    /// [`crate::simplex::NumericMode`]): the certified float fast path
    /// (default) or the forced-exact reference path. Both produce
    /// bit-for-bit identical verdicts and models; the knob exists so the
    /// reference path stays runnable end to end. Survives
    /// [`Solver::push`]/[`Solver::pop`].
    pub fn set_numeric_mode(&mut self, mode: NumericMode) {
        self.simplex.set_numeric_mode(mode);
    }

    /// The currently selected simplex numeric pipeline.
    pub fn numeric_mode(&self) -> NumericMode {
        self.simplex.numeric_mode()
    }

    /// Installs `budget` for subsequent solves. Limits are counted in
    /// deterministic effort units *from this point*: each cap is applied
    /// as an absolute ceiling of `current cumulative counter + max`, so
    /// calling `set_budget` per window gives every window the same
    /// allowance regardless of how much earlier windows consumed.
    /// Exhaustion surfaces through [`Solver::check_full`] /
    /// [`Solver::maximize_budgeted`] as [`CheckOutcome::Halted`] /
    /// [`OmtOutcome::Degraded`]; the budget-unaware entry points panic
    /// instead. [`Budget::UNLIMITED`] lifts all limits.
    pub fn set_budget(&mut self, budget: Budget) {
        let conflicts = self.enc.sat.stats.conflicts;
        self.enc
            .sat
            .set_conflict_limit(budget.max_conflicts.map(|m| conflicts.saturating_add(m)));
        let pivots = self.simplex.stats().pivots;
        self.simplex
            .set_pivot_limit(budget.max_pivots.map(|m| pivots.saturating_add(m)));
        self.probe_limit = budget.max_probes;
    }

    /// Lifts all resource limits (same as `set_budget(Budget::UNLIMITED)`).
    pub fn clear_budget(&mut self) {
        self.set_budget(Budget::UNLIMITED);
    }

    /// Opt-in cross-frame learnt retention (see
    /// [`crate::sat::SatSolver::set_carry_learnts`]): [`Solver::pop`]
    /// then keeps learnt clauses whose derivation does not depend on the
    /// popped assertions. Sound, but the solver no longer replays
    /// byte-identically to one that never saw the popped frame — leave
    /// off where exact replay matters.
    pub fn set_carry_learnts(&mut self, on: bool) {
        self.enc.sat.set_carry_learnts(on);
    }

    /// Selects the CDCL search configuration (see
    /// [`crate::sat::SearchConfig`]): initial phase polarity, phase reset
    /// on restart, restart cadence scale and VSIDS decay. Portfolio
    /// callers diversify racing solvers with
    /// [`SearchConfig::diversified`]. Set this before asserting formulas
    /// — `default_phase` applies to variables as they are created.
    pub fn set_search_config(&mut self, config: SearchConfig) {
        self.enc.sat.set_search_config(config);
    }

    /// Checkpoints the assertion stack: formulas asserted and variables
    /// created after `push` are removed again by the matching
    /// [`Solver::pop`], which also restores the SAT heuristics and the
    /// simplex basis to their checkpointed state.
    pub fn push(&mut self) {
        self.enc.push();
        self.frames.push(SolverFrame {
            n_reals: self.n_reals,
            n_bools: self.n_bools,
            simplex: self.simplex.clone(),
        });
    }

    /// Restores the state of the matching [`Solver::push`]. Statistics
    /// counters are kept (they measure effort, not state).
    ///
    /// # Panics
    ///
    /// Panics when no matching `push` exists.
    pub fn pop(&mut self) {
        let f = self.frames.pop().expect("pop without matching push");
        self.n_reals = f.n_reals;
        self.n_bools = f.n_bools;
        // The checkpointed tableau replaces the live one, but the pivot
        // counters measure effort (not state) and the numeric mode and
        // pivot budget are user knobs — all survive the restore.
        let stats = self.simplex.stats();
        let mode = self.simplex.numeric_mode();
        let pivot_limit = self.simplex.pivot_limit();
        self.simplex = f.simplex;
        self.simplex.set_stats(stats);
        self.simplex.set_numeric_mode(mode);
        self.simplex.set_pivot_limit(pivot_limit);
        self.enc.pop();
    }

    /// Decides the asserted conjunction. Returns a model when satisfiable.
    pub fn check(&mut self) -> Option<Model> {
        self.check_under(&[])
    }

    /// Decides the asserted conjunction under `assumptions` (SAT-level
    /// literals, typically guards created by [`Solver::maximize`])
    /// without asserting them.
    ///
    /// The CDCL core consults the simplex *during* the search (DPLL(T)
    /// with early theory propagation) rather than only on complete
    /// Boolean assignments: at decision checkpoints the partial bound
    /// set is validated — an infeasible subset becomes an in-place
    /// conflict instead of a solve-from-scratch blocking clause — and
    /// bound literals implied by the asserted interval of their linear
    /// form are pushed into the Boolean trail through binary lemma
    /// clauses. All lemmas are theory-valid and persist for later calls
    /// (as reducible learnts — the clause-DB GC may age them out).
    ///
    /// # Panics
    ///
    /// Panics when the solve halts early — an active [`Budget`] runs
    /// out, or rational arithmetic overflows. Budget-aware callers use
    /// [`Solver::check_full`] instead.
    pub fn check_under(&mut self, assumptions: &[Lit]) -> Option<Model> {
        match self.check_full(assumptions) {
            CheckOutcome::Sat(m) => Some(m),
            CheckOutcome::Unsat => None,
            CheckOutcome::Halted(cause) => halted_panic(cause),
        }
    }

    /// [`Solver::check_under`] with halts reified instead of panicking:
    /// budget exhaustion and rational overflow come back as
    /// [`CheckOutcome::Halted`], leaving the solver usable (the CDCL
    /// core backtracks to level zero; an overflow-poisoned tableau needs
    /// the enclosing [`Solver::pop`] to restore a clean checkpoint).
    pub fn check_full(&mut self, assumptions: &[Lit]) -> CheckOutcome {
        let mut theory = SimplexTheory {
            atoms: &self.enc.atoms,
            simplex: &mut self.simplex,
            conflicts: 0,
            model: None,
            halt: None,
            bounds: Vec::new(),
            atom_cols: Vec::new(),
            last_assigned: usize::MAX,
        };
        let verdict = self.enc.sat.solve_with(assumptions, Some(&mut theory));
        self.theory_conflicts += theory.conflicts;
        let halt = theory.halt;
        let assignment = match verdict {
            SatVerdict::Sat(assignment) => assignment,
            SatVerdict::Unsat => return CheckOutcome::Unsat,
            // Unknown without a theory halt means the CDCL conflict
            // budget ran out.
            SatVerdict::Unknown => {
                return CheckOutcome::Halted(halt.unwrap_or(HaltCause::Conflicts))
            }
        };
        let reals = theory
            .model
            .take()
            .expect("complete theory consult stores the model")
            .into_iter()
            .filter(|(v, _)| *v < self.n_reals)
            .collect();
        let mut bools = HashMap::new();
        for b in 0..self.n_bools {
            if let Some(v) = self.enc.bool_value(BoolVar(b), &assignment) {
                bools.insert(b, v);
            }
        }
        CheckOutcome::Sat(Model { bools, reals })
    }

    /// Maximizes a linear objective subject to the asserted formulas, by
    /// iterative strengthening (binary search on the objective bound) —
    /// the OMT loop SHATTER runs per attack window (paper Eq. 17).
    ///
    /// `lo`/`hi` bracket the objective; `tol` is the termination gap.
    /// Returns the best model found and its objective value, or `None`
    /// when the constraints are unsatisfiable.
    ///
    /// The whole search runs inside this one solver: each probe asserts
    /// `guard → objective ≥ mid` for a fresh guard literal and solves
    /// under the assumption `guard`, so clauses learned by one probe
    /// carry to the next and the simplex warm-starts from the previous
    /// feasible basis. Successful probes assert their guard permanently
    /// (monotone strengthening); failed guards are permanently disabled.
    ///
    /// # Bracket contract
    ///
    /// The bracket is a *search range*, not a constraint. When the first
    /// feasible model's objective already reaches or exceeds `hi` — a
    /// stale caller-supplied bracket — the search space is empty and the
    /// base model is returned as-is; the returned objective may then
    /// exceed `hi`. (Formerly this case silently clamped `hi` upward,
    /// hiding the collapsed bracket; same result, now a documented
    /// contract with a regression test.)
    ///
    /// On return the strengthening assertions remain: callers that need
    /// the original assertion set afterwards should bracket the call in
    /// [`Solver::push`]/[`Solver::pop`].
    ///
    /// # Panics
    ///
    /// Panics when the search halts before any model is proven feasible
    /// (active [`Budget`] exhausted on the base check, or rational
    /// overflow). Budget-aware callers use
    /// [`Solver::maximize_budgeted`], which degrades to the best
    /// verified model instead.
    pub fn maximize(
        &mut self,
        objective: &LinExpr,
        lo: f64,
        hi: f64,
        tol: f64,
    ) -> Option<(f64, Model)> {
        match self.maximize_budgeted(objective, lo, hi, tol) {
            OmtOutcome::Optimal { value, model } | OmtOutcome::Degraded { value, model, .. } => {
                Some((value, model))
            }
            OmtOutcome::Unsat => None,
            OmtOutcome::Halted(cause) => halted_panic(cause),
        }
    }

    /// [`Solver::maximize`] with the anytime contract made explicit.
    /// Runs the same guarded binary search, but counts each probe
    /// against [`Budget::max_probes`] and reifies halts: when any limit
    /// runs out (or the tableau overflows) mid-search, the best model
    /// *proven feasible so far* is returned as [`OmtOutcome::Degraded`]
    /// with the cause, rather than the search hanging or panicking. A
    /// halt before the first feasible model is [`OmtOutcome::Halted`].
    pub fn maximize_budgeted(
        &mut self,
        objective: &LinExpr,
        lo: f64,
        hi: f64,
        tol: f64,
    ) -> OmtOutcome {
        let base_model = match self.check_full(&[]) {
            CheckOutcome::Sat(m) => m,
            CheckOutcome::Unsat => return OmtOutcome::Unsat,
            CheckOutcome::Halted(cause) => return OmtOutcome::Halted(cause),
        };
        let mut best_val = base_model.eval(objective).to_f64();
        let mut best_model = base_model;
        let mut lo = best_val.max(lo);
        let mut hi = hi;
        let mut probes = 0u64;
        let mut halt = None;
        while hi - lo > tol {
            if let Some(limit) = self.probe_limit {
                if probes >= limit {
                    halt = Some(HaltCause::Probes);
                    break;
                }
            }
            probes += 1;
            let mid = lo + (hi - lo) / 2.0;
            // Fresh guard: guard -> objective >= mid.
            let guard = Lit::pos(self.enc.sat.new_var());
            let bound_lit = self.enc.encode(&objective.ge(Rat::from_f64_approx(mid)));
            self.enc.sat.add_clause(&[guard.negated(), bound_lit]);
            match self.check_full(&[guard]) {
                CheckOutcome::Sat(m) => {
                    let v = m.eval(objective).to_f64();
                    if v > best_val {
                        best_val = v;
                        best_model = m;
                    }
                    lo = best_val.max(mid);
                    // Keep the proven bound: later probes only go higher.
                    self.enc.sat.add_clause(&[guard]);
                }
                CheckOutcome::Unsat => {
                    hi = mid;
                    self.enc.sat.add_clause(&[guard.negated()]);
                }
                CheckOutcome::Halted(cause) => {
                    // Anytime degradation: the probe's answer is unknown,
                    // so disable its guard and stop with best-so-far.
                    self.enc.sat.add_clause(&[guard.negated()]);
                    halt = Some(cause);
                    break;
                }
            }
        }
        match halt {
            Some(cause) => OmtOutcome::Degraded {
                value: best_val,
                model: best_model,
                cause,
            },
            None => OmtOutcome::Optimal {
                value: best_val,
                model: best_model,
            },
        }
    }
}

/// The DPLL(T) bridge handed to [`crate::sat::SatSolver::solve_with`]:
/// owns the warm-started simplex for the duration of one check and maps
/// between atom SAT variables and simplex bounds.
struct SimplexTheory<'a> {
    /// Registered atoms `(sat_var, atom)` in registration order.
    atoms: &'a [(usize, Atom)],
    simplex: &'a mut Simplex,
    /// Theory conflicts found during this check.
    conflicts: u64,
    /// Feasible rational assignment from the last *complete* consult.
    model: Option<HashMap<usize, Rat>>,
    /// Why the simplex halted this check, when it did ([`TheoryResult::Halt`]).
    halt: Option<HaltCause>,
    /// Reused bound buffer (no per-consult allocation).
    bounds: Vec<BoundConstraint>,
    /// Per atom (same order as `atoms`): its simplex column and its
    /// positive-polarity upper bound, resolved lazily once per check —
    /// the implied-bound scan then reads the column bounds directly
    /// instead of re-building (clone + sort + hash) the linear form on
    /// every consult.
    atom_cols: Vec<(usize, DeltaRat)>,
    /// Assigned-atom count at the previous consult: a cheap partial
    /// fingerprint — if unchanged, the bound set is almost surely the
    /// same and the (sound-to-skip) partial re-check is elided.
    last_assigned: usize,
}

impl Theory for SimplexTheory<'_> {
    fn consult(&mut self, view: TheoryView<'_>, complete: bool) -> TheoryResult {
        // Fingerprint first, allocation after: skipped consults must not
        // pay the bound-construction cost (atom_to_bound clones each
        // atom's linear form).
        let assigned = self
            .atoms
            .iter()
            .filter(|&&(sat_var, _)| view.value(sat_var).is_some())
            .count();
        if !complete && assigned == self.last_assigned {
            return TheoryResult::Ok;
        }
        self.last_assigned = assigned;
        self.bounds.clear();
        for &(sat_var, ref atom) in self.atoms {
            if let Some(positive) = view.value(sat_var) {
                self.bounds.push(atom_to_bound(atom, positive, sat_var));
            }
        }
        let conflict_ids = if complete {
            match self.simplex.try_check_assignment(&self.bounds) {
                Ok(SimplexResult::Feasible(reals)) => {
                    self.model = Some(reals);
                    return TheoryResult::Ok;
                }
                Ok(SimplexResult::Infeasible(ids)) => Some(ids),
                Err(halt) => {
                    self.halt = Some(halt.into());
                    return TheoryResult::Halt;
                }
            }
        } else {
            match self.simplex.try_assert_and_solve(&self.bounds) {
                Ok(ids) => ids,
                Err(halt) => {
                    self.halt = Some(halt.into());
                    return TheoryResult::Halt;
                }
            }
        };
        if let Some(ids) = conflict_ids {
            self.conflicts += 1;
            let asserted: Vec<Lit> = ids
                .iter()
                .map(|&v| view.asserted_lit(v).expect("conflict ids are asserted"))
                .collect();
            return TheoryResult::Conflict(asserted);
        }
        // Feasible partial set: propagate bound literals already decided
        // by the asserted interval of their linear form. Any feasible
        // point keeps each form within [l, u], so an unassigned atom
        // `expr ≤ c` is true whenever u ≤ c (premise: the atom asserting
        // u) and false whenever l > c (premise: the atom asserting l).
        let mut implied: Vec<(Lit, Vec<Lit>)> = Vec::new();
        for (i, &(sat_var, _)) in self.atoms.iter().enumerate() {
            if view.value(sat_var).is_some() {
                continue;
            }
            while self.atom_cols.len() <= i {
                let (next_var, ref next_atom) = self.atoms[self.atom_cols.len()];
                let b = atom_to_bound(next_atom, true, next_var);
                let col = self.simplex.column_index(&b.expr);
                self.atom_cols.push((col, b.bound));
            }
            let (col, atom_bound) = self.atom_cols[i];
            let (lower, upper) = self.simplex.asserted_bounds_at(col);
            if let Some((u, uid)) = upper {
                if u <= atom_bound {
                    let premise = view.asserted_lit(uid).expect("bound ids are asserted");
                    implied.push((Lit::pos(sat_var), vec![premise]));
                    continue;
                }
            }
            if let Some((l, lid)) = lower {
                if l > atom_bound {
                    let premise = view.asserted_lit(lid).expect("bound ids are asserted");
                    implied.push((Lit::neg(sat_var), vec![premise]));
                }
            }
        }
        if implied.is_empty() {
            TheoryResult::Ok
        } else {
            TheoryResult::Implied(implied)
        }
    }
}

/// Converts an asserted theory literal into a simplex bound.
///
/// Atom is `expr ⋈ 0` with `⋈ ∈ {≤, <}` (equalities were split by the
/// encoder). With constant `k` folded out: `Σcx ⋈ −k`.
fn atom_to_bound(atom: &Atom, positive: bool, id: usize) -> BoundConstraint {
    let (expr, k) = strip_expr(&atom.expr);
    let rhs = -k;
    let (kind, bound) = match (atom.op, positive) {
        // Σcx <= rhs
        (Rel::Le, true) => (BoundKind::Upper, DeltaRat::standard(rhs)),
        // ¬(Σcx <= rhs)  =>  Σcx > rhs
        (Rel::Le, false) => (BoundKind::Lower, DeltaRat::plus_eps(rhs)),
        // Σcx < rhs
        (Rel::Lt, true) => (BoundKind::Upper, DeltaRat::minus_eps(rhs)),
        // ¬(Σcx < rhs)  =>  Σcx >= rhs
        (Rel::Lt, false) => (BoundKind::Lower, DeltaRat::standard(rhs)),
        (Rel::Eq, _) => unreachable!("Eq atoms split during encoding"),
    };
    BoundConstraint {
        expr,
        bound,
        kind,
        id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;

    #[test]
    fn pure_boolean_sat() {
        let mut s = Solver::new();
        let a = s.new_bool();
        let b = s.new_bool();
        s.assert_formula(Formula::or([Formula::Bool(a), Formula::Bool(b)]));
        s.assert_formula(Formula::not(Formula::Bool(a)));
        let m = s.check().expect("sat");
        assert!(!m.bool(a));
        assert!(m.bool(b));
    }

    #[test]
    fn linear_system_solved() {
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(LinExpr::var(x).plus(&LinExpr::var(y)).eq(10));
        s.assert_formula(LinExpr::var(x).minus(&LinExpr::var(y)).eq(4));
        let m = s.check().expect("sat");
        assert!((m.real(x) - 7.0).abs() < 1e-9);
        assert!((m.real(y) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn theory_conflict_forces_boolean_backtrack() {
        let mut s = Solver::new();
        let x = s.new_real();
        let p = s.new_bool();
        // p -> x >= 5;  !p -> x >= 7;  x <= 6. Must pick p.
        s.assert_formula(Formula::implies(Formula::Bool(p), LinExpr::var(x).ge(5)));
        s.assert_formula(Formula::implies(
            Formula::not(Formula::Bool(p)),
            LinExpr::var(x).ge(7),
        ));
        s.assert_formula(LinExpr::var(x).le(6));
        let m = s.check().expect("sat");
        assert!(m.bool(p));
        assert!(m.real(x) >= 5.0 - 1e-9 && m.real(x) <= 6.0 + 1e-9);
    }

    #[test]
    fn unsat_conjunction() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).ge(5));
        s.assert_formula(LinExpr::var(x).le(4));
        assert!(s.check().is_none());
    }

    #[test]
    fn disjunction_of_regions() {
        let mut s = Solver::new();
        let x = s.new_real();
        // (x <= -10 or x >= 10) and -5 <= x <= 15  => x in [10, 15].
        s.assert_formula(Formula::or([
            LinExpr::var(x).le(-10),
            LinExpr::var(x).ge(10),
        ]));
        s.assert_formula(LinExpr::var(x).ge(-5));
        s.assert_formula(LinExpr::var(x).le(15));
        let m = s.check().expect("sat");
        assert!(m.real(x) >= 10.0 - 1e-9 && m.real(x) <= 15.0 + 1e-9);
    }

    #[test]
    fn strict_inequalities() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).gt(0));
        s.assert_formula(LinExpr::var(x).lt(1));
        let m = s.check().expect("sat");
        let v = m.real(x);
        assert!(v > 0.0 && v < 1.0, "witness {v}");
    }

    #[test]
    fn strict_contradiction_unsat() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).gt(3));
        s.assert_formula(LinExpr::var(x).le(3));
        assert!(s.check().is_none());
    }

    #[test]
    fn negated_equality_splits() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(Formula::not(LinExpr::var(x).eq(5)));
        s.assert_formula(LinExpr::var(x).ge(5));
        s.assert_formula(LinExpr::var(x).le(6));
        let m = s.check().expect("sat");
        assert!(m.real(x) > 5.0 && m.real(x) <= 6.0 + 1e-9);
    }

    #[test]
    fn maximize_simple_lp() {
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(LinExpr::var(x).le(4));
        s.assert_formula(LinExpr::var(y).le(3));
        s.assert_formula(LinExpr::var(x).ge(0));
        s.assert_formula(LinExpr::var(y).ge(0));
        let obj = LinExpr::var(x).plus(&LinExpr::var(y));
        let (v, m) = s.maximize(&obj, 0.0, 100.0, 1e-3).expect("sat");
        assert!((v - 7.0).abs() < 0.01, "max {v}");
        assert!((m.real(x) - 4.0).abs() < 0.01);
    }

    #[test]
    fn maximize_with_boolean_choice() {
        // Choosing p gives reward 10, else 3; p forces cost x >= 8 <= budget.
        let mut s = Solver::new();
        let p = s.new_bool();
        let x = s.new_real();
        let reward = s.new_real();
        s.assert_formula(Formula::implies(
            Formula::Bool(p),
            Formula::and([LinExpr::var(reward).eq(10), LinExpr::var(x).ge(8)]),
        ));
        s.assert_formula(Formula::implies(
            Formula::not(Formula::Bool(p)),
            Formula::and([LinExpr::var(reward).eq(3), LinExpr::var(x).eq(0)]),
        ));
        s.assert_formula(LinExpr::var(x).le(9));
        let (v, m) = s
            .maximize(&LinExpr::var(reward), 0.0, 20.0, 1e-3)
            .expect("sat");
        assert!((v - 10.0).abs() < 0.01);
        assert!(m.bool(p));
    }

    #[test]
    fn maximize_infeasible_returns_none() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).ge(1));
        s.assert_formula(LinExpr::var(x).le(0));
        assert!(s.maximize(&LinExpr::var(x), 0.0, 10.0, 1e-3).is_none());
    }

    #[test]
    fn maximize_stale_hi_returns_base_model() {
        // The caller's bracket tops out below the feasible region: the
        // contract is to return the base model untouched — the reported
        // objective exceeds `hi` rather than being silently clamped.
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).ge(10));
        s.assert_formula(LinExpr::var(x).le(12));
        let (v, m) = s.maximize(&LinExpr::var(x), 0.0, 5.0, 1e-3).expect("sat");
        assert!(v >= 10.0 - 1e-9, "base objective {v}");
        assert!(v > 5.0, "objective must be allowed to exceed the stale hi");
        assert!(m.real(x) >= 10.0 - 1e-9);
    }

    #[test]
    fn conflict_budget_halts_and_lifting_it_resumes() {
        let mut s = Solver::new();
        let a = s.new_bool();
        let b = s.new_bool();
        s.assert_formula(Formula::or([Formula::Bool(a), Formula::Bool(b)]));
        s.set_budget(Budget {
            max_conflicts: Some(0),
            ..Budget::UNLIMITED
        });
        assert!(matches!(
            s.check_full(&[]),
            CheckOutcome::Halted(HaltCause::Conflicts)
        ));
        s.clear_budget();
        assert!(matches!(s.check_full(&[]), CheckOutcome::Sat(_)));
    }

    #[test]
    fn pivot_budget_halts_check_full_without_poisoning() {
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(LinExpr::var(x).plus(&LinExpr::var(y)).eq(10));
        s.assert_formula(LinExpr::var(x).minus(&LinExpr::var(y)).eq(4));
        s.set_budget(Budget {
            max_pivots: Some(0),
            ..Budget::UNLIMITED
        });
        assert!(matches!(
            s.check_full(&[]),
            CheckOutcome::Halted(HaltCause::Pivots)
        ));
        // A pivot-budget halt lands between pivots: no poison, and the
        // same solver finishes once the budget is lifted.
        s.clear_budget();
        let m = match s.check_full(&[]) {
            CheckOutcome::Sat(m) => m,
            other => panic!("expected sat after lifting the budget, got {other:?}"),
        };
        assert!((m.real(x) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn probe_budget_degrades_to_base_model() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).ge(0));
        s.assert_formula(LinExpr::var(x).le(4));
        s.set_budget(Budget {
            max_probes: Some(0),
            ..Budget::UNLIMITED
        });
        match s.maximize_budgeted(&LinExpr::var(x), 0.0, 100.0, 1e-3) {
            OmtOutcome::Degraded { value, cause, .. } => {
                assert_eq!(cause, HaltCause::Probes);
                assert!(value <= 4.0 + 1e-9, "best-so-far stays feasible: {value}");
            }
            other => panic!("expected degraded best-so-far, got {other:?}"),
        }
        s.clear_budget();
        let (v, _) = s.maximize(&LinExpr::var(x), 0.0, 100.0, 1e-3).expect("sat");
        assert!((v - 4.0).abs() < 0.01);
    }

    #[test]
    fn maximize_twice_under_push_pop() {
        // After a push/maximize/pop round-trip the solver must answer a
        // different objective exactly like a fresh solver would.
        let mut s = Solver::new();
        let x = s.new_real();
        let y = s.new_real();
        s.assert_formula(LinExpr::var(x).ge(0));
        s.assert_formula(LinExpr::var(x).le(4));
        s.assert_formula(LinExpr::var(y).ge(0));
        s.assert_formula(LinExpr::var(y).le(3));

        s.push();
        let (vx, _) = s.maximize(&LinExpr::var(x), 0.0, 100.0, 1e-3).expect("sat");
        s.pop();
        s.push();
        let (vy, _) = s.maximize(&LinExpr::var(y), 0.0, 100.0, 1e-3).expect("sat");
        s.pop();
        assert!((vx - 4.0).abs() < 0.01, "x max {vx}");
        assert!((vy - 3.0).abs() < 0.01, "y max {vy}");
        // And the un-popped assertions still admit both corners.
        let m = s.check().expect("sat");
        assert!(m.real(x) <= 4.0 + 1e-9 && m.real(y) <= 3.0 + 1e-9);
    }

    #[test]
    fn push_pop_restores_assertions_and_variables() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).ge(0));
        s.assert_formula(LinExpr::var(x).le(10));
        s.push();
        let y = s.new_real();
        let p = s.new_bool();
        s.assert_formula(Formula::implies(Formula::Bool(p), LinExpr::var(y).ge(100)));
        s.assert_formula(Formula::Bool(p));
        s.assert_formula(LinExpr::var(x).ge(7));
        let m = s.check().expect("sat under pushed assertions");
        assert!(m.real(x) >= 7.0 - 1e-9);
        assert!(m.real(y) >= 100.0 - 1e-9);
        s.pop();
        // Pushed lower bound is gone; x can sit at 0 again.
        s.assert_formula(LinExpr::var(x).le(3));
        let m = s.check().expect("sat after pop");
        assert!(m.real(x) <= 3.0 + 1e-9);
    }

    #[test]
    fn check_under_guard_literals() {
        let mut s = Solver::new();
        let x = s.new_real();
        s.assert_formula(LinExpr::var(x).ge(0));
        s.assert_formula(LinExpr::var(x).le(10));
        let g = Lit::pos(s.enc.sat.new_var());
        let bound = s.enc.encode(&LinExpr::var(x).ge(8));
        s.enc.sat.add_clause(&[g.negated(), bound]);
        let m = s.check_under(&[g]).expect("sat under guard");
        assert!(m.real(x) >= 8.0 - 1e-9);
        // Without the guard the bound is not enforced.
        let m = s.check().expect("sat");
        assert!(m.real(x) >= -1e-9);
    }

    #[test]
    fn numeric_modes_agree_and_mode_survives_pop() {
        // The float fast path must reproduce the exact path bit for bit:
        // same models, same pivot counts; and the mode knob plus the
        // effort counters survive a push/pop round-trip.
        let mut fast = Solver::new();
        let mut exact = Solver::new();
        exact.set_numeric_mode(NumericMode::ExactOnly);
        for s in [&mut fast, &mut exact] {
            let x = s.new_real();
            let y = s.new_real();
            s.assert_formula(LinExpr::var(x).plus(&LinExpr::var(y)).ge(5));
            s.assert_formula(LinExpr::var(x).le(3));
            s.assert_formula(LinExpr::var(y).le(3));
        }
        let mf = fast.check().expect("sat");
        let me = exact.check().expect("sat");
        assert_eq!(mf.real_exact(RealVar(0)), me.real_exact(RealVar(0)));
        assert_eq!(mf.real_exact(RealVar(1)), me.real_exact(RealVar(1)));
        let (sf, se) = (fast.simplex_stats(), exact.simplex_stats());
        assert_eq!(sf.pivots, se.pivots, "modes must pivot identically");
        assert!(sf.pivots > 0, "instance must exercise pivoting");
        assert_eq!(sf.float_pivots, sf.pivots);
        assert_eq!(se.float_pivots, 0);

        let before = exact.simplex_stats();
        exact.push();
        let x = RealVar(0);
        exact.assert_formula(LinExpr::var(x).ge(1));
        exact.check().expect("sat");
        exact.pop();
        assert_eq!(exact.numeric_mode(), NumericMode::ExactOnly);
        assert!(exact.simplex_stats().pivots >= before.pivots);
    }

    #[test]
    fn hull_membership_style_constraints() {
        // Triangle (0,0)-(4,0)-(2,4) as half-planes over (a, b); point
        // inside must exist with b maximized at 4.
        let mut s = Solver::new();
        let a = s.new_real();
        let b = s.new_real();
        // y >= 0: -b <= 0
        s.assert_formula(LinExpr::var(b).ge(0));
        // right edge: from (4,0) to (2,4): 2x + y <= 8
        s.assert_formula(LinExpr::term(2, a).plus(&LinExpr::var(b)).le(8));
        // left edge: from (2,4) to (0,0): -2x + y <= 0
        s.assert_formula(LinExpr::term(-2, a).plus(&LinExpr::var(b)).le(0));
        let (v, m) = s.maximize(&LinExpr::var(b), 0.0, 10.0, 1e-4).expect("sat");
        assert!((v - 4.0).abs() < 0.01, "max y = {v}");
        assert!((m.real(a) - 2.0).abs() < 0.1);
    }
}
