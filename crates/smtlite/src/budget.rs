//! Deterministic resource budgets for the solver stack.
//!
//! Budgets are counted in *deterministic* effort units — CDCL conflicts,
//! simplex pivots, OMT probes — never wall time, so a budgeted run makes
//! the same decisions on every machine and thread count: either a window
//! finishes identically everywhere, or it degrades identically
//! everywhere.

/// Per-solve resource limits (`None` = unlimited). Thread one through
/// [`crate::Solver::set_budget`]; exhaustion surfaces as
/// [`crate::HaltCause`] through [`crate::Solver::check_full`] /
/// [`crate::Solver::maximize_budgeted`] instead of a hang or a panic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// CDCL conflicts allowed across the solve (all probes combined).
    pub max_conflicts: Option<u64>,
    /// Simplex pivots allowed across the solve.
    pub max_pivots: Option<u64>,
    /// OMT binary-search probes allowed per `maximize_budgeted` call.
    pub max_probes: Option<u64>,
}

impl Budget {
    /// No limits — identical to running without a budget.
    pub const UNLIMITED: Budget = Budget {
        max_conflicts: None,
        max_pivots: None,
        max_probes: None,
    };

    /// Whether every limit is unset.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::UNLIMITED
    }

    /// This budget with every set limit multiplied by `factor`
    /// (saturating) — the deterministic escalation step of the fleet
    /// retry policy: attempt `k` re-runs a failed house under
    /// `escalated(2^k)`, so retries make identical decisions on every
    /// machine and thread count.
    pub fn escalated(self, factor: u64) -> Budget {
        let scale = |limit: Option<u64>| limit.map(|n| n.saturating_mul(factor));
        Budget {
            max_conflicts: scale(self.max_conflicts),
            max_pivots: scale(self.max_pivots),
            max_probes: scale(self.max_probes),
        }
    }

    /// Canonical `conflicts=N,pivots=N,probes=N` spec string of this
    /// budget (set limits only; empty for [`Budget::UNLIMITED`]).
    /// Round-trips through [`Budget::parse`]; fleet manifests and
    /// per-window memo keys embed it.
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.max_conflicts {
            parts.push(format!("conflicts={n}"));
        }
        if let Some(n) = self.max_pivots {
            parts.push(format!("pivots={n}"));
        }
        if let Some(n) = self.max_probes {
            parts.push(format!("probes={n}"));
        }
        parts.join(",")
    }

    /// Parses a `conflicts=N,pivots=N,probes=N` spec (any subset, any
    /// order), the syntax of the `SHATTER_BUDGET` environment variable
    /// and `repro --budget`.
    pub fn parse(spec: &str) -> Result<Budget, String> {
        let mut budget = Budget::UNLIMITED;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad budget term {part:?} (expected key=N)"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad budget value in {part:?}"))?;
            match key.trim() {
                "conflicts" => budget.max_conflicts = Some(n),
                "pivots" => budget.max_pivots = Some(n),
                "probes" => budget.max_probes = Some(n),
                other => {
                    return Err(format!(
                        "unknown budget key {other:?} (expected conflicts|pivots|probes)"
                    ))
                }
            }
        }
        Ok(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_partial_specs() {
        assert_eq!(
            Budget::parse("conflicts=100,pivots=2000,probes=8").unwrap(),
            Budget {
                max_conflicts: Some(100),
                max_pivots: Some(2000),
                max_probes: Some(8),
            }
        );
        assert_eq!(
            Budget::parse(" pivots=5 ").unwrap(),
            Budget {
                max_pivots: Some(5),
                ..Budget::UNLIMITED
            }
        );
        assert!(Budget::parse("").unwrap().is_unlimited());
    }

    #[test]
    fn escalates_set_limits_only() {
        let b = Budget {
            max_conflicts: Some(100),
            max_pivots: None,
            max_probes: Some(8),
        };
        assert_eq!(
            b.escalated(4),
            Budget {
                max_conflicts: Some(400),
                max_pivots: None,
                max_probes: Some(32),
            }
        );
        assert_eq!(
            Budget {
                max_conflicts: Some(u64::MAX / 2),
                ..Budget::UNLIMITED
            }
            .escalated(8)
            .max_conflicts,
            Some(u64::MAX),
            "escalation saturates instead of wrapping"
        );
        assert!(Budget::UNLIMITED.escalated(16).is_unlimited());
    }

    #[test]
    fn spec_string_roundtrips() {
        let b = Budget {
            max_conflicts: Some(100),
            max_pivots: Some(2000),
            max_probes: None,
        };
        assert_eq!(b.to_spec(), "conflicts=100,pivots=2000");
        assert_eq!(Budget::parse(&b.to_spec()).unwrap(), b);
        assert_eq!(Budget::UNLIMITED.to_spec(), "");
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Budget::parse("conflicts").is_err());
        assert!(Budget::parse("conflicts=x").is_err());
        assert!(Budget::parse("walltime=9").is_err());
    }
}
