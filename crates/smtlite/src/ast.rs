//! Formula AST for QF_LRA with Boolean structure.
//!
//! Atoms are linear constraints `Σ cᵢ·xᵢ + k ⋈ 0` with `⋈ ∈ {≤, <, =}`;
//! `≥`, `>` are expressed by negating the expression. Formulas combine
//! atoms and Boolean variables with the usual connectives.

use std::collections::BTreeMap;
use std::fmt;

use crate::Rat;

/// A real (rational-valued) theory variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RealVar(pub(crate) usize);

impl RealVar {
    /// The variable's index in its solver.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoolVar(pub(crate) usize);

impl BoolVar {
    /// The variable's index in its solver.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression `Σ cᵢ·xᵢ + k` over real variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinExpr {
    /// Coefficients per variable (zero coefficients removed).
    pub(crate) coeffs: BTreeMap<RealVar, Rat>,
    /// Constant term `k`.
    pub(crate) constant: Rat,
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn constant(k: impl Into<Rat>) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: k.into(),
        }
    }

    /// The expression `x`.
    pub fn var(x: RealVar) -> LinExpr {
        LinExpr::term(Rat::ONE, x)
    }

    /// The expression `c·x`.
    pub fn term(c: impl Into<Rat>, x: RealVar) -> LinExpr {
        let c = c.into();
        let mut coeffs = BTreeMap::new();
        if !c.is_zero() {
            coeffs.insert(x, c);
        }
        LinExpr {
            coeffs,
            constant: Rat::ZERO,
        }
    }

    /// Builds `Σ cᵢ·xᵢ + k` from parts.
    pub fn sum(terms: impl IntoIterator<Item = (Rat, RealVar)>, k: impl Into<Rat>) -> LinExpr {
        let mut e = LinExpr::constant(k);
        for (c, x) in terms {
            e.add_term(c, x);
        }
        e
    }

    /// Adds `c·x` in place.
    pub fn add_term(&mut self, c: impl Into<Rat>, x: RealVar) {
        let c = c.into();
        if c.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(x).or_insert(Rat::ZERO);
        *entry = *entry + c;
        if entry.is_zero() {
            self.coeffs.remove(&x);
        }
    }

    /// Returns `self + other`.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant = out.constant + other.constant;
        for (&x, &c) in &other.coeffs {
            out.add_term(c, x);
        }
        out
    }

    /// Returns `self - other`.
    pub fn minus(&self, other: &LinExpr) -> LinExpr {
        self.plus(&other.scaled(Rat::int(-1)))
    }

    /// Returns `c · self`.
    pub fn scaled(&self, c: impl Into<Rat>) -> LinExpr {
        let c = c.into();
        if c.is_zero() {
            return LinExpr::constant(Rat::ZERO);
        }
        LinExpr {
            coeffs: self.coeffs.iter().map(|(&x, &v)| (x, v * c)).collect(),
            constant: self.constant * c,
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, k: impl Into<Rat>) {
        self.constant = self.constant + k.into();
    }

    /// Evaluates under an assignment (missing variables default to 0).
    pub fn eval(&self, assignment: &dyn Fn(RealVar) -> Rat) -> Rat {
        let mut v = self.constant;
        for (&x, &c) in &self.coeffs {
            v = v + c * assignment(x);
        }
        v
    }

    /// True when the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The atom `self ≤ k`.
    pub fn le(&self, k: impl Into<Rat>) -> Formula {
        Formula::Atom(Atom {
            expr: self.minus(&LinExpr::constant(k)),
            op: Rel::Le,
        })
    }

    /// The atom `self < k`.
    pub fn lt(&self, k: impl Into<Rat>) -> Formula {
        Formula::Atom(Atom {
            expr: self.minus(&LinExpr::constant(k)),
            op: Rel::Lt,
        })
    }

    /// The atom `self ≥ k`.
    pub fn ge(&self, k: impl Into<Rat>) -> Formula {
        // e >= k  <=>  -(e - k) <= 0
        Formula::Atom(Atom {
            expr: self.minus(&LinExpr::constant(k)).scaled(Rat::int(-1)),
            op: Rel::Le,
        })
    }

    /// The atom `self > k`.
    pub fn gt(&self, k: impl Into<Rat>) -> Formula {
        Formula::Atom(Atom {
            expr: self.minus(&LinExpr::constant(k)).scaled(Rat::int(-1)),
            op: Rel::Lt,
        })
    }

    /// The atom `self = k`.
    pub fn eq(&self, k: impl Into<Rat>) -> Formula {
        Formula::Atom(Atom {
            expr: self.minus(&LinExpr::constant(k)),
            op: Rel::Eq,
        })
    }

    /// The atom `self ≤ other`.
    pub fn le_expr(&self, other: &LinExpr) -> Formula {
        self.minus(other).le(0)
    }

    /// The atom `self = other`.
    pub fn eq_expr(&self, other: &LinExpr) -> Formula {
        self.minus(other).eq(0)
    }
}

/// Relational operator of an atom (`expr ⋈ 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `expr ≤ 0`.
    Le,
    /// `expr < 0`.
    Lt,
    /// `expr = 0`.
    Eq,
}

/// A linear-arithmetic atom `expr ⋈ 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Relation against zero.
    pub op: Rel,
}

/// A quantifier-free formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A linear-arithmetic atom.
    Atom(Atom),
    /// A propositional variable.
    Bool(BoolVar),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction helper that flattens trivial cases.
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<Formula> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::True,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::And(v),
        }
    }

    /// Disjunction helper that flattens trivial cases.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<Formula> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::False,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::Or(v),
        }
    }

    /// Implication helper.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Bi-implication helper.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// "Exactly one of the given Booleans" — the paper's Eq. 18 pattern
    /// (each occupant is in exactly one zone per slot). Pairwise encoding.
    pub fn exactly_one(vars: &[BoolVar]) -> Formula {
        let mut parts = vec![Formula::or(vars.iter().map(|&v| Formula::Bool(v)))];
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                parts.push(Formula::or([
                    Formula::not(Formula::Bool(vars[i])),
                    Formula::not(Formula::Bool(vars[j])),
                ]));
            }
        }
        Formula::and(parts)
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Eq => "=",
        })
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (x, c) in &self.coeffs {
            if first {
                write!(f, "{c}*x{}", x.0)?;
                first = false;
            } else {
                write!(f, " + {c}*x{}", x.0)?;
            }
        }
        if !self.constant.is_zero() || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_algebra() {
        let x = RealVar(0);
        let y = RealVar(1);
        let e = LinExpr::term(2, x).plus(&LinExpr::term(3, y));
        let f = e.minus(&LinExpr::term(2, x));
        assert_eq!(f.coeffs.len(), 1);
        assert_eq!(f.coeffs[&y], Rat::int(3));
    }

    #[test]
    fn zero_coefficients_removed() {
        let x = RealVar(0);
        let mut e = LinExpr::term(5, x);
        e.add_term(-5, x);
        assert!(e.is_constant());
    }

    #[test]
    fn eval_expression() {
        let x = RealVar(0);
        let y = RealVar(1);
        let e = LinExpr::sum([(Rat::int(2), x), (Rat::int(-1), y)], 7);
        let v = e.eval(&|v| if v == x { Rat::int(3) } else { Rat::int(4) });
        assert_eq!(v, Rat::int(9));
    }

    #[test]
    fn ge_is_negated_le() {
        let x = RealVar(0);
        let f = LinExpr::var(x).ge(5);
        let Formula::Atom(a) = f else { panic!() };
        // -(x - 5) <= 0  =>  -x + 5 <= 0
        assert_eq!(a.op, Rel::Le);
        assert_eq!(a.expr.coeffs[&x], Rat::int(-1));
        assert_eq!(a.expr.constant, Rat::int(5));
    }

    #[test]
    fn connective_helpers_flatten() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        let b = BoolVar(0);
        assert_eq!(Formula::and([Formula::Bool(b)]), Formula::Bool(b));
    }

    #[test]
    fn exactly_one_structure() {
        let vars = [BoolVar(0), BoolVar(1), BoolVar(2)];
        let f = Formula::exactly_one(&vars);
        let Formula::And(parts) = f else { panic!() };
        // 1 at-least-one clause + 3 pairwise exclusions.
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn display_smoke() {
        let x = RealVar(0);
        let e = LinExpr::term(2, x);
        assert_eq!(e.to_string(), "2*x0");
        assert_eq!(LinExpr::constant(3).to_string(), "3");
    }
}
