//! A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! learning, VSIDS-style variable activity, phase saving and Luby
//! restarts. MiniSat-shaped, sized for the few-thousand-variable encodings
//! the SHATTER attack windows produce.
//!
//! The solver is *incremental* along three axes the DPLL(T)/OMT drivers
//! exploit:
//!
//! - clauses may be added between [`SatSolver::solve`] calls, and learned
//!   clauses are retained across calls (the OMT binary search re-solves
//!   the same skeleton ~20 times per window);
//! - [`SatSolver::solve_under`] decides the clause set under a list of
//!   *assumption* literals without asserting them — the failed subset is
//!   recoverable via [`SatSolver::last_conflict_core`];
//! - [`SatSolver::push`]/[`SatSolver::pop`] checkpoint the assertion
//!   trail: `pop` removes every clause and variable added since the
//!   matching `push` and restores the heuristic state (activity, phase,
//!   bump increment) byte-for-byte, so a popped solver replays exactly
//!   like a fresh one — the property the scheduler's window memoization
//!   and the incremental-vs-fresh equivalence tests rely on.

/// A literal: variable index with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of a variable.
    pub fn pos(var: usize) -> Lit {
        Lit((var as u32) << 1)
    }

    /// Negative literal of a variable.
    pub fn neg(var: usize) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// The underlying variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Verdict of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatVerdict {
    /// Satisfiable, with a full assignment per variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

/// Cumulative search-effort counters, never reset by [`SatSolver::pop`]
/// (they measure work done, not state held). Surfaced through
/// `SmtStats`/`WindowMemo` into the scalability exhibits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions taken (assumption enqueues excluded).
    pub decisions: u64,
    /// Literals dequeued by unit propagation.
    pub propagations: u64,
    /// Learned clauses stored (unit learnts assert directly and are not
    /// counted; stored learnts stay until the enclosing `pop`).
    pub learned: u64,
    /// Luby restarts performed.
    pub restarts: u64,
}

impl SatStats {
    /// Component-wise difference against an earlier snapshot.
    #[must_use]
    pub fn since(self, earlier: SatStats) -> SatStats {
        SatStats {
            decisions: self.decisions - earlier.decisions,
            propagations: self.propagations - earlier.propagations,
            learned: self.learned - earlier.learned,
            restarts: self.restarts - earlier.restarts,
        }
    }
}

const UNASSIGNED: i8 = -1;

/// Checkpoint recorded by [`SatSolver::push`]; `pop` restores it exactly.
#[derive(Debug, Clone)]
struct SatFrame {
    n_vars: usize,
    /// Full snapshot of the clause database, not just its length:
    /// propagation permutes literal order *inside* surviving clauses
    /// (watch maintenance swaps positions 0/1/k), and the replay
    /// contract needs that order — it drives watch traversal — restored
    /// too.
    clauses: Vec<Vec<Lit>>,
    trail_len: usize,
    activity: Vec<f64>,
    phase: Vec<bool>,
    var_inc: f64,
    unsat: bool,
}

/// The CDCL solver. Clauses may be added between [`SatSolver::solve`]
/// calls (incremental use by the DPLL(T) loop).
#[derive(Debug, Default, Clone)]
pub struct SatSolver {
    n_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// watches[lit] = clause indices watching `lit`.
    watches: Vec<Vec<usize>>,
    /// Per-variable value: 0 false, 1 true, -1 unassigned.
    assign: Vec<i8>,
    /// Saved phase for decision polarity.
    phase: Vec<bool>,
    /// Assignment trail (in order).
    trail: Vec<Lit>,
    /// Trail indices at each decision level.
    trail_lim: Vec<usize>,
    /// Propagation queue head.
    qhead: usize,
    /// Reason clause per variable (implied assignments).
    reason: Vec<Option<usize>>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// VSIDS activity.
    activity: Vec<f64>,
    var_inc: f64,
    /// Top-level (level-0) conflict detected while adding clauses.
    unsat: bool,
    /// Stamped "seen" buffer reused by conflict analysis (no per-conflict
    /// allocation on the OMT hot path).
    seen: Vec<u32>,
    seen_stamp: u32,
    /// Failed assumption subset of the last `solve_under` Unsat verdict.
    last_core: Vec<Lit>,
    /// Assertion-trail checkpoints.
    frames: Vec<SatFrame>,
    /// Cumulative effort counters.
    pub stats: SatStats,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Number of variables allocated.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let v = self.n_vars;
        self.n_vars += 1;
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn value(&self, l: Lit) -> i8 {
        match self.assign[l.var()] {
            UNASSIGNED => UNASSIGNED,
            v => {
                if l.is_neg() {
                    1 - v
                } else {
                    v
                }
            }
        }
    }

    /// Adds a clause. Returns `false` when the solver becomes trivially
    /// unsatisfiable at the top level.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        // Backtrack to level 0 so incremental additions are sound.
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        // Tautology?
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; satisfied clause is a no-op.
        c.retain(|&l| self.value(l) != 0);
        if c.iter().any(|&l| self.value(l) == 1) {
            return true;
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(c[0], None) {
                    self.unsat = true;
                    return false;
                }
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[c[0].index()].push(idx);
                self.watches[c[1].index()].push(idx);
                self.clauses.push(c);
                true
            }
        }
    }

    /// Checkpoints the clause set, variable count, level-0 trail and the
    /// heuristic state. The matching [`SatSolver::pop`] restores all of
    /// it exactly — including VSIDS activity and saved phases — so search
    /// behaviour after a pop is indistinguishable from a solver that
    /// never saw the popped clauses.
    pub fn push(&mut self) {
        self.backtrack_to(0);
        self.frames.push(SatFrame {
            n_vars: self.n_vars,
            clauses: self.clauses.clone(),
            trail_len: self.trail.len(),
            activity: self.activity.clone(),
            phase: self.phase.clone(),
            var_inc: self.var_inc,
            unsat: self.unsat,
        });
    }

    /// Undoes everything since the matching [`SatSolver::push`]: clauses
    /// (original *and* learned — learnts may resolve on popped clauses,
    /// so keeping any would be unsound), variables, level-0 facts, and
    /// the heuristic state. Effort counters in [`SatSolver::stats`] are
    /// deliberately kept.
    ///
    /// # Panics
    ///
    /// Panics when no matching `push` exists.
    pub fn pop(&mut self) {
        let f = self.frames.pop().expect("pop without matching push");
        self.backtrack_to(0);
        while self.trail.len() > f.trail_len {
            let l = self.trail.pop().expect("non-empty");
            self.assign[l.var()] = UNASSIGNED;
            self.reason[l.var()] = None;
        }
        self.qhead = self.trail.len();
        self.clauses = f.clauses;
        self.n_vars = f.n_vars;
        self.assign.truncate(f.n_vars);
        self.reason.truncate(f.n_vars);
        self.level.truncate(f.n_vars);
        self.seen.truncate(f.n_vars);
        self.activity = f.activity;
        self.phase = f.phase;
        self.var_inc = f.var_inc;
        self.unsat = f.unsat;
        // Rebuild the watch lists over the surviving clauses: stored
        // clauses always watch positions 0 and 1.
        self.watches.truncate(2 * f.n_vars);
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c[0].index()].push(i);
            self.watches[c[1].index()].push(i);
        }
    }

    /// Current push depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.value(l) {
            0 => false,
            1 => true,
            _ => {
                let v = l.var();
                self.assign[v] = i8::from(!l.is_neg());
                self.phase[v] = !l.is_neg();
                self.reason[v] = reason;
                self.level[v] = self.trail_lim.len() as u32;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negated();
            let mut i = 0;
            // Take the watch list to sidestep aliasing; rebuild as we go.
            let mut watch = std::mem::take(&mut self.watches[false_lit.index()]);
            while i < watch.len() {
                let ci = watch[i];
                // Ensure false_lit is at position 1.
                let w0 = self.clauses[ci][0];
                if w0 == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                let first = self.clauses[ci][0];
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                if self.value(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != 0 {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch.index()].push(ci);
                        watch.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: restore remaining watches.
                    self.watches[false_lit.index()].extend_from_slice(&watch);
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.index()] = watch;
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn next_stamp(&mut self) -> u32 {
        self.seen_stamp = self.seen_stamp.wrapping_add(1);
        if self.seen_stamp == 0 {
            // Wrapped: invalidate all stale stamps once.
            for s in &mut self.seen {
                *s = 0;
            }
            self.seen_stamp = 1;
        }
        self.seen_stamp
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level).
    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let stamp = self.next_stamp();
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut asserting: Option<Lit> = None;

        loop {
            for idx in 0..self.clauses[conflict].len() {
                let q = self.clauses[conflict][idx];
                // Skip the literal we just resolved on (it is asserted by
                // this reason clause).
                if asserting == Some(q) {
                    continue;
                }
                let v = q.var();
                if self.seen[v] != stamp && self.level[v] > 0 {
                    self.seen[v] = stamp;
                    self.bump(v);
                    if self.level[v] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var()] == stamp {
                    break;
                }
            }
            let p = self.trail[trail_idx];
            self.seen[p.var()] = 0;
            counter -= 1;
            if counter == 0 {
                asserting = Some(p);
                break;
            }
            conflict = self.reason[p.var()].expect("non-decision has a reason");
            asserting = Some(p);
        }
        let uip = asserting.expect("loop sets asserting").negated();
        learnt.insert(0, uip);

        let back_level = learnt[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        // Put a max-level literal at position 1 for watching.
        if learnt.len() > 1 {
            let mi = 1 + learnt[1..]
                .iter()
                .position(|l| self.level[l.var()] == back_level)
                .expect("max exists");
            learnt.swap(1, mi);
        }
        (learnt, back_level)
    }

    /// Computes the subset of assumptions responsible for forcing
    /// `failed` false, by walking reasons down the trail. Result (the
    /// failing assumption literals, `failed` included) lands in
    /// `last_core`.
    fn analyze_final(&mut self, failed: Lit) {
        self.last_core.clear();
        self.last_core.push(failed);
        if self.trail_lim.is_empty() {
            // ¬failed is a level-0 fact: the core is `failed` alone.
            return;
        }
        let stamp = self.next_stamp();
        self.seen[failed.var()] = stamp;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if self.seen[v] != stamp {
                continue;
            }
            match self.reason[v] {
                // A decision above level 0 during the assumption phase is
                // an assumption — including `¬failed` itself when the
                // opposite polarity was assumed earlier.
                None => {
                    self.last_core.push(l);
                }
                Some(cr) => {
                    for idx in 0..self.clauses[cr].len() {
                        let q = self.clauses[cr][idx];
                        if q.var() != v && self.level[q.var()] > 0 {
                            self.seen[q.var()] = stamp;
                        }
                    }
                }
            }
            self.seen[v] = 0;
        }
    }

    /// The failed assumption subset of the most recent
    /// [`SatSolver::solve_under`] `Unsat` verdict (empty when the clause
    /// set itself is unsatisfiable with no assumptions involved).
    pub fn last_conflict_core(&self) -> &[Lit] {
        &self.last_core
    }

    fn backtrack_to(&mut self, level: usize) {
        while self.trail_lim.len() > level {
            let lim = self.trail_lim.pop().expect("non-empty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty");
                self.assign[l.var()] = UNASSIGNED;
                self.reason[l.var()] = None;
            }
        }
        // Trail below `level` is untouched and fully propagated.
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.n_vars {
            if self.assign[v] == UNASSIGNED
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| {
            if self.phase[v] {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        })
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatVerdict {
        self.solve_under(&[])
    }

    /// Solves the current clause set under `assumptions`, without
    /// asserting them: the solver branches on each assumption first (in
    /// order) and reports `Unsat` as soon as one is falsified —
    /// [`SatSolver::last_conflict_core`] then names the failing subset.
    /// Learned clauses never resolve on an assumption as a premise-free
    /// fact (assumptions enter as decisions), so everything learned under
    /// one assumption set remains valid for the next — the mechanism the
    /// OMT binary search uses to share work across probes.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SatVerdict {
        self.last_core.clear();
        if self.unsat {
            return SatVerdict::Unsat;
        }
        self.backtrack_to(0);
        self.qhead = 0;
        if self.propagate().is_some() {
            self.unsat = true;
            return SatVerdict::Unsat;
        }

        let mut conflicts_until_restart = luby(1) * 100;
        let mut restarts = 1u32;
        loop {
            if let Some(conflict) = self.propagate() {
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatVerdict::Unsat;
                }
                let (learnt, back) = self.analyze(conflict);
                self.backtrack_to(back as usize);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    if !self.enqueue(asserting, None) {
                        self.unsat = true;
                        return SatVerdict::Unsat;
                    }
                } else {
                    let ci = self.clauses.len();
                    self.watches[learnt[0].index()].push(ci);
                    self.watches[learnt[1].index()].push(ci);
                    self.clauses.push(learnt);
                    self.stats.learned += 1;
                    let ok = self.enqueue(asserting, Some(ci));
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                self.decay();
                if conflicts_until_restart == 0 {
                    continue;
                }
                conflicts_until_restart -= 1;
                if conflicts_until_restart == 0 {
                    restarts += 1;
                    self.stats.restarts += 1;
                    conflicts_until_restart = luby(restarts) * 100;
                    self.backtrack_to(0);
                }
            } else if self.trail_lim.len() < assumptions.len() {
                // Take the next assumption as a pseudo-decision.
                let a = assumptions[self.trail_lim.len()];
                match self.value(a) {
                    1 => {
                        // Already implied: open an empty level so the
                        // level index keeps matching the assumption index.
                        self.trail_lim.push(self.trail.len());
                    }
                    0 => {
                        self.analyze_final(a);
                        self.backtrack_to(0);
                        return SatVerdict::Unsat;
                    }
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, None);
                        debug_assert!(ok, "assumption was unassigned");
                    }
                }
            } else {
                match self.decide() {
                    None => {
                        let model = self.assign.iter().map(|&v| v == 1).collect();
                        return SatVerdict::Sat(model);
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

/// Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed.
fn luby(i: u32) -> u64 {
    let mut i = i as u64;
    loop {
        if (i + 1).is_power_of_two() {
            return i.div_ceil(2);
        }
        let k = 63 - (i + 1).leading_zeros() as u64; // floor(log2(i+1))
        i -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&s| {
                let v = (s.unsigned_abs() - 1) as usize;
                if s > 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect()
    }

    fn solver_with(n: usize, clauses: &[&[i32]]) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let SatVerdict::Sat(m) = s.solve() else {
            panic!("expected sat")
        };
        assert!(m[0] || m[1]);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = SatSolver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn chain_of_implications() {
        // x1 & (x1->x2) & ... & (x9->x10) & -x10 is unsat.
        let mut cl: Vec<Vec<i32>> = vec![vec![1]];
        for i in 1..10 {
            cl.push(vec![-i, i + 1]);
        }
        cl.push(vec![-10]);
        let refs: Vec<&[i32]> = cl.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(10, &refs);
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j; vars 1..=6.
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-var(a, j), -var(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 3],
            vec![2, 3],
            vec![-2, -3, 4],
            vec![-4, 1],
        ];
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(4, &refs);
        let SatVerdict::Sat(m) = s.solve() else {
            panic!("expected sat")
        };
        for c in &clauses {
            assert!(
                c.iter().any(|&l| {
                    let v = (l.unsigned_abs() - 1) as usize;
                    (l > 0) == m[v]
                }),
                "clause {c:?} falsified"
            );
        }
    }

    #[test]
    fn incremental_blocking_clauses_enumerate_models() {
        // 3 free variables -> 8 models; block each as found.
        let mut s = solver_with(3, &[&[1, 2, 3, -1]]); // tautology, no constraint
        let mut count = 0;
        while let SatVerdict::Sat(m) = s.solve() {
            count += 1;
            assert!(count <= 8, "more models than possible");
            let block: Vec<Lit> = (0..3)
                .map(|v| if m[v] { Lit::neg(v) } else { Lit::pos(v) })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn exhaustive_cross_check_small_random() {
        // Brute-force comparison on random 3-SAT instances with 8 vars.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let n = 8usize;
            let m = rng.random_range(10..40);
            let clauses: Vec<Vec<i32>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.random_range(1..=n as i32);
                            if rng.random::<bool>() {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let brute_sat = (0..(1u32 << n)).any(|mask| {
                clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        let v = l.unsigned_abs() - 1;
                        ((mask >> v) & 1 == 1) == (l > 0)
                    })
                })
            });
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(n, &refs);
            let verdict = s.solve();
            match (brute_sat, verdict) {
                (true, SatVerdict::Sat(_)) | (false, SatVerdict::Unsat) => {}
                (b, v) => panic!("disagreement: brute {b}, solver {v:?}\n{clauses:?}"),
            }
        }
    }

    // ----- assumptions ---------------------------------------------------

    #[test]
    fn assumptions_do_not_assert() {
        // (a -> b), assume ¬b: a must be false; afterwards the solver is
        // still free to pick b.
        let mut s = solver_with(2, &[&[-1, 2]]);
        let SatVerdict::Sat(m) = s.solve_under(&lits(&[-2])) else {
            panic!("sat under ¬b")
        };
        assert!(!m[0] && !m[1]);
        let SatVerdict::Sat(m) = s.solve_under(&lits(&[1])) else {
            panic!("sat under a")
        };
        assert!(m[0] && m[1]);
    }

    #[test]
    fn failed_assumptions_reported_with_core() {
        // x1 & (x1 -> x2); assuming ¬x2 is unsat, core must name ¬x2.
        let mut s = solver_with(2, &[&[1], &[-1, 2]]);
        assert_eq!(s.solve_under(&lits(&[-2])), SatVerdict::Unsat);
        assert!(s.last_conflict_core().contains(&Lit::neg(1)));
        // The clause set itself stays satisfiable.
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
        assert!(s.last_conflict_core().is_empty());
    }

    #[test]
    fn conflicting_assumption_pair_names_both_in_core() {
        // No clauses at all: assumptions [a, ¬a] must fail with a core
        // naming both polarities — {¬a} alone would be satisfiable.
        let mut s = solver_with(1, &[]);
        assert_eq!(
            s.solve_under(&[Lit::pos(0), Lit::neg(0)]),
            SatVerdict::Unsat
        );
        let mut core = s.last_conflict_core().to_vec();
        core.sort();
        assert_eq!(core, vec![Lit::pos(0), Lit::neg(0)]);
    }

    #[test]
    fn learned_clauses_survive_between_assumption_calls() {
        // Pigeonhole body + selector s (var 7) guarding nothing: repeated
        // unsat probes under the same assumptions must not grow learning
        // without bound, and verdicts stay stable.
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1), 7]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-var(a, j), -var(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(7, &refs);
        assert_eq!(s.solve_under(&lits(&[-7])), SatVerdict::Unsat);
        let learned_once = s.stats.learned;
        assert_eq!(s.solve_under(&lits(&[-7])), SatVerdict::Unsat);
        // Second identical probe reuses the first probe's learning.
        assert!(s.stats.learned <= learned_once * 2);
        assert!(matches!(s.solve_under(&lits(&[7])), SatVerdict::Sat(_)));
    }

    // ----- push / pop ----------------------------------------------------

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut s = solver_with(2, &[&[1, 2]]);
        s.push();
        s.add_clause(&lits(&[-1]));
        s.add_clause(&lits(&[-2]));
        assert_eq!(s.solve(), SatVerdict::Unsat);
        s.pop();
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
    }

    #[test]
    fn pop_removes_variables_and_level0_facts() {
        let mut s = solver_with(1, &[]);
        s.push();
        let v = s.new_var();
        s.add_clause(&[Lit::pos(v)]);
        s.add_clause(&[Lit::neg(v), Lit::pos(0)]);
        let SatVerdict::Sat(m) = s.solve() else {
            panic!()
        };
        assert!(m[0] && m[v]);
        s.pop();
        assert_eq!(s.n_vars(), 1);
        // Var 0 is free again: both polarities satisfiable.
        assert!(matches!(s.solve_under(&[Lit::neg(0)]), SatVerdict::Sat(_)));
        assert!(matches!(s.solve_under(&[Lit::pos(0)]), SatVerdict::Sat(_)));
    }

    #[test]
    fn pop_replays_identically_to_fresh_solver() {
        // Solve the same instance (a) on a fresh solver, (b) after a
        // push/solve/pop detour: models must match bit for bit.
        let base: &[&[i32]] = &[&[1, 2, -3], &[-1, 3], &[2, 3], &[-2, -3, 4]];
        let extra: &[&[i32]] = &[&[-4], &[3, 4]];
        let instance: &[&[i32]] = &[&[1, -2], &[2, 3, 4], &[-3, -4]];

        let mut fresh = solver_with(4, base);
        let mut detoured = solver_with(4, base);
        detoured.push();
        for c in extra {
            detoured.add_clause(&lits(c));
        }
        let _ = detoured.solve();
        detoured.pop();

        fresh.push();
        detoured.push();
        for c in instance {
            fresh.add_clause(&lits(c));
            detoured.add_clause(&lits(c));
        }
        assert_eq!(fresh.solve(), detoured.solve());
    }

    #[test]
    fn pop_restores_clause_internal_literal_order() {
        // Propagation permutes literal order inside surviving clauses
        // while hunting for new watches; pop must undo that too, or the
        // post-pop watch traversal diverges from a fresh solver's.
        let mut s = solver_with(4, &[&[1, 2, 3], &[1, 4], &[2, -3, 4]]);
        let before = s.clauses.clone();
        s.push();
        s.add_clause(&lits(&[-1]));
        s.add_clause(&lits(&[-2]));
        let _ = s.solve();
        // Precondition: the detour really permuted a pre-push clause
        // (otherwise this test is vacuous).
        assert_ne!(s.clauses[..before.len()], before[..], "detour was a no-op");
        s.pop();
        assert_eq!(s.clauses, before);
    }

    #[test]
    fn pop_restores_unsat_flag() {
        let mut s = solver_with(1, &[]);
        s.push();
        s.add_clause(&lits(&[1]));
        s.add_clause(&lits(&[-1]));
        assert_eq!(s.solve(), SatVerdict::Unsat);
        s.pop();
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
    }

    #[test]
    fn stats_count_effort() {
        let mut s = solver_with(6, &[]);
        let var = |i: usize, j: usize| i * 2 + j;
        for i in 0..3 {
            s.add_clause(&[Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(var(a, j)), Lit::neg(var(b, j))]);
                }
            }
        }
        assert_eq!(s.solve(), SatVerdict::Unsat);
        assert!(s.stats.propagations > 0);
        assert!(s.stats.decisions > 0 || s.stats.learned > 0);
    }
}
