//! A CDCL(T) SAT core: two-watched-literal propagation, first-UIP
//! conflict learning, a VSIDS order heap, phase saving, Luby restarts,
//! a reducible learnt-clause database with activity/LBD garbage
//! collection, and a theory hook for DPLL(T) integration. MiniSat-shaped,
//! sized for the few-thousand-variable encodings the SHATTER attack
//! windows produce.
//!
//! The solver is *incremental* along four axes the DPLL(T)/OMT drivers
//! exploit:
//!
//! - clauses may be added between [`SatSolver::solve`] calls, and learned
//!   clauses are retained across calls (the OMT binary search re-solves
//!   the same skeleton ~20 times per window);
//! - [`SatSolver::solve_under`] decides the clause set under a list of
//!   *assumption* literals without asserting them — the failed subset is
//!   recoverable via [`SatSolver::last_conflict_core`];
//! - [`SatSolver::solve_with`] additionally consults a [`Theory`] during
//!   the search: theory conflicts are analyzed *in place* like Boolean
//!   conflicts (no solve-from-scratch per blocking clause), and
//!   theory-implied literals enter the trail through attached lemma
//!   clauses;
//! - [`SatSolver::push`]/[`SatSolver::pop`] checkpoint the assertion
//!   trail: `pop` removes every clause and variable added since the
//!   matching `push` and restores the heuristic state (activity, phase,
//!   bump increments, clause activities, GC budget) byte-for-byte, so a
//!   popped solver replays exactly like a fresh one — the property the
//!   scheduler's window memoization and the incremental-vs-fresh
//!   equivalence tests rely on. The opt-in
//!   [`SatSolver::set_carry_learnts`] mode relaxes exact restoration to
//!   retain learnt clauses whose derivations do not depend on the popped
//!   frame (see [`SatSolver::pop`]).

/// A literal: variable index with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of a variable.
    pub fn pos(var: usize) -> Lit {
        Lit((var as u32) << 1)
    }

    /// Negative literal of a variable.
    pub fn neg(var: usize) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// The underlying variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Verdict of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatVerdict {
    /// Satisfiable, with a full assignment per variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Undecided: the deterministic conflict budget ran out, or the
    /// theory reported [`TheoryResult::Halt`]. The solver backtracked to
    /// level 0 and remains usable — everything learned so far persists,
    /// so a re-solve with a larger budget resumes the search.
    Unknown,
}

/// View of the current (partial) assignment handed to a [`Theory`]
/// consultation.
pub struct TheoryView<'a> {
    assign: &'a [i8],
}

impl TheoryView<'_> {
    /// Value of a variable: `None` while unassigned.
    pub fn value(&self, var: usize) -> Option<bool> {
        match self.assign.get(var) {
            Some(&UNASSIGNED) | None => None,
            Some(&v) => Some(v == 1),
        }
    }

    /// The literal of `var` that is currently true, if assigned.
    pub fn asserted_lit(&self, var: usize) -> Option<Lit> {
        self.value(var)
            .map(|v| if v { Lit::pos(var) } else { Lit::neg(var) })
    }
}

/// Outcome of a [`Theory`] consultation.
#[derive(Debug, Clone)]
pub enum TheoryResult {
    /// The asserted literal set is theory-consistent and nothing new is
    /// implied.
    Ok,
    /// Theory-implied literals: each entry is `(implied, premises)` where
    /// every premise is currently true, `implied` is unassigned, and the
    /// lemma `¬p₁ ∨ … ∨ ¬pₖ ∨ implied` is theory-valid. The solver
    /// attaches each lemma as a (reducible) clause and enqueues the
    /// implied literal with it as reason. `premises` must be non-empty
    /// (a clause cannot watch a single literal); a premise-free theory
    /// fact should be reported as a `Conflict` of the fact's negation
    /// once that literal is actually asserted, or simply left to the
    /// complete-assignment check. Empty-premise entries are skipped.
    Implied(Vec<(Lit, Vec<Lit>)>),
    /// The asserted literals named here (all currently true) are jointly
    /// theory-infeasible; the solver learns their negation as a blocking
    /// lemma and resolves the conflict in place.
    Conflict(Vec<Lit>),
    /// The theory solver cannot continue (its own resource budget ran
    /// out, or its state degraded — e.g. a poisoned tableau). The search
    /// stops immediately with [`SatVerdict::Unknown`].
    Halt,
}

/// A theory solver consulted during CDCL search (DPLL(T)).
///
/// `consult` is called at decision checkpoints with the partial
/// assignment (`complete == false`) and, mandatorily, whenever the
/// Boolean assignment is total (`complete == true`) before `Sat` is
/// returned. A complete consultation must not return
/// [`TheoryResult::Implied`] (there is nothing left to imply).
pub trait Theory {
    /// Consults the theory against the current assignment.
    fn consult(&mut self, view: TheoryView<'_>, complete: bool) -> TheoryResult;
}

/// Cumulative search-effort counters, never reset by [`SatSolver::pop`]
/// (they measure work done, not state held). Surfaced through
/// `SmtStats`/`WindowMemo` into the scalability exhibits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions taken (assumption enqueues excluded).
    pub decisions: u64,
    /// Literals dequeued by unit propagation.
    pub propagations: u64,
    /// Conflicts handled (Boolean and theory alike).
    pub conflicts: u64,
    /// Learned clauses stored (unit learnts assert directly and are not
    /// counted; stored learnts stay until GC'd or popped).
    pub learned: u64,
    /// Luby restarts performed.
    pub restarts: u64,
    /// Learnt clauses removed by clause-database reduction.
    pub gc_clauses: u64,
    /// Learnt clauses retained through a `pop` in carry mode.
    pub carried: u64,
    /// Literals removed from first-UIP clauses by recursive
    /// self-subsumption before install (learnt-clause minimization).
    pub minimized: u64,
    /// Literals implied through the binary implication layer (adjacency
    /// lists over two-literal clauses, propagated before long clauses).
    pub bin_props: u64,
    /// Saved-phase resets performed on restart
    /// ([`SearchConfig::phase_reset_on_restart`]; zero on the default
    /// configuration).
    pub phase_resets: u64,
}

impl SatStats {
    /// Component-wise difference against an earlier snapshot.
    #[must_use]
    pub fn since(self, earlier: SatStats) -> SatStats {
        SatStats {
            decisions: self.decisions - earlier.decisions,
            propagations: self.propagations - earlier.propagations,
            conflicts: self.conflicts - earlier.conflicts,
            learned: self.learned - earlier.learned,
            restarts: self.restarts - earlier.restarts,
            gc_clauses: self.gc_clauses - earlier.gc_clauses,
            carried: self.carried - earlier.carried,
            minimized: self.minimized - earlier.minimized,
            bin_props: self.bin_props - earlier.bin_props,
            phase_resets: self.phase_resets - earlier.phase_resets,
        }
    }
}

/// Search-heuristic configuration knobs diversifying otherwise-identical
/// solvers for portfolio racing. Every knob is deterministic (no
/// randomness, no wall time): a fixed configuration always produces the
/// same search, so racing configs and taking the winner by a
/// deterministic tie-break keeps results byte-identical regardless of
/// wall-clock interleaving. [`SearchConfig::default`] is the historical
/// behaviour; set a config *before* allocating variables (the initial
/// phase applies at variable creation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Initial (and reset) saved phase of fresh variables.
    pub default_phase: bool,
    /// Reset every saved phase to `default_phase` on restart, trading
    /// phase memory for diversification (counted in
    /// [`SatStats::phase_resets`]).
    pub phase_reset_on_restart: bool,
    /// Conflicts per Luby unit: the r-th restart fires after
    /// `luby(r) * restart_scale` conflicts.
    pub restart_scale: u64,
    /// VSIDS bump growth divisor (`var_inc /= var_decay` per conflict);
    /// closer to 1.0 keeps old activity relevant longer.
    pub var_decay: f64,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            default_phase: false,
            phase_reset_on_restart: false,
            restart_scale: 100,
            var_decay: 0.95,
        }
    }
}

impl SearchConfig {
    /// The `index`-th diversified portfolio member: 0 is the default
    /// configuration, 1 inverts the initial phase, 2 resets phases on a
    /// faster restart cadence, 3 decays VSIDS slower on a slower cadence.
    pub fn diversified(index: usize) -> SearchConfig {
        match index % 4 {
            1 => SearchConfig {
                default_phase: true,
                ..SearchConfig::default()
            },
            2 => SearchConfig {
                phase_reset_on_restart: true,
                restart_scale: 50,
                ..SearchConfig::default()
            },
            3 => SearchConfig {
                var_decay: 0.99,
                restart_scale: 150,
                ..SearchConfig::default()
            },
            _ => SearchConfig::default(),
        }
    }
}

const UNASSIGNED: i8 = -1;

/// Partial-assignment theory consultations run before a decision once
/// this many decisions accumulated since the last consult.
const THEORY_CONSULT_INTERVAL: u64 = 4;

/// Initial learnt-clause budget before the first database reduction.
const GC_INITIAL_BUDGET: usize = 250;

/// Geometric growth of the learnt budget after each reduction (per mille).
const GC_BUDGET_GROWTH_PERMILLE: usize = 1100;

/// Header of one clause stored in the flat [`ClauseDb`] arena: everything
/// about the clause except its literals, which live at
/// `data[start..start + len]` of the owning database.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClauseHdr {
    /// Offset of the first literal in the shared literal arena.
    start: u32,
    /// Number of literals.
    len: u32,
    /// Monotonic birth stamp: clause indices shift under GC compaction,
    /// so "was this clause added after the push?" is judged by id
    /// against the frame's watermark, never by vector position.
    id: u64,
    /// Reducible lemma (CDCL learnt or theory blocking/implication
    /// clause) vs permanent problem clause.
    learnt: bool,
    /// Push depth this clause's derivation depends on: the frame depth at
    /// which it was added (problem clauses), the maximum depth of the
    /// clauses resolved to learn it (CDCL learnts), or the maximum
    /// creation depth of its variables (theory lemmas, which are valid
    /// independently of any clause). Carry mode keeps learnts whose depth
    /// survives the pop.
    depth: u32,
    /// Bump-on-use activity driving reduction order.
    activity: f64,
    /// Literal-block distance (distinct decision levels) at learn time.
    lbd: u32,
}

/// Arena-backed clause database: all literals live contiguously in one
/// shared `Vec<Lit>` with per-clause [`ClauseHdr`] offsets, instead of
/// one heap `Vec` per clause. Storing a clause extends the arena;
/// snapshotting the whole database (every [`SatSolver::push`]) is two
/// flat memcpys; dropping or restoring it never walks clauses. The
/// garbage collector rebuilds both vectors compactly, so dead literals
/// do not accumulate.
#[derive(Debug, Clone, Default, PartialEq)]
struct ClauseDb {
    data: Vec<Lit>,
    heads: Vec<ClauseHdr>,
}

impl ClauseDb {
    fn len(&self) -> usize {
        self.heads.len()
    }

    /// Appends a fresh clause, returning nothing — the caller already
    /// knows its index is `len() - 1`.
    fn push(&mut self, lits: &[Lit], id: u64, learnt: bool, depth: u32, lbd: u32) {
        let start = self.data.len() as u32;
        self.data.extend_from_slice(lits);
        self.heads.push(ClauseHdr {
            start,
            len: lits.len() as u32,
            id,
            learnt,
            depth,
            activity: 0.0,
            lbd,
        });
    }

    /// Appends a clause carrying an existing header (id, activity, LBD,
    /// depth all preserved) — used by carry-mode `pop` and GC compaction.
    fn push_carried(&mut self, lits: &[Lit], hdr: ClauseHdr) {
        let start = self.data.len() as u32;
        self.data.extend_from_slice(lits);
        self.heads.push(ClauseHdr {
            start,
            len: lits.len() as u32,
            ..hdr
        });
    }

    fn hdr(&self, ci: usize) -> &ClauseHdr {
        &self.heads[ci]
    }

    fn hdr_mut(&mut self, ci: usize) -> &mut ClauseHdr {
        &mut self.heads[ci]
    }

    fn lits(&self, ci: usize) -> &[Lit] {
        let h = &self.heads[ci];
        &self.data[h.start as usize..(h.start + h.len) as usize]
    }

    fn lits_mut(&mut self, ci: usize) -> &mut [Lit] {
        let h = self.heads[ci];
        &mut self.data[h.start as usize..(h.start + h.len) as usize]
    }
}

/// Indexed binary max-heap over variables, ordered by VSIDS activity with
/// deterministic variable-index tie-breaking (lower index wins ties —
/// the same total order the previous O(n) argmax scan implied). The heap
/// may lag the assignment: assigned variables are skipped lazily by
/// [`SatSolver::decide`] and re-inserted when the trail unwinds.
#[derive(Debug, Clone, Default)]
struct OrderHeap {
    heap: Vec<u32>,
    /// Variable -> heap position (`u32::MAX` = absent).
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl OrderHeap {
    /// `a` orders strictly before `b` (higher activity, then lower index).
    #[inline]
    fn better(act: &[f64], a: u32, b: u32) -> bool {
        let (aa, ab) = (act[a as usize], act[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn contains(&self, v: usize) -> bool {
        self.pos.get(v).is_some_and(|&p| p != ABSENT)
    }

    fn grow_to(&mut self, n_vars: usize) {
        if self.pos.len() < n_vars {
            self.pos.resize(n_vars, ABSENT);
        }
    }

    fn sift_up(&mut self, act: &[f64], mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if !Self::better(act, v, self.heap[parent]) {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i] as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn sift_down(&mut self, act: &[f64], mut i: usize) {
        let v = self.heap[i];
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let c = if r < n && Self::better(act, self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            if !Self::better(act, self.heap[c], v) {
                break;
            }
            self.heap[i] = self.heap[c];
            self.pos[self.heap[i] as usize] = i as u32;
            i = c;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    /// Inserts `v` unless already present.
    fn insert(&mut self, act: &[f64], v: usize) {
        self.grow_to(v + 1);
        if self.pos[v] != ABSENT {
            return;
        }
        self.pos[v] = self.heap.len() as u32;
        self.heap.push(v as u32);
        self.sift_up(act, self.pos[v] as usize);
    }

    /// Removes and returns the best variable, or `None` when empty.
    fn pop_max(&mut self, act: &[f64]) -> Option<usize> {
        let best = *self.heap.first()?;
        self.pos[best as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(act, 0);
        }
        Some(best as usize)
    }

    /// Restores order after `v`'s activity increased.
    fn bumped(&mut self, act: &[f64], v: usize) {
        if self.contains(v) {
            let p = self.pos[v] as usize;
            self.sift_up(act, p);
        }
    }

    /// Rebuilds the heap to contain exactly the variables `0..n_vars`.
    /// Any valid heap layout yields the same `pop_max` sequence because
    /// the comparison is a total order, so this is replay-safe. Kept as
    /// the reference implementation the incremental [`OrderHeap::restore`]
    /// is checked against (`order_heap_restore_matches_rebuild`); `pop`
    /// itself now restores incrementally.
    #[cfg(test)]
    fn rebuild(&mut self, act: &[f64], n_vars: usize) {
        self.heap.clear();
        self.pos.clear();
        self.pos.resize(n_vars, ABSENT);
        for v in 0..n_vars {
            self.pos[v] = v as u32;
            self.heap.push(v as u32);
        }
        for i in (0..n_vars / 2).rev() {
            self.sift_down(act, i);
        }
    }

    /// Incrementally restores the heap to cover exactly `0..n_vars` after
    /// a frame pop: drops entries for popped variables, re-admits
    /// variables that were absent (assigned inside the frame), and
    /// repairs the order with one Floyd heapify pass. A full pass over
    /// the *entries* is unavoidable — the pop restores the whole activity
    /// array, re-keying every element at once — but unlike
    /// [`OrderHeap::rebuild`] this reuses the surviving layout instead of
    /// resetting to the identity permutation, so the heapify starts
    /// mostly ordered and the position table is never reallocated.
    /// Replay-safe for the same reason rebuild is: (activity, index) is a
    /// total order, so every valid heap layout yields the same `pop_max`
    /// sequence.
    fn restore(&mut self, act: &[f64], n_vars: usize) {
        self.pos.truncate(n_vars);
        let mut k = 0usize;
        for i in 0..self.heap.len() {
            let v = self.heap[i];
            if (v as usize) < n_vars {
                self.heap[k] = v;
                self.pos[v as usize] = k as u32;
                k += 1;
            }
        }
        self.heap.truncate(k);
        for v in 0..n_vars {
            if self.pos[v] == ABSENT {
                self.pos[v] = self.heap.len() as u32;
                self.heap.push(v as u32);
            }
        }
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(act, i);
        }
    }
}

/// Checkpoint recorded by [`SatSolver::push`]; `pop` restores it exactly
/// (default mode) or up to carried learnts (carry mode).
#[derive(Debug, Clone)]
struct SatFrame {
    n_vars: usize,
    /// Full snapshot of the clause database, not just its length:
    /// propagation permutes literal order *inside* surviving clauses
    /// (watch maintenance swaps positions 0/1/k), the garbage collector
    /// compacts the arena, and clause activities/LBDs evolve; the
    /// replay contract needs all of it restored. Thanks to the flat
    /// [`ClauseDb`] layout this snapshot is two memcpys, not a
    /// clause-by-clause deep clone.
    clauses: ClauseDb,
    trail_len: usize,
    /// Reason indices of the push-time (level-0) trail: a `reduce_db`
    /// inside the frame compacts clause indices, so the reasons of
    /// pre-push facts must be restored alongside the clause vector or
    /// they dangle into the wrong clauses after the pop (the GC's
    /// locked-clause set would then protect the wrong entries).
    reason: Vec<Option<usize>>,
    activity: Vec<f64>,
    phase: Vec<bool>,
    var_inc: f64,
    cla_inc: f64,
    gc_budget: usize,
    /// `next_clause_id` at push time: clauses with an id at or above
    /// this watermark were added inside the frame.
    clause_id_watermark: u64,
    unsat: bool,
}

/// The CDCL solver. Clauses may be added between [`SatSolver::solve`]
/// calls (incremental use by the DPLL(T) loop).
#[derive(Debug, Clone)]
pub struct SatSolver {
    n_vars: usize,
    clauses: ClauseDb,
    /// watches[lit] = clause indices watching `lit` (clauses of length
    /// ≥ 3 only; binary clauses live in `bin_watches`).
    watches: Vec<Vec<usize>>,
    /// Binary implication layer: `bin_watches[lit]` holds `(other, ci)`
    /// for every two-literal clause `{lit, other}` (index `ci` in the
    /// clause database). When `lit` becomes false, `other` is implied
    /// with `ci` as its reason — a direct adjacency lookup with no watch
    /// hunt and no literal swapping. Theory propagation emits
    /// predominantly binary bound-chain lemmas, which is why they get a
    /// dedicated graph; it is propagated exhaustively before the long
    /// clauses of the same trail literal. Derived state: rebuilt (never
    /// snapshotted) on `pop` and GC, exactly like `watches`.
    bin_watches: Vec<Vec<(Lit, usize)>>,
    /// Per-variable value: 0 false, 1 true, -1 unassigned.
    assign: Vec<i8>,
    /// Saved phase for decision polarity.
    phase: Vec<bool>,
    /// Assignment trail (in order).
    trail: Vec<Lit>,
    /// Trail indices at each decision level.
    trail_lim: Vec<usize>,
    /// Propagation queue head.
    qhead: usize,
    /// Reason clause per variable (implied assignments).
    reason: Vec<Option<usize>>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// VSIDS activity.
    activity: Vec<f64>,
    var_inc: f64,
    /// Decision order: activity-keyed max-heap over variables.
    order: OrderHeap,
    /// Clause-activity bump increment (learnt DB reduction order).
    cla_inc: f64,
    /// Live learnt clauses allowed before the next database reduction.
    gc_budget: usize,
    /// Birth stamp handed to the next stored clause.
    next_clause_id: u64,
    /// Live learnt-clause count (gauge).
    n_learnts: usize,
    /// Push depth each variable was created at (carry-mode tagging).
    var_depth: Vec<u32>,
    /// For variables assigned at level 0: the push depth their fact's
    /// derivation depends on (set at enqueue time; read when conflict
    /// analysis resolves a level-0 literal away).
    fact_depth: Vec<u32>,
    /// Retain pop-surviving learnts across `pop` (see [`SatSolver::pop`]).
    carry_learnts: bool,
    /// Top-level (level-0) conflict detected while adding clauses.
    unsat: bool,
    /// Stamped "seen" buffer reused by conflict analysis (no per-conflict
    /// allocation on the OMT hot path).
    seen: Vec<u32>,
    seen_stamp: u32,
    /// Stamped per-conflict memo for learnt-clause minimization:
    /// variables proven redundant under the current analysis stamp.
    min_removable: Vec<u32>,
    /// Variables proven non-redundant under the current stamp.
    min_poison: Vec<u32>,
    /// Reusable DFS stack for `lit_redundant` (cleared per call, so
    /// conflict analysis stays allocation-free after warm-up).
    min_stack: Vec<(Lit, usize, usize)>,
    /// Failed assumption subset of the last `solve_under` Unsat verdict.
    last_core: Vec<Lit>,
    /// Assertion-trail checkpoints.
    frames: Vec<SatFrame>,
    /// Absolute cap on `stats.conflicts` (`None` = unlimited): the
    /// search returns [`SatVerdict::Unknown`] once cumulative conflicts
    /// reach it. Deterministic — conflicts, never wall time.
    conflict_limit: Option<u64>,
    /// Heuristic diversification knobs (portfolio racing).
    config: SearchConfig,
    /// Cumulative effort counters.
    pub stats: SatStats,
}

impl Default for SatSolver {
    /// Same as [`SatSolver::new`]: an empty solver with live heuristic
    /// increments. (A derived `Default` would zero `var_inc`/`cla_inc`
    /// and the GC budget, silently disabling VSIDS and making the
    /// reducer fire on every conflict — the exact misconfiguration the
    /// embedding `Encoder::default()` used to hit.)
    fn default() -> SatSolver {
        SatSolver {
            n_vars: 0,
            clauses: ClauseDb::default(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: Vec::new(),
            level: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            order: OrderHeap::default(),
            cla_inc: 1.0,
            gc_budget: GC_INITIAL_BUDGET,
            next_clause_id: 0,
            n_learnts: 0,
            var_depth: Vec::new(),
            fact_depth: Vec::new(),
            carry_learnts: false,
            unsat: false,
            seen: Vec::new(),
            seen_stamp: 0,
            min_removable: Vec::new(),
            min_poison: Vec::new(),
            min_stack: Vec::new(),
            last_core: Vec::new(),
            frames: Vec::new(),
            conflict_limit: None,
            config: SearchConfig::default(),
            stats: SatStats::default(),
        }
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver::default()
    }

    /// Number of variables allocated.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Live learnt clauses currently stored (gauge; drops on GC and pop).
    pub fn live_learnts(&self) -> usize {
        self.n_learnts
    }

    /// Opt-in cross-frame learnt retention: [`SatSolver::pop`] keeps
    /// learnt clauses whose derivation depth survives the pop instead of
    /// dropping every clause added since the push. Sound (each survivor
    /// is a consequence of surviving clauses or the theory alone) but
    /// *not* replay-exact: a popped solver may search differently from a
    /// fresh one, so callers relying on byte-identical replay must leave
    /// this off (the default).
    pub fn set_carry_learnts(&mut self, on: bool) {
        self.carry_learnts = on;
    }

    /// Lowers the learnt-clause budget that triggers database reduction
    /// (mainly for tests and microbenches that want to exercise GC on
    /// small instances). The budget still grows geometrically after each
    /// reduction.
    pub fn set_gc_budget(&mut self, budget: usize) {
        self.gc_budget = budget.max(1);
    }

    /// Caps cumulative conflicts at `limit` (absolute, against
    /// [`SatSolver::stats`]; `None` lifts the cap). When the cap is hit
    /// mid-search the solver backtracks to level 0 and returns
    /// [`SatVerdict::Unknown`]; learned clauses persist, so re-solving
    /// with a larger cap resumes rather than restarts.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Installs diversification knobs (see [`SearchConfig`]). Call before
    /// allocating variables: `default_phase` applies at variable
    /// creation, and a mid-search swap would break replay determinism.
    pub fn set_search_config(&mut self, config: SearchConfig) {
        debug_assert!(
            config.restart_scale > 0 && config.var_decay > 0.0 && config.var_decay <= 1.0,
            "degenerate search config"
        );
        self.config = config;
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let v = self.n_vars;
        self.n_vars += 1;
        self.assign.push(UNASSIGNED);
        self.phase.push(self.config.default_phase);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(0);
        self.min_removable.push(0);
        self.min_poison.push(0);
        self.var_depth.push(self.frames.len() as u32);
        self.fact_depth.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.order.insert(&self.activity, v);
        v
    }

    fn value(&self, l: Lit) -> i8 {
        lit_value(&self.assign, l)
    }

    /// Adds a clause. Returns `false` when the solver becomes trivially
    /// unsatisfiable at the top level.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        // Backtrack to level 0 so incremental additions are sound.
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        // Tautology?
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; satisfied clause is a no-op.
        c.retain(|&l| self.value(l) != 0);
        if c.iter().any(|&l| self.value(l) == 1) {
            return true;
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(c[0], None) {
                    self.unsat = true;
                    return false;
                }
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                let depth = self.frames.len() as u32;
                self.attach_clause(&c, false, depth, 0);
                true
            }
        }
    }

    /// Stores a clause and returns its index. Length-2 clauses enter the
    /// binary implication graph; longer ones watch positions 0 and 1.
    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, depth: u32, lbd: u32) -> usize {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len();
        if lits.len() == 2 {
            self.bin_watches[lits[0].index()].push((lits[1], idx));
            self.bin_watches[lits[1].index()].push((lits[0], idx));
        } else {
            self.watches[lits[0].index()].push(idx);
            self.watches[lits[1].index()].push(idx);
        }
        if learnt {
            self.n_learnts += 1;
            self.stats.learned += 1;
        }
        let id = self.next_clause_id;
        self.next_clause_id += 1;
        self.clauses.push(lits, id, learnt, depth, lbd);
        idx
    }

    /// Checkpoints the clause set, variable count, level-0 trail and the
    /// heuristic state. The matching [`SatSolver::pop`] restores all of
    /// it exactly — including VSIDS activity, saved phases, clause
    /// activities and the GC budget — so search behaviour after a pop is
    /// indistinguishable from a solver that never saw the popped clauses.
    pub fn push(&mut self) {
        self.backtrack_to(0);
        self.frames.push(SatFrame {
            n_vars: self.n_vars,
            clauses: self.clauses.clone(),
            trail_len: self.trail.len(),
            reason: self.reason.clone(),
            activity: self.activity.clone(),
            phase: self.phase.clone(),
            var_inc: self.var_inc,
            cla_inc: self.cla_inc,
            gc_budget: self.gc_budget,
            clause_id_watermark: self.next_clause_id,
            unsat: self.unsat,
        });
    }

    /// Undoes everything since the matching [`SatSolver::push`]: clauses,
    /// variables, level-0 facts, and the heuristic state. Effort counters
    /// in [`SatSolver::stats`] are deliberately kept.
    ///
    /// In the default mode every clause added since the push — original
    /// *and* learned — is dropped: learnts may resolve on popped clauses,
    /// so keeping an arbitrary one would be unsound, and dropping all of
    /// them makes the pop replay-exact. With
    /// [`SatSolver::set_carry_learnts`] enabled, learnt clauses whose
    /// derivation depth is at most the restored frame depth (i.e. every
    /// clause they were resolved from, or — for theory lemmas — every
    /// variable they mention, already existed at push time) are retained:
    /// they are consequences of the surviving clause set or of the theory
    /// alone, so soundness holds, at the price of replay exactness.
    ///
    /// # Panics
    ///
    /// Panics when no matching `push` exists.
    pub fn pop(&mut self) {
        let f = self.frames.pop().expect("pop without matching push");
        self.backtrack_to(0);
        while self.trail.len() > f.trail_len {
            let l = self.trail.pop().expect("non-empty");
            self.assign[l.var()] = UNASSIGNED;
            self.reason[l.var()] = None;
        }
        self.qhead = self.trail.len();
        let popped = std::mem::replace(&mut self.clauses, f.clauses);
        if self.carry_learnts {
            let depth = self.frames.len() as u32;
            // Judged by birth id, not arena position: an in-frame GC
            // that removed pre-push learnts compacts the database and
            // slides in-frame clauses below the push-time length.
            for ci in 0..popped.len() {
                let h = *popped.hdr(ci);
                if h.id >= f.clause_id_watermark
                    && h.learnt
                    && h.depth <= depth
                    && popped.lits(ci).iter().all(|l| l.var() < f.n_vars)
                {
                    self.stats.carried += 1;
                    self.clauses.push_carried(popped.lits(ci), h);
                }
            }
        }
        self.n_learnts = self.clauses.heads.iter().filter(|h| h.learnt).count();
        self.n_vars = f.n_vars;
        self.assign.truncate(f.n_vars);
        // Restore (not merely truncate) the reasons of the surviving
        // level-0 facts: an in-frame `reduce_db` remapped them to the
        // compacted clause indices, which the restored clause vector
        // just invalidated.
        self.reason = f.reason;
        self.level.truncate(f.n_vars);
        self.seen.truncate(f.n_vars);
        self.min_removable.truncate(f.n_vars);
        self.min_poison.truncate(f.n_vars);
        self.var_depth.truncate(f.n_vars);
        self.fact_depth.truncate(f.n_vars);
        self.activity = f.activity;
        self.phase = f.phase;
        self.var_inc = f.var_inc;
        self.cla_inc = f.cla_inc;
        self.gc_budget = f.gc_budget;
        self.unsat = f.unsat;
        // Rebuild the watch lists over the surviving clauses: binary
        // clauses re-enter the implication graph, longer ones watch
        // positions 0 and 1.
        self.watches.truncate(2 * f.n_vars);
        self.bin_watches.truncate(2 * f.n_vars);
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.bin_watches {
            w.clear();
        }
        for i in 0..self.clauses.len() {
            let l = self.clauses.lits(i);
            if l.len() == 2 {
                self.bin_watches[l[0].index()].push((l[1], i));
                self.bin_watches[l[1].index()].push((l[0], i));
            } else {
                self.watches[l[0].index()].push(i);
                self.watches[l[1].index()].push(i);
            }
        }
        // The order heap follows the restored variable set; the restored
        // activity array re-keys it wholesale, so the incremental restore
        // heapifies in place rather than rebuilding from the identity
        // layout (the total order (activity, index) makes either
        // replay-safe — pinned by `order_heap_restore_matches_rebuild`).
        self.order.restore(&self.activity, f.n_vars);
    }

    /// Current push depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.value(l) {
            0 => false,
            1 => true,
            _ => {
                let v = l.var();
                // Level-0 assignments are *facts*; record the push depth
                // their derivation depends on (conflict analysis folds it
                // into learnts that resolve level-0 literals away, which
                // carry mode needs to judge soundly). A reasoned fact
                // inherits its clause's depth joined with the depths of
                // the facts that made the clause unit; a reasonless fact
                // conservatively takes the current frame depth — callers
                // with a tighter derivation depth overwrite it.
                if self.trail_lim.is_empty() {
                    self.fact_depth[v] = match reason {
                        Some(ci) => {
                            let depth = self.clauses.hdr(ci).depth;
                            self.clauses
                                .lits(ci)
                                .iter()
                                .filter(|q| q.var() != v)
                                .map(|q| self.fact_depth[q.var()])
                                .fold(depth, u32::max)
                        }
                        None => self.frames.len() as u32,
                    };
                }
                self.assign[v] = i8::from(!l.is_neg());
                self.phase[v] = !l.is_neg();
                self.reason[v] = reason;
                self.level[v] = self.trail_lim.len() as u32;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negated();
            // Binary pass first: every two-literal clause with a literal
            // just falsified resolves by adjacency lookup — no watch
            // hunt, no literal swap, no list surgery (the graph is
            // static during propagation, so a conflict needs no restore).
            let mut k = 0;
            while k < self.bin_watches[false_lit.index()].len() {
                let (other, ci) = self.bin_watches[false_lit.index()][k];
                k += 1;
                match lit_value(&self.assign, other) {
                    1 => {}
                    0 => return Some(ci),
                    _ => {
                        self.stats.bin_props += 1;
                        let ok = self.enqueue(other, Some(ci));
                        debug_assert!(ok, "unassigned literal must enqueue");
                    }
                }
            }
            let mut i = 0;
            // Take the watch list to sidestep aliasing; rebuild as we go.
            let mut watch = std::mem::take(&mut self.watches[false_lit.index()]);
            while i < watch.len() {
                let ci = watch[i];
                let lits = self.clauses.lits_mut(ci);
                // Ensure false_lit is at position 1.
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                let first = lits[0];
                debug_assert_eq!(self.clauses.lits(ci)[1], false_lit);
                if self.value(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let lits = self.clauses.lits_mut(ci);
                for k in 2..lits.len() {
                    let cand = lits[k];
                    if lit_value(&self.assign, cand) != 0 {
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[new_watch.index()].push(ci);
                        watch.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: restore remaining watches.
                    self.watches[false_lit.index()].extend_from_slice(&watch);
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.index()] = watch;
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            // Uniform rescale preserves the heap order.
        }
        self.order.bumped(&self.activity, var);
    }

    fn bump_clause(&mut self, ci: usize) {
        if !self.clauses.hdr(ci).learnt {
            return;
        }
        self.clauses.hdr_mut(ci).activity += self.cla_inc;
        if self.clauses.hdr(ci).activity > 1e20 {
            for h in &mut self.clauses.heads {
                h.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= 0.999;
    }

    fn next_stamp(&mut self) -> u32 {
        self.seen_stamp = self.seen_stamp.wrapping_add(1);
        if self.seen_stamp == 0 {
            // Wrapped: invalidate all stale stamps once — including the
            // ccmin memo buffers, or an eons-old removable/poison entry
            // would match the reused stamp and fake a redundancy proof.
            for s in self
                .seen
                .iter_mut()
                .chain(&mut self.min_removable)
                .chain(&mut self.min_poison)
            {
                *s = 0;
            }
            self.seen_stamp = 1;
        }
        self.seen_stamp
    }

    /// Number of distinct decision levels among `lits` (the LBD quality
    /// measure driving reduction order; lower is better).
    fn lbd(&mut self, lits: &[Lit]) -> u32 {
        let stamp = self.next_stamp();
        let mut n = 0u32;
        for l in lits {
            let lv = self.level[l.var()] as usize;
            // Reuse the seen buffer indexed by level (levels < n_vars).
            if lv < self.seen.len() && self.seen[lv] != stamp {
                self.seen[lv] = stamp;
                n += 1;
            }
        }
        n
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump
    /// level, derivation depth = max depth of resolved clauses).
    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let stamp = self.next_stamp();
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut asserting: Option<Lit> = None;
        let mut depth = 0u32;

        loop {
            depth = depth.max(self.clauses.hdr(conflict).depth);
            self.bump_clause(conflict);
            for idx in 0..self.clauses.hdr(conflict).len as usize {
                let q = self.clauses.lits(conflict)[idx];
                // Skip the literal we just resolved on (it is asserted by
                // this reason clause).
                if asserting == Some(q) {
                    continue;
                }
                let v = q.var();
                if self.seen[v] != stamp && self.level[v] > 0 {
                    self.seen[v] = stamp;
                    self.bump(v);
                    if self.level[v] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if self.level[v] == 0 {
                    // The literal is resolved away against a level-0
                    // fact, so the learnt implicitly depends on that
                    // fact's derivation: fold its depth in, or carry
                    // mode would retain learnts premised on facts a
                    // deeper frame asserted.
                    depth = depth.max(self.fact_depth[v]);
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var()] == stamp {
                    break;
                }
            }
            let p = self.trail[trail_idx];
            self.seen[p.var()] = 0;
            counter -= 1;
            if counter == 0 {
                asserting = Some(p);
                break;
            }
            conflict = self.reason[p.var()].expect("non-decision has a reason");
            asserting = Some(p);
        }
        let uip = asserting.expect("loop sets asserting").negated();
        learnt.insert(0, uip);

        // Learnt-clause minimization: recursive self-subsumption drops
        // tail literals whose reason antecedents are all already in the
        // clause (`seen`-stamped), level-0 facts, or themselves
        // redundant — MiniSat's ccmin. The depths of every reason clause
        // a removal proof resolves through fold into the learnt's
        // derivation depth, keeping carry-mode retention sound.
        let mut kept = 1usize;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if self.reason[l.var()].is_none() || !self.lit_redundant(l, stamp, &mut depth) {
                learnt[kept] = l;
                kept += 1;
            }
        }
        self.stats.minimized += (learnt.len() - kept) as u64;
        learnt.truncate(kept);

        let back_level = learnt[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        // Put a max-level literal at position 1 for watching.
        if learnt.len() > 1 {
            let mi = 1 + learnt[1..]
                .iter()
                .position(|l| self.level[l.var()] == back_level)
                .expect("max exists");
            learnt.swap(1, mi);
        }
        (learnt, back_level, depth)
    }

    /// Whether learnt-clause literal `p` is redundant: every antecedent
    /// of its reason clause is already in the learnt clause (stamped in
    /// `seen`), a level-0 fact, or recursively redundant. Iterative DFS
    /// over the reason graph with per-conflict memoization (`stamp`ed
    /// removable/poison buffers). Folds the depth of every reason clause
    /// a successful proof uses — and the `fact_depth` of resolved
    /// level-0 facts — into `depth`.
    fn lit_redundant(&mut self, p: Lit, stamp: u32, depth: &mut u32) -> bool {
        if self.min_removable[p.var()] == stamp {
            return true;
        }
        if self.min_poison[p.var()] == stamp {
            return false;
        }
        let Some(cr) = self.reason[p.var()] else {
            return false;
        };
        // DFS frames: (literal being proven redundant, its reason
        // clause, next antecedent position to examine). The stack is
        // solver-owned scratch so minimization allocates nothing after
        // warm-up.
        self.min_stack.clear();
        self.min_stack.push((p, cr, 0));
        loop {
            let Some(&mut (lit, cr, ref mut next)) = self.min_stack.last_mut() else {
                return true;
            };
            if *next >= self.clauses.hdr(cr).len as usize {
                // Every antecedent accounted for: `lit` is redundant.
                *depth = (*depth).max(self.clauses.hdr(cr).depth);
                self.min_removable[lit.var()] = stamp;
                self.min_stack.pop();
                continue;
            }
            let q = self.clauses.lits(cr)[*next];
            *next += 1;
            let v = q.var();
            if v == lit.var() {
                // The literal this reason clause asserts.
                continue;
            }
            if self.level[v] == 0 {
                *depth = (*depth).max(self.fact_depth[v]);
                continue;
            }
            if self.seen[v] == stamp || self.min_removable[v] == stamp {
                continue;
            }
            if self.min_poison[v] == stamp || self.reason[v].is_none() {
                // Reached a decision (or a known dead end): the whole
                // proof path under construction is non-redundant.
                for &(l, _, _) in &self.min_stack {
                    self.min_poison[l.var()] = stamp;
                }
                return false;
            }
            let rcr = self.reason[v].expect("checked above");
            self.min_stack.push((q, rcr, 0));
        }
    }

    /// Computes the subset of assumptions responsible for forcing
    /// `failed` false, by walking reasons down the trail. Result (the
    /// failing assumption literals, `failed` included) lands in
    /// `last_core`.
    fn analyze_final(&mut self, failed: Lit) {
        self.last_core.clear();
        self.last_core.push(failed);
        if self.trail_lim.is_empty() {
            // ¬failed is a level-0 fact: the core is `failed` alone.
            return;
        }
        let stamp = self.next_stamp();
        self.seen[failed.var()] = stamp;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if self.seen[v] != stamp {
                continue;
            }
            match self.reason[v] {
                // A decision above level 0 during the assumption phase is
                // an assumption — including `¬failed` itself when the
                // opposite polarity was assumed earlier.
                None => {
                    self.last_core.push(l);
                }
                Some(cr) => {
                    for idx in 0..self.clauses.hdr(cr).len as usize {
                        let q = self.clauses.lits(cr)[idx];
                        if q.var() != v && self.level[q.var()] > 0 {
                            self.seen[q.var()] = stamp;
                        }
                    }
                }
            }
            self.seen[v] = 0;
        }
    }

    /// The failed assumption subset of the most recent
    /// [`SatSolver::solve_under`] `Unsat` verdict (empty when the clause
    /// set itself is unsatisfiable with no assumptions involved).
    pub fn last_conflict_core(&self) -> &[Lit] {
        &self.last_core
    }

    fn backtrack_to(&mut self, level: usize) {
        while self.trail_lim.len() > level {
            let lim = self.trail_lim.pop().expect("non-empty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty");
                self.assign[l.var()] = UNASSIGNED;
                self.reason[l.var()] = None;
                self.order.insert(&self.activity, l.var());
            }
        }
        // Trail below `level` is untouched and fully propagated.
        self.qhead = self.trail.len();
    }

    /// Next decision literal: best unassigned variable off the order
    /// heap (activity descending, index ascending), in its saved phase.
    fn decide(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v] == UNASSIGNED {
                return Some(if self.phase[v] {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                });
            }
        }
        None
    }

    /// Reduces the learnt-clause database: removes the cold half of the
    /// removable learnts (worst LBD first, then lowest activity), keeping
    /// binary clauses and clauses locked as reasons of current
    /// assignments. Rebuilds the watch lists and remaps reason indices
    /// over the compacted database. Fully deterministic: the removal
    /// order is a total order (lbd, activity, index).
    fn reduce_db(&mut self) {
        // Candidates: removable learnts, by index.
        let mut cands: Vec<usize> = Vec::new();
        let locked: Vec<bool> = {
            let mut locked = vec![false; self.clauses.len()];
            for v in 0..self.n_vars {
                if self.assign[v] != UNASSIGNED {
                    if let Some(ci) = self.reason[v] {
                        locked[ci] = true;
                    }
                }
            }
            locked
        };
        for (i, h) in self.clauses.heads.iter().enumerate() {
            if h.learnt && !locked[i] && h.len > 2 {
                cands.push(i);
            }
        }
        // Cold-first: high LBD, then low activity, then high index
        // (younger clauses of equal merit go first — they have had the
        // least time to prove themselves and keeping elders is cheaper
        // for the remap).
        cands.sort_by(|&a, &b| {
            let (ca, cb) = (self.clauses.hdr(a), self.clauses.hdr(b));
            cb.lbd
                .cmp(&ca.lbd)
                .then(
                    ca.activity
                        .partial_cmp(&cb.activity)
                        .expect("activities are finite"),
                )
                .then(b.cmp(&a))
        });
        let n_remove = cands.len() / 2;
        if n_remove == 0 {
            return;
        }
        let mut remove = vec![false; self.clauses.len()];
        for &i in &cands[..n_remove] {
            remove[i] = true;
        }
        // Compact, building the old->new index map. Rebuilding into a
        // fresh arena drops the dead literal runs too — GC is the one
        // place the flat buffer is ever re-packed.
        let old = std::mem::take(&mut self.clauses);
        let mut map: Vec<usize> = vec![usize::MAX; old.len()];
        let mut kept = ClauseDb {
            data: Vec::with_capacity(old.data.len()),
            heads: Vec::with_capacity(old.len() - n_remove),
        };
        for i in 0..old.len() {
            if !remove[i] {
                map[i] = kept.len();
                kept.push_carried(old.lits(i), *old.hdr(i));
            }
        }
        self.clauses = kept;
        self.n_learnts -= n_remove;
        self.stats.gc_clauses += n_remove as u64;
        // Remap reasons (locked clauses were never removed).
        for ci in self.reason.iter_mut().flatten() {
            debug_assert_ne!(map[*ci], usize::MAX, "locked clause GC'd");
            *ci = map[*ci];
        }
        // Rebuild watches over the compacted indices: binary clauses
        // (never GC candidates, but their indices shifted) re-enter the
        // implication graph, longer clauses watch positions 0 and 1.
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.bin_watches {
            w.clear();
        }
        for i in 0..self.clauses.len() {
            let l = self.clauses.lits(i);
            if l.len() == 2 {
                self.bin_watches[l[0].index()].push((l[1], i));
                self.bin_watches[l[1].index()].push((l[0], i));
            } else {
                self.watches[l[0].index()].push(i);
                self.watches[l[1].index()].push(i);
            }
        }
    }

    /// Stores a learnt clause, watches it, enqueues the asserting literal
    /// and pays the learnt-DB accounting. `lits[0]` must be the asserting
    /// literal and `lits[1]` a max-level literal.
    fn learn_and_assert(&mut self, lits: &[Lit], depth: u32) {
        debug_assert!(lits.len() >= 2);
        let lbd = self.lbd(lits);
        let asserting = lits[0];
        let ci = self.attach_clause(lits, true, depth, lbd);
        self.bump_clause(ci);
        let ok = self.enqueue(asserting, Some(ci));
        debug_assert!(ok, "asserting literal must be enqueueable");
    }

    /// Handles a conflicting clause: analyzes, backjumps, asserts the
    /// learnt, and runs the learnt-DB reduction when over budget.
    /// Returns `false` when the conflict proves top-level unsatisfiability.
    fn resolve_conflict(&mut self, conflict: usize) -> bool {
        self.stats.conflicts += 1;
        if self.trail_lim.is_empty() {
            self.unsat = true;
            return false;
        }
        let (learnt, back, depth) = self.analyze(conflict);
        self.backtrack_to(back as usize);
        if learnt.len() == 1 {
            if !self.enqueue(learnt[0], None) {
                self.unsat = true;
                return false;
            }
            // Tighter than enqueue's conservative frame-depth default:
            // the unit's provenance is the learnt's derivation depth.
            self.fact_depth[learnt[0].var()] = depth;
        } else {
            self.learn_and_assert(&learnt, depth);
        }
        self.decay();
        if self.n_learnts >= self.gc_budget {
            self.reduce_db();
            // The +1 floors the integer growth for tiny (test-knob)
            // budgets, keeping the documented geometric back-off.
            self.gc_budget =
                (self.gc_budget + 1).max(self.gc_budget * GC_BUDGET_GROWTH_PERMILLE / 1000);
        }
        true
    }

    /// Turns a theory conflict (the given literals are all true and
    /// jointly infeasible) into an in-place Boolean conflict: learns the
    /// blocking lemma, backtracks to its highest decision level, and
    /// resolves it like any other conflict. Returns `false` on top-level
    /// unsatisfiability.
    fn resolve_theory_conflict(&mut self, asserted: &[Lit]) -> bool {
        let mut clause: Vec<Lit> = asserted.iter().map(|l| l.negated()).collect();
        debug_assert!(clause.iter().all(|&l| self.value(l) == 0));
        if clause.is_empty() {
            self.unsat = true;
            return false;
        }
        let max_level = clause
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .expect("non-empty");
        if max_level == 0 {
            // Infeasible combination of level-0 facts: truly unsat.
            self.stats.conflicts += 1;
            self.unsat = true;
            return false;
        }
        self.backtrack_to(max_level as usize);
        if clause.len() == 1 {
            // A unit theory lemma is a premise-free fact: assert it at
            // level 0 (clauses cannot watch a single literal).
            self.stats.conflicts += 1;
            self.backtrack_to(0);
            let ok = self.enqueue(clause[0], None);
            if ok {
                // Theory lemmas depend only on their variables' frames.
                self.fact_depth[clause[0].var()] = self.lemma_depth(&clause);
            }
            if !ok || self.propagate().is_some() {
                self.unsat = true;
                return false;
            }
            return true;
        }
        // Watch two highest-level literals (positions 0/1) so the lemma
        // behaves under future backtracking.
        let mut order: Vec<usize> = (0..clause.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.level[clause[i].var()]));
        let (i0, i1) = (order[0], order[1]);
        clause.swap(0, i0);
        clause.swap(1, if i1 == 0 { i0 } else { i1 });
        let depth = self.lemma_depth(&clause);
        let lbd = self.lbd(&clause);
        let ci = self.attach_clause(&clause, true, depth, lbd);
        self.bump_clause(ci);
        self.resolve_conflict(ci)
    }

    /// Derivation depth of a theory lemma: theory lemmas are valid
    /// independently of any clause, so only the creation depth of the
    /// variables they mention pins them to a frame.
    fn lemma_depth(&self, lits: &[Lit]) -> u32 {
        lits.iter()
            .map(|l| self.var_depth[l.var()])
            .max()
            .unwrap_or(0)
    }

    /// Attaches theory-implied literals: for each `(lit, premises)` adds
    /// the lemma `¬p₁ ∨ … ∨ ¬pₖ ∨ lit` and enqueues `lit` with it as
    /// reason. If an implication arrives already falsified (the theory
    /// implied both polarities — only possible for an inconsistent
    /// premise set), the infeasible asserted set is returned for
    /// [`SatSolver::resolve_theory_conflict`].
    fn assert_implied(&mut self, implied: Vec<(Lit, Vec<Lit>)>) -> Option<Vec<Lit>> {
        for (lit, premises) in implied {
            if premises.is_empty() {
                // Contract violation (see `TheoryResult::Implied`): a
                // premise-free lemma cannot be watched; drop it — losing
                // a propagation is sound.
                debug_assert!(false, "theory implication without premises");
                continue;
            }
            match self.value(lit) {
                1 => continue, // an earlier implication already set it
                0 => {
                    // Premises are true yet `lit` is false: the asserted
                    // set {premises..., ¬lit} is theory-infeasible.
                    let mut asserted = premises;
                    asserted.push(lit.negated());
                    return Some(asserted);
                }
                _ => {}
            }
            let mut clause: Vec<Lit> = Vec::with_capacity(premises.len() + 1);
            clause.push(lit);
            clause.extend(premises.iter().map(|p| p.negated()));
            debug_assert!(clause[1..].iter().all(|&l| self.value(l) == 0));
            // Position 1 must hold a highest-level false literal so the
            // watch pair stays sound under backtracking.
            let mi = 1 + clause[1..]
                .iter()
                .enumerate()
                .max_by_key(|(i, l)| (self.level[l.var()], std::cmp::Reverse(*i)))
                .expect("premises non-empty")
                .0;
            clause.swap(1, mi);
            let depth = self.lemma_depth(&clause);
            let lbd = self.lbd(&clause);
            let ci = self.attach_clause(&clause, true, depth, lbd);
            let ok = self.enqueue(lit, Some(ci));
            debug_assert!(ok, "implied literal was unassigned");
        }
        None
    }

    /// Pays one conflict toward the Luby restart cadence: the r-th
    /// restart fires after `luby(r) * restart_scale` conflicts of run r
    /// (scale 100 by default) — Boolean and theory conflicts alike, so
    /// `stats.restarts` stays consistent with `stats.conflicts` under
    /// DPLL(T) (pinned by the `restart_cadence_follows_luby` test).
    fn tick_restart(&mut self, rs: &mut RestartSchedule) {
        rs.countdown -= 1;
        if rs.countdown == 0 {
            rs.run += 1;
            self.stats.restarts += 1;
            rs.countdown = luby(rs.run) * self.config.restart_scale;
            self.backtrack_to(0);
            if self.config.phase_reset_on_restart {
                // Diversification: forget every saved phase (assigned
                // variables included — their phase is rewritten on the
                // next enqueue anyway, so one wholesale reset is sound).
                self.stats.phase_resets += 1;
                let d = self.config.default_phase;
                for ph in &mut self.phase {
                    *ph = d;
                }
            }
        }
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatVerdict {
        self.solve_with(&[], None)
    }

    /// Solves the current clause set under `assumptions`, without
    /// asserting them: the solver branches on each assumption first (in
    /// order) and reports `Unsat` as soon as one is falsified —
    /// [`SatSolver::last_conflict_core`] then names the failing subset.
    /// Learned clauses never resolve on an assumption as a premise-free
    /// fact (assumptions enter as decisions), so everything learned under
    /// one assumption set remains valid for the next — the mechanism the
    /// OMT binary search uses to share work across probes.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SatVerdict {
        self.solve_with(assumptions, None)
    }

    /// Like [`SatSolver::solve_under`], consulting `theory` during the
    /// search (DPLL(T)): at decision checkpoints the theory sees the
    /// partial assignment and may report an infeasible subset (resolved
    /// in place as a conflict, without restarting the search) or imply
    /// literals (asserted into the trail through attached lemma clauses);
    /// every complete Boolean assignment is theory-checked before `Sat`
    /// is returned.
    pub fn solve_with(
        &mut self,
        assumptions: &[Lit],
        mut theory: Option<&mut dyn Theory>,
    ) -> SatVerdict {
        self.last_core.clear();
        if self.unsat {
            return SatVerdict::Unsat;
        }
        self.backtrack_to(0);
        self.qhead = 0;
        if self.propagate().is_some() {
            self.unsat = true;
            return SatVerdict::Unsat;
        }

        let mut restart = RestartSchedule::new(self.config.restart_scale);
        let mut decisions_since_consult = 0u64;
        loop {
            // Deterministic budget gate: checked once per loop turn, so
            // the cut lands at the same conflict on every machine.
            if let Some(limit) = self.conflict_limit {
                if self.stats.conflicts >= limit {
                    self.backtrack_to(0);
                    return SatVerdict::Unknown;
                }
            }
            if let Some(conflict) = self.propagate() {
                if !self.resolve_conflict(conflict) {
                    return SatVerdict::Unsat;
                }
                self.tick_restart(&mut restart);
            } else if self.trail_lim.len() < assumptions.len() {
                // Take the next assumption as a pseudo-decision.
                let a = assumptions[self.trail_lim.len()];
                match self.value(a) {
                    1 => {
                        // Already implied: open an empty level so the
                        // level index keeps matching the assumption index.
                        self.trail_lim.push(self.trail.len());
                    }
                    0 => {
                        self.analyze_final(a);
                        self.backtrack_to(0);
                        return SatVerdict::Unsat;
                    }
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, None);
                        debug_assert!(ok, "assumption was unassigned");
                    }
                }
            } else {
                // Periodic theory checkpoint on the partial assignment.
                if decisions_since_consult >= THEORY_CONSULT_INTERVAL {
                    if let Some(t) = theory.as_deref_mut() {
                        decisions_since_consult = 0;
                        let view = TheoryView {
                            assign: &self.assign,
                        };
                        match t.consult(view, false) {
                            TheoryResult::Ok => {}
                            TheoryResult::Conflict(asserted) => {
                                if !self.resolve_theory_conflict(&asserted) {
                                    return SatVerdict::Unsat;
                                }
                                self.tick_restart(&mut restart);
                                continue;
                            }
                            TheoryResult::Implied(implied) => {
                                if let Some(asserted) = self.assert_implied(implied) {
                                    if !self.resolve_theory_conflict(&asserted) {
                                        return SatVerdict::Unsat;
                                    }
                                    self.tick_restart(&mut restart);
                                }
                                continue;
                            }
                            TheoryResult::Halt => {
                                self.backtrack_to(0);
                                return SatVerdict::Unknown;
                            }
                        }
                    }
                }
                match self.decide() {
                    None => {
                        // Complete assignment: mandatory theory check.
                        if let Some(t) = theory.as_deref_mut() {
                            decisions_since_consult = 0;
                            let view = TheoryView {
                                assign: &self.assign,
                            };
                            match t.consult(view, true) {
                                TheoryResult::Ok => {}
                                TheoryResult::Conflict(asserted) => {
                                    if !self.resolve_theory_conflict(&asserted) {
                                        return SatVerdict::Unsat;
                                    }
                                    self.tick_restart(&mut restart);
                                    continue;
                                }
                                TheoryResult::Implied(_) => {
                                    unreachable!("complete assignment implies nothing")
                                }
                                TheoryResult::Halt => {
                                    self.backtrack_to(0);
                                    return SatVerdict::Unknown;
                                }
                            }
                        }
                        let model = self.assign.iter().map(|&v| v == 1).collect();
                        return SatVerdict::Sat(model);
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        decisions_since_consult += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

/// Value of literal `l` against an assignment slice: 0 false, 1 true,
/// -1 unassigned. A free function so the propagation inner loop can
/// evaluate candidates while a clause's literal vector is mutably
/// borrowed (the `value` method delegates here).
#[inline]
fn lit_value(assign: &[i8], l: Lit) -> i8 {
    match assign[l.var()] {
        UNASSIGNED => UNASSIGNED,
        v if l.is_neg() => 1 - v,
        v => v,
    }
}

/// Per-solve restart bookkeeping: the current Luby run index and the
/// conflicts left before it ends.
struct RestartSchedule {
    run: u32,
    countdown: u64,
}

impl RestartSchedule {
    fn new(scale: u64) -> RestartSchedule {
        RestartSchedule {
            run: 1,
            countdown: luby(1) * scale,
        }
    }
}

/// Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed.
fn luby(i: u32) -> u64 {
    let mut i = i as u64;
    loop {
        if (i + 1).is_power_of_two() {
            return i.div_ceil(2);
        }
        let k = 63 - (i + 1).leading_zeros() as u64; // floor(log2(i+1))
        i -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&s| {
                let v = (s.unsigned_abs() - 1) as usize;
                if s > 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect()
    }

    fn solver_with(n: usize, clauses: &[&[i32]]) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    fn pigeonhole_clauses(pigeons: usize) -> (usize, Vec<Vec<i32>>) {
        let holes = pigeons - 1;
        let var = |i: usize, j: usize| (i * holes + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..pigeons {
            clauses.push((0..holes).map(|j| var(i, j)).collect());
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    clauses.push(vec![-var(a, j), -var(b, j)]);
                }
            }
        }
        (pigeons * holes, clauses)
    }

    #[test]
    fn minimization_fires_on_pigeonhole_and_preserves_verdicts() {
        // Pigeonhole conflicts produce first-UIP clauses with redundant
        // chain literals; the recursive minimizer must remove some and
        // the verdict must stay Unsat.
        let (n, clauses) = pigeonhole_clauses(7);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(n, &refs);
        assert_eq!(s.solve(), SatVerdict::Unsat);
        assert!(
            s.stats.minimized > 0,
            "no literals minimized across {} conflicts",
            s.stats.conflicts
        );
        // Satisfiable side: a chain instance where every learnt clause
        // shrinks to its essence still yields a model.
        let mut c = solver_with(
            6,
            &[
                &[1, 2],
                &[-1, 3],
                &[-2, 3],
                &[-3, 4],
                &[-4, 5],
                &[-5, 6],
                &[-3, -6, 5],
            ],
        );
        let SatVerdict::Sat(m) = c.solve() else {
            panic!("expected sat")
        };
        assert!(m[0] || m[1]);
    }

    #[test]
    fn minimized_counter_survives_since_snapshots() {
        let (n, clauses) = pigeonhole_clauses(6);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(n, &refs);
        let before = s.stats;
        assert_eq!(s.solve(), SatVerdict::Unsat);
        let delta = s.stats.since(before);
        assert_eq!(delta.minimized, s.stats.minimized);
        assert!(delta.learned > 0);
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let SatVerdict::Sat(m) = s.solve() else {
            panic!("expected sat")
        };
        assert!(m[0] || m[1]);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = SatSolver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn chain_of_implications() {
        // x1 & (x1->x2) & ... & (x9->x10) & -x10 is unsat.
        let mut cl: Vec<Vec<i32>> = vec![vec![1]];
        for i in 1..10 {
            cl.push(vec![-i, i + 1]);
        }
        cl.push(vec![-10]);
        let refs: Vec<&[i32]> = cl.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(10, &refs);
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        let (n, clauses) = pigeonhole_clauses(3);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(n, &refs);
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 3],
            vec![2, 3],
            vec![-2, -3, 4],
            vec![-4, 1],
        ];
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(4, &refs);
        let SatVerdict::Sat(m) = s.solve() else {
            panic!("expected sat")
        };
        for c in &clauses {
            assert!(
                c.iter().any(|&l| {
                    let v = (l.unsigned_abs() - 1) as usize;
                    (l > 0) == m[v]
                }),
                "clause {c:?} falsified"
            );
        }
    }

    #[test]
    fn incremental_blocking_clauses_enumerate_models() {
        // 3 free variables -> 8 models; block each as found.
        let mut s = solver_with(3, &[&[1, 2, 3, -1]]); // tautology, no constraint
        let mut count = 0;
        while let SatVerdict::Sat(m) = s.solve() {
            count += 1;
            assert!(count <= 8, "more models than possible");
            let block: Vec<Lit> = (0..3)
                .map(|v| if m[v] { Lit::neg(v) } else { Lit::pos(v) })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn restart_cadence_follows_luby() {
        // The r-th restart fires after 100*luby(r) conflicts of run r, so
        // with C total conflicts the restart count is the largest R with
        // sum_{i=1..R} 100*luby(i) <= C. Pigeonhole 7->6 produces enough
        // conflicts to cross several Luby runs deterministically.
        let (n, clauses) = pigeonhole_clauses(7);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(n, &refs);
        assert_eq!(s.solve(), SatVerdict::Unsat);
        let conflicts = s.stats.conflicts;
        let mut expect = 0u64;
        let mut budget = 0u64;
        loop {
            budget += luby(expect as u32 + 1) * 100;
            if budget > conflicts {
                break;
            }
            expect += 1;
        }
        assert!(conflicts > 100, "instance too easy to pin the cadence");
        assert_eq!(s.stats.restarts, expect, "conflicts={conflicts}");
    }

    #[test]
    fn exhaustive_cross_check_small_random() {
        // Brute-force comparison on random 3-SAT instances with 8 vars.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let n = 8usize;
            let m = rng.random_range(10..40);
            let clauses: Vec<Vec<i32>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.random_range(1..=n as i32);
                            if rng.random::<bool>() {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let brute_sat = (0..(1u32 << n)).any(|mask| {
                clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        let v = l.unsigned_abs() - 1;
                        ((mask >> v) & 1 == 1) == (l > 0)
                    })
                })
            });
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(n, &refs);
            let verdict = s.solve();
            match (brute_sat, verdict) {
                (true, SatVerdict::Sat(_)) | (false, SatVerdict::Unsat) => {}
                (b, v) => panic!("disagreement: brute {b}, solver {v:?}\n{clauses:?}"),
            }
        }
    }

    // ----- conflict budget -----------------------------------------------

    #[test]
    fn conflict_budget_returns_unknown_and_lifting_it_resumes() {
        // Pigeonhole 3→2: unsat, and the proof needs conflicts.
        let clauses: Vec<&[i32]> = vec![
            &[1, 2],
            &[3, 4],
            &[5, 6],
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ];
        let mut s = solver_with(6, &clauses);
        s.set_conflict_limit(Some(0));
        assert_eq!(s.solve(), SatVerdict::Unknown);
        // The solver stays usable: the cap is absolute against
        // cumulative stats, and lifting it finishes the proof.
        s.set_conflict_limit(None);
        assert_eq!(s.solve(), SatVerdict::Unsat);
        assert!(s.stats.conflicts > 0);
    }

    // ----- order heap ----------------------------------------------------

    #[test]
    fn order_heap_pops_by_activity_then_index() {
        let act = [1.0f64, 3.0, 3.0, 0.5, 2.0];
        let mut h = OrderHeap::default();
        for v in 0..act.len() {
            h.insert(&act, v);
        }
        let mut got = Vec::new();
        while let Some(v) = h.pop_max(&act) {
            got.push(v);
        }
        // Activity descending; ties broken toward the smaller index.
        assert_eq!(got, vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn order_heap_rebuild_matches_incremental_inserts() {
        let act = [0.25f64, 4.0, 1.0, 1.0, 0.0, 7.5];
        let mut a = OrderHeap::default();
        for v in [5, 2, 0, 3, 1, 4] {
            a.insert(&act, v);
        }
        let mut b = OrderHeap::default();
        b.rebuild(&act, act.len());
        let drain = |mut h: OrderHeap| {
            let mut out = Vec::new();
            while let Some(v) = h.pop_max(&act) {
                out.push(v);
            }
            out
        };
        assert_eq!(drain(a), drain(b));
    }

    // ----- clause-DB reduction -------------------------------------------

    #[test]
    fn gc_triggers_and_preserves_verdict() {
        let (n, clauses) = pigeonhole_clauses(7);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut tight = solver_with(n, &refs);
        tight.set_gc_budget(10);
        assert_eq!(tight.solve(), SatVerdict::Unsat);
        assert!(tight.stats.gc_clauses > 0, "GC never ran");
        assert!(tight.live_learnts() <= tight.stats.learned as usize);
    }

    #[test]
    fn gc_keeps_locked_reasons_valid() {
        // A satisfiable instance large enough to learn under a tight
        // budget: GC between conflicts must never invalidate reasons.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30usize;
        let clauses: Vec<Vec<i32>> = (0..120)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let v = rng.random_range(1..=n as i32);
                        if rng.random::<bool>() {
                            v
                        } else {
                            -v
                        }
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut a = solver_with(n, &refs);
        a.set_gc_budget(4);
        let mut b = solver_with(n, &refs);
        // Verdicts agree with and without aggressive GC.
        assert_eq!(
            matches!(a.solve(), SatVerdict::Sat(_)),
            matches!(b.solve(), SatVerdict::Sat(_))
        );
    }

    // ----- theory hook ---------------------------------------------------

    /// Toy theory: variable 0 and variable 1 may never both be true.
    struct AtMostOne;

    impl Theory for AtMostOne {
        fn consult(&mut self, view: TheoryView<'_>, _complete: bool) -> TheoryResult {
            if view.value(0) == Some(true) && view.value(1) == Some(true) {
                TheoryResult::Conflict(vec![Lit::pos(0), Lit::pos(1)])
            } else {
                TheoryResult::Ok
            }
        }
    }

    #[test]
    fn theory_conflict_blocks_model() {
        let mut s = solver_with(2, &[&[1], &[2, 1]]);
        // Boolean part prefers both true; theory forbids it.
        let SatVerdict::Sat(m) = s.solve_with(&[], Some(&mut AtMostOne)) else {
            panic!("expected sat")
        };
        assert!(!(m[0] && m[1]));
        assert!(m[0]);
    }

    #[test]
    fn theory_conflict_on_forced_pair_is_unsat() {
        let mut s = solver_with(2, &[&[1], &[2]]);
        assert_eq!(s.solve_with(&[], Some(&mut AtMostOne)), SatVerdict::Unsat);
    }

    /// Toy propagating theory: asserting variable 0 implies variable 1.
    struct ZeroImpliesOne;

    impl Theory for ZeroImpliesOne {
        fn consult(&mut self, view: TheoryView<'_>, complete: bool) -> TheoryResult {
            if view.value(0) == Some(true) && view.value(1).is_none() {
                assert!(!complete, "complete assignment leaves nothing unassigned");
                return TheoryResult::Implied(vec![(Lit::pos(1), vec![Lit::pos(0)])]);
            }
            if view.value(0) == Some(true) && view.value(1) == Some(false) {
                return TheoryResult::Conflict(vec![Lit::pos(0), Lit::neg(1)]);
            }
            TheoryResult::Ok
        }
    }

    #[test]
    fn theory_propagation_asserts_implied_literal() {
        // 20 padding vars force a consult checkpoint between decisions.
        let mut s = solver_with(22, &[&[1]]);
        for v in 2..22 {
            s.add_clause(&lits(&[v, -v])); // no-op tautologies, vars free
        }
        let SatVerdict::Sat(m) = s.solve_with(&[], Some(&mut ZeroImpliesOne)) else {
            panic!("expected sat")
        };
        assert!(m[0]);
        assert!(m[1], "theory implication must hold in the model");
    }

    // ----- assumptions ---------------------------------------------------

    #[test]
    fn assumptions_do_not_assert() {
        // (a -> b), assume ¬b: a must be false; afterwards the solver is
        // still free to pick b.
        let mut s = solver_with(2, &[&[-1, 2]]);
        let SatVerdict::Sat(m) = s.solve_under(&lits(&[-2])) else {
            panic!("sat under ¬b")
        };
        assert!(!m[0] && !m[1]);
        let SatVerdict::Sat(m) = s.solve_under(&lits(&[1])) else {
            panic!("sat under a")
        };
        assert!(m[0] && m[1]);
    }

    #[test]
    fn failed_assumptions_reported_with_core() {
        // x1 & (x1 -> x2); assuming ¬x2 is unsat, core must name ¬x2.
        let mut s = solver_with(2, &[&[1], &[-1, 2]]);
        assert_eq!(s.solve_under(&lits(&[-2])), SatVerdict::Unsat);
        assert!(s.last_conflict_core().contains(&Lit::neg(1)));
        // The clause set itself stays satisfiable.
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
        assert!(s.last_conflict_core().is_empty());
    }

    #[test]
    fn conflicting_assumption_pair_names_both_in_core() {
        // No clauses at all: assumptions [a, ¬a] must fail with a core
        // naming both polarities — {¬a} alone would be satisfiable.
        let mut s = solver_with(1, &[]);
        assert_eq!(
            s.solve_under(&[Lit::pos(0), Lit::neg(0)]),
            SatVerdict::Unsat
        );
        let mut core = s.last_conflict_core().to_vec();
        core.sort();
        assert_eq!(core, vec![Lit::pos(0), Lit::neg(0)]);
    }

    #[test]
    fn learned_clauses_survive_between_assumption_calls() {
        // Pigeonhole body + selector s (var 7) guarding nothing: repeated
        // unsat probes under the same assumptions must not grow learning
        // without bound, and verdicts stay stable.
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1), 7]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-var(a, j), -var(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(7, &refs);
        assert_eq!(s.solve_under(&lits(&[-7])), SatVerdict::Unsat);
        let learned_once = s.stats.learned;
        assert_eq!(s.solve_under(&lits(&[-7])), SatVerdict::Unsat);
        // Second identical probe reuses the first probe's learning.
        assert!(s.stats.learned <= learned_once * 2);
        assert!(matches!(s.solve_under(&lits(&[7])), SatVerdict::Sat(_)));
    }

    // ----- push / pop ----------------------------------------------------

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut s = solver_with(2, &[&[1, 2]]);
        s.push();
        s.add_clause(&lits(&[-1]));
        s.add_clause(&lits(&[-2]));
        assert_eq!(s.solve(), SatVerdict::Unsat);
        s.pop();
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
    }

    #[test]
    fn pop_removes_variables_and_level0_facts() {
        let mut s = solver_with(1, &[]);
        s.push();
        let v = s.new_var();
        s.add_clause(&[Lit::pos(v)]);
        s.add_clause(&[Lit::neg(v), Lit::pos(0)]);
        let SatVerdict::Sat(m) = s.solve() else {
            panic!()
        };
        assert!(m[0] && m[v]);
        s.pop();
        assert_eq!(s.n_vars(), 1);
        // Var 0 is free again: both polarities satisfiable.
        assert!(matches!(s.solve_under(&[Lit::neg(0)]), SatVerdict::Sat(_)));
        assert!(matches!(s.solve_under(&[Lit::pos(0)]), SatVerdict::Sat(_)));
    }

    #[test]
    fn pop_replays_identically_to_fresh_solver() {
        // Solve the same instance (a) on a fresh solver, (b) after a
        // push/solve/pop detour: models must match bit for bit.
        let base: &[&[i32]] = &[&[1, 2, -3], &[-1, 3], &[2, 3], &[-2, -3, 4]];
        let extra: &[&[i32]] = &[&[-4], &[3, 4]];
        let instance: &[&[i32]] = &[&[1, -2], &[2, 3, 4], &[-3, -4]];

        let mut fresh = solver_with(4, base);
        let mut detoured = solver_with(4, base);
        detoured.push();
        for c in extra {
            detoured.add_clause(&lits(c));
        }
        let _ = detoured.solve();
        detoured.pop();

        fresh.push();
        detoured.push();
        for c in instance {
            fresh.add_clause(&lits(c));
            detoured.add_clause(&lits(c));
        }
        assert_eq!(fresh.solve(), detoured.solve());
    }

    #[test]
    fn pop_restores_clause_internal_literal_order() {
        // Propagation permutes literal order inside surviving clauses
        // while hunting for new watches; pop must undo that too, or the
        // post-pop watch traversal diverges from a fresh solver's.
        let mut s = solver_with(4, &[&[1, 2, 3], &[1, 4], &[2, -3, 4]]);
        let before = s.clauses.clone();
        s.push();
        s.add_clause(&lits(&[-1]));
        s.add_clause(&lits(&[-2]));
        let _ = s.solve();
        // Precondition: the detour really permuted a pre-push clause
        // (otherwise this test is vacuous).
        let permuted = (0..before.len()).any(|i| s.clauses.lits(i) != before.lits(i));
        assert!(permuted, "detour was a no-op");
        s.pop();
        assert_eq!(s.clauses, before);
    }

    #[test]
    fn pop_restores_unsat_flag() {
        let mut s = solver_with(1, &[]);
        s.push();
        s.add_clause(&lits(&[1]));
        s.add_clause(&lits(&[-1]));
        assert_eq!(s.solve(), SatVerdict::Unsat);
        s.pop();
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
    }

    #[test]
    fn pop_restores_level0_reason_indices_after_inframe_gc() {
        // Depth-0 state: pigeonhole learnts first (low clause indices),
        // then a propagated level-0 fact whose reason index sits above
        // them. A reduce_db inside the frame removes depth-0 learnts and
        // remaps the fact's reason; pop must restore the push-time
        // reason array alongside the clause vector, or the fact's reason
        // dangles into the wrong clause.
        // Depth-0 learnts on a solver that stays satisfiable: planted
        // 3-SAT (every clause has a positive literal; all-true is a
        // model) with default all-false phases forces early conflicts.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 25usize;
        let mut s = solver_with(n, &[]);
        for _ in 0..150 {
            let mut c: Vec<i32> = (0..3)
                .map(|_| {
                    let v = rng.random_range(1..=n as i32);
                    if rng.random::<bool>() {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            let planted: usize = rng.random_range(0..3);
            c[planted] = c[planted].abs();
            s.add_clause(&lits(&c));
        }
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
        assert!(s.live_learnts() > 0, "depth-0 learnts required");
        let u = s.new_var();
        let w = s.new_var();
        s.add_clause(&[Lit::neg(u), Lit::pos(w)]); // stored first...
        s.add_clause(&[Lit::pos(u)]); // ...then u propagates w through it
        assert!(s.reason[w].is_some(), "fact w must carry a reason");
        s.push();
        s.set_gc_budget(1); // reduce_db on every conflict inside the frame
        let (m, clauses) = pigeonhole_clauses(6);
        let base = s.n_vars();
        for _ in 0..m {
            s.new_var();
        }
        for c in &clauses {
            let shifted: Vec<Lit> = c
                .iter()
                .map(|&l| {
                    let v = base + (l.unsigned_abs() - 1) as usize;
                    if l > 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            s.add_clause(&shifted);
        }
        let gc_before = s.stats.gc_clauses;
        assert_eq!(s.solve(), SatVerdict::Unsat);
        assert!(s.stats.gc_clauses > gc_before, "in-frame GC never ran");
        s.pop();
        for v in 0..s.n_vars {
            if s.assign[v] != UNASSIGNED {
                if let Some(ci) = s.reason[v] {
                    assert!(
                        s.clauses.lits(ci).iter().any(|l| l.var() == v),
                        "reason of var {v} points at a clause not containing it"
                    );
                }
            }
        }
    }

    // ----- carry mode ----------------------------------------------------

    #[test]
    fn carry_mode_keeps_base_depth_learnts() {
        // Base (depth-0) instance that forces learning; the push adds
        // nothing, so every learnt derives from depth 0 and survives the
        // pop in carry mode.
        let (n, clauses) = pigeonhole_clauses(5);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(n, &refs);
        s.set_carry_learnts(true);
        s.push();
        assert_eq!(s.solve(), SatVerdict::Unsat);
        let live = s.live_learnts();
        assert!(live > 0, "expected learning");
        s.pop();
        assert_eq!(s.live_learnts(), live, "depth-0 learnts must survive");
        assert_eq!(s.stats.carried, live as u64);
        // The carried lemmas are consequences: verdict unchanged.
        assert_eq!(s.solve(), SatVerdict::Unsat);
    }

    #[test]
    fn default_mode_pop_drops_all_learnts() {
        let (n, clauses) = pigeonhole_clauses(5);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(n, &refs);
        s.push();
        assert_eq!(s.solve(), SatVerdict::Unsat);
        assert!(s.live_learnts() > 0);
        s.pop();
        assert_eq!(s.live_learnts(), 0);
        assert_eq!(s.stats.carried, 0);
    }

    #[test]
    fn carry_mode_folds_level0_fact_provenance() {
        // The learnt (¬a ∨ ¬d) below is derived by resolving away ¬u
        // against the level-0 fact u, which frame 1 asserted: its depth
        // must be 1, so the pop drops it. (Regression: analyze used to
        // skip level-0 literals without folding their fact's provenance,
        // mis-tagging the learnt as depth 0 and carrying it — the
        // post-pop probe then reported Unsat on a satisfiable set.)
        let u = 1; // vars: u=1, d=2, a=3, b=4
        let mut s = solver_with(4, &[&[-1, -2, -3, 4], &[-1, -2, -3, -4]]);
        s.set_carry_learnts(true);
        s.push();
        s.add_clause(&lits(&[u]));
        assert_eq!(s.solve_under(&lits(&[2, 3])), SatVerdict::Unsat);
        s.pop();
        // With u free again, assuming d ∧ a is satisfiable (u = false).
        let SatVerdict::Sat(m) = s.solve_under(&lits(&[2, 3])) else {
            panic!("carried a learnt premised on the popped fact u");
        };
        assert!(!m[0] && m[1] && m[2]);
    }

    #[test]
    fn carry_survives_inframe_gc_of_prepush_learnts() {
        // Pre-push learnts + an in-frame GC that removes some of them:
        // post-push depth-0 learnts slide below the push-time vector
        // length under compaction, so the carry filter must judge by
        // birth id, not position. The invariant: after the pop, the live
        // learnts are exactly the restored pre-push ones plus the
        // carried count the stats report.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 25usize;
        let mut s = solver_with(n, &[]);
        s.set_carry_learnts(true);
        for _ in 0..150 {
            let mut c: Vec<i32> = (0..3)
                .map(|_| {
                    let v = rng.random_range(1..=n as i32);
                    if rng.random::<bool>() {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            let planted: usize = rng.random_range(0..3);
            c[planted] = c[planted].abs();
            s.add_clause(&lits(&c));
        }
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
        let pre_live = s.live_learnts();
        assert!(pre_live > 0, "pre-push learnts required");
        s.push();
        s.set_gc_budget(1);
        // Conflict-rich probes among the depth-0 clauses only: the
        // learnts they produce have derivation depth 0 and are
        // carry-eligible.
        let gc_before = s.stats.gc_clauses;
        for v in 0..6 {
            let _ = s.solve_under(&[Lit::neg(v), Lit::neg((v + 7) % n), Lit::neg((v + 13) % n)]);
        }
        assert!(s.stats.gc_clauses > gc_before, "in-frame GC never ran");
        let carried_before = s.stats.carried;
        s.pop();
        let carried = (s.stats.carried - carried_before) as usize;
        assert!(carried > 0, "depth-0 learnts from the frame must carry");
        assert_eq!(s.live_learnts(), pre_live + carried);
        // The carried lemmas are consequences: still satisfiable.
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
    }

    #[test]
    fn carry_mode_drops_learnts_touching_popped_vars() {
        // The learnts of a pushed pigeonhole instance mention pushed
        // variables, so nothing can be carried out of the pop.
        let mut s = solver_with(1, &[]);
        s.set_carry_learnts(true);
        s.push();
        let (n, clauses) = pigeonhole_clauses(5);
        let base = s.n_vars();
        for _ in 0..n {
            s.new_var();
        }
        for c in &clauses {
            let shifted: Vec<Lit> = c
                .iter()
                .map(|&l| {
                    let v = base + (l.unsigned_abs() - 1) as usize;
                    if l > 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            s.add_clause(&shifted);
        }
        assert_eq!(s.solve(), SatVerdict::Unsat);
        s.pop();
        assert_eq!(s.live_learnts(), 0);
        assert!(matches!(s.solve(), SatVerdict::Sat(_)));
    }

    #[test]
    fn stats_count_effort() {
        let mut s = solver_with(6, &[]);
        let var = |i: usize, j: usize| i * 2 + j;
        for i in 0..3 {
            s.add_clause(&[Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(var(a, j)), Lit::neg(var(b, j))]);
                }
            }
        }
        assert_eq!(s.solve(), SatVerdict::Unsat);
        assert!(s.stats.propagations > 0);
        assert!(s.stats.conflicts > 0);
        assert!(s.stats.decisions > 0 || s.stats.learned > 0);
    }

    // ----- binary implication layer --------------------------------------

    #[test]
    fn binary_chain_propagates_through_bin_layer() {
        // A pure implication chain 1 -> 2 -> ... -> 6 rooted in a unit
        // fact: every enqueue past the root flows through the binary
        // adjacency lists, not the two-watched scheme. The unit goes in
        // last — `add_clause` propagates facts eagerly and would
        // otherwise shorten each binary to a unit before attachment.
        let mut s = solver_with(6, &[&[-1, 2], &[-2, 3], &[-3, 4], &[-4, 5], &[-5, 6], &[1]]);
        match s.solve() {
            SatVerdict::Sat(model) => assert!(model.iter().all(|&b| b)),
            v => panic!("expected Sat, got {v:?}"),
        }
        assert_eq!(s.stats.bin_props, 5, "five binary-implied enqueues");
        assert_eq!(s.stats.decisions, 0, "chain needs no decisions");
    }

    #[test]
    fn binary_conflict_detected_and_analyzed() {
        // With all-false default phases the first decision is ¬1, which
        // the binary chain ¬1 -> 3 -> 4 -> 1 refutes; first-UIP analysis
        // over purely binary reasons must learn the flip and land on the
        // model with 1 true.
        let mut s = solver_with(4, &[&[1, 3], &[-3, 4], &[-4, 1], &[-1, 2]]);
        match s.solve() {
            SatVerdict::Sat(model) => assert!(model[0] && model[1]),
            v => panic!("expected Sat, got {v:?}"),
        }
        assert!(s.stats.conflicts > 0, "decision must be refuted");
        assert!(s.stats.bin_props > 0);
    }

    #[test]
    fn binary_layer_survives_push_pop() {
        // Binary clauses added inside a frame must vanish on pop, and
        // pre-push binaries must keep propagating afterwards.
        let mut s = solver_with(3, &[&[-1, 2], &[-2, 3]]);
        s.push();
        s.add_clause(&lits(&[1]));
        s.add_clause(&lits(&[-3]));
        assert_eq!(s.solve(), SatVerdict::Unsat);
        s.pop();
        s.push();
        let before = s.stats.bin_props;
        s.add_clause(&lits(&[1]));
        match s.solve() {
            SatVerdict::Sat(model) => assert!(model.iter().all(|&b| b)),
            v => panic!("expected Sat, got {v:?}"),
        }
        assert!(s.stats.bin_props >= before + 2, "pre-push chain must fire");
        s.pop();
    }

    #[test]
    fn binary_layer_survives_gc_compaction() {
        // reduce_db rebuilds both watch schemes over compacted clause
        // indices; a GC-heavy Unsat run followed by continued use would
        // crash or mispropagate if binary entries dangled.
        let (n, clauses) = pigeonhole_clauses(7);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(n, &refs);
        s.set_gc_budget(10);
        assert_eq!(s.solve(), SatVerdict::Unsat);
        assert!(s.stats.gc_clauses > 0, "GC never ran");
        assert!(s.stats.bin_props > 0, "hole-exclusion binaries must fire");
    }

    // ----- search configuration ------------------------------------------

    #[test]
    fn diversified_configs_agree_on_verdicts() {
        // The portfolio contract: every diversified configuration is a
        // complete solver, so verdicts agree on both polarities.
        let (n, clauses) = pigeonhole_clauses(6);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        for i in 0..4 {
            let mut s = SatSolver::new();
            s.set_search_config(SearchConfig::diversified(i));
            for _ in 0..n {
                s.new_var();
            }
            for c in &refs {
                s.add_clause(&lits(c));
            }
            assert_eq!(s.solve(), SatVerdict::Unsat, "config {i}");

            let mut t = SatSolver::new();
            t.set_search_config(SearchConfig::diversified(i));
            for _ in 0..4 {
                t.new_var();
            }
            for c in [&[1, -2][..], &[2, 3, 4], &[-3, -4]] {
                t.add_clause(&lits(c));
            }
            assert!(matches!(t.solve(), SatVerdict::Sat(_)), "config {i}");
        }
    }

    #[test]
    fn phase_resets_fire_only_when_configured() {
        let (n, clauses) = pigeonhole_clauses(7);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let run = |cfg: SearchConfig| {
            let mut s = SatSolver::new();
            s.set_search_config(cfg);
            for _ in 0..n {
                s.new_var();
            }
            for c in &refs {
                s.add_clause(&lits(c));
            }
            assert_eq!(s.solve(), SatVerdict::Unsat);
            s.stats
        };
        let default = run(SearchConfig::default());
        assert_eq!(default.phase_resets, 0);
        let resetting = run(SearchConfig::diversified(2));
        assert!(resetting.restarts > 0, "instance too easy to restart");
        assert_eq!(resetting.phase_resets, resetting.restarts);
    }

    #[test]
    fn restart_scale_changes_cadence() {
        // diversified(2) halves the Luby scale, so the same conflict
        // budget crosses more restarts than the default cadence.
        let (n, clauses) = pigeonhole_clauses(7);
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let run = |cfg: SearchConfig| {
            let mut s = SatSolver::new();
            s.set_search_config(cfg);
            for _ in 0..n {
                s.new_var();
            }
            for c in &refs {
                s.add_clause(&lits(c));
            }
            assert_eq!(s.solve(), SatVerdict::Unsat);
            s.stats
        };
        let slow = run(SearchConfig::default());
        let fast = run(SearchConfig {
            restart_scale: 50,
            ..SearchConfig::default()
        });
        assert!(
            fast.restarts > slow.restarts,
            "fast={} slow={}",
            fast.restarts,
            slow.restarts
        );
    }

    // ----- order-heap restore ---------------------------------------------

    #[test]
    fn order_heap_restore_matches_rebuild() {
        // `restore` must land on the same pop_max drain as the reference
        // full rebuild from any surviving layout: arbitrary insert
        // orders, popped subsets, duplicate activities (tie-breaking),
        // and shrunken variable ranges.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for round in 0..200 {
            let total = rng.random_range(1..30usize);
            let act: Vec<f64> = (0..total)
                .map(|_| f64::from(rng.random_range(0..6u32)))
                .collect();
            let mut h = OrderHeap::default();
            let mut order: Vec<usize> = (0..total).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.random_range(0..=i));
            }
            for &v in &order {
                h.insert(&act, v);
            }
            for _ in 0..rng.random_range(0..=total) {
                h.pop_max(&act);
            }
            let n_vars = rng.random_range(1..=total);
            let mut restored = h.clone();
            restored.restore(&act, n_vars);
            let mut rebuilt = h;
            rebuilt.rebuild(&act, n_vars);
            let drain = |mut h: OrderHeap| {
                let mut out = Vec::new();
                while let Some(v) = h.pop_max(&act) {
                    out.push(v);
                }
                out
            };
            assert_eq!(drain(restored), drain(rebuilt), "round {round}");
        }
    }
}
