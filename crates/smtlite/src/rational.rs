use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Error returned by the checked [`Rat`] operations when a result does
/// not fit `i128`. The simplex routes its pivot arithmetic through the
/// checked ops so a pathological (huge-coefficient) instance degrades
/// into a reported error instead of panicking mid-scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatOverflow;

impl fmt::Display for RatOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rational arithmetic overflow (result exceeds i128)")
    }
}

impl std::error::Error for RatOverflow {}

/// An exact rational number over `i128`.
///
/// Always stored normalized: `gcd(num, den) == 1`, `den > 0`. The simplex
/// tableau pivots on these; exactness is what keeps hull-boundary
/// constraints from mis-classifying points the way floats would.
///
/// # Panics
///
/// The operator impls (`+`, `-`, `*`, `/`) panic on `i128` overflow
/// (checked internally). The SHATTER encodings use small coefficients
/// (minutes, half-plane coefficients from minute-scale hulls), far inside
/// the safe range. Callers that must survive adversarial magnitudes use
/// the non-panicking [`Rat::try_add`] / [`Rat::try_sub`] /
/// [`Rat::try_mul`] / [`Rat::try_div`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Integer constant.
    pub const fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Converts a finite `f64` with limited precision (6 decimal places) —
    /// used to import hull coordinates, which are minute-valued anyway.
    ///
    /// # Panics
    ///
    /// Panics on NaN/infinite input.
    pub fn from_f64_approx(x: f64) -> Rat {
        assert!(x.is_finite(), "cannot convert non-finite float");
        const SCALE: f64 = 1e6;
        Rat::new((x * SCALE).round() as i128, SCALE as i128)
    }

    /// Numerator (normalized).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (normalized, always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Conversion to `f64` (may round).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True iff the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// True iff the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn checked(num: Option<i128>, den: Option<i128>) -> Rat {
        let (Some(n), Some(d)) = (num, den) else {
            panic!("rational arithmetic overflow");
        };
        Rat::new(n, d)
    }

    fn try_checked(num: Option<i128>, den: Option<i128>) -> Result<Rat, RatOverflow> {
        match (num, den) {
            (Some(n), Some(d)) => Ok(Rat::new(n, d)),
            _ => Err(RatOverflow),
        }
    }

    /// Non-panicking addition: `Err(RatOverflow)` if the result cannot be
    /// represented over `i128`.
    pub fn try_add(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        let g = gcd(self.den, rhs.den).max(1);
        let lb = self.den / g;
        let rb = rhs.den / g;
        Rat::try_checked(
            self.num
                .checked_mul(rb)
                .and_then(|x| rhs.num.checked_mul(lb).and_then(|y| x.checked_add(y))),
            self.den.checked_mul(rb),
        )
    }

    /// Non-panicking subtraction; see [`Rat::try_add`].
    pub fn try_sub(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        self.try_add(-rhs)
    }

    /// Non-panicking multiplication; see [`Rat::try_add`].
    pub fn try_mul(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rat::try_checked(
            (self.num / g1).checked_mul(rhs.num / g2),
            (self.den / g2).checked_mul(rhs.den / g1),
        )
    }

    /// Non-panicking division. Returns `Err(RatOverflow)` on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero (a logic error, not a magnitude one).
    pub fn try_div(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        self.try_mul(rhs.recip())
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // a/b + c/d = (a*d + c*b) / (b*d), reduced via gcd(b, d) first.
        let g = gcd(self.den, rhs.den).max(1);
        let lb = self.den / g;
        let rb = rhs.den / g;
        Rat::checked(
            self.num
                .checked_mul(rb)
                .and_then(|x| rhs.num.checked_mul(lb).and_then(|y| x.checked_add(y))),
            self.den.checked_mul(rb),
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rat::checked(
            (self.num / g1).checked_mul(rhs.num / g2),
            (self.den / g2).checked_mul(rhs.den / g1),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        #[allow(clippy::suspicious_arithmetic_impl)]
        {
            self * rhs.recip()
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Compare a/b vs c/d  <=>  a*d vs c*b (b, d > 0).
        let left = self.num.checked_mul(other.den);
        let right = other.num.checked_mul(self.den);
        match (left, right) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Fall back to float comparison on overflow (distant values).
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n as i128)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(3, 9), Rat::new(1, 3));
    }

    #[test]
    fn from_f64_roundtrip_on_minutes() {
        for v in [0.0, 1.0, 719.5, 1440.0, -3.25] {
            assert!((Rat::from_f64_approx(v).to_f64() - v).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_reciprocal_panics() {
        let _ = Rat::ZERO.recip();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rat::int(5).to_string(), "5");
        assert_eq!(Rat::new(1, 2).to_string(), "1/2");
        assert_eq!(Rat::new(-3, 6).to_string(), "-1/2");
    }

    #[test]
    fn checked_ops_agree_with_panicking_ops_in_range() {
        let vals = [Rat::new(1, 3), Rat::new(-7, 5), Rat::int(12), Rat::ZERO];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(a.try_add(b), Ok(a + b));
                assert_eq!(a.try_sub(b), Ok(a - b));
                assert_eq!(a.try_mul(b), Ok(a * b));
                if !b.is_zero() {
                    assert_eq!(a.try_div(b), Ok(a / b));
                }
            }
        }
    }

    #[test]
    fn checked_ops_report_overflow_on_near_overflow_coefficients() {
        // Coprime near-max numerator/denominator pairs: any cross product
        // blows past i128. The panicking path would abort the process;
        // the checked path must surface RatOverflow instead.
        let huge = Rat::new(i128::MAX - 1, 3);
        let tiny = Rat::new(2, i128::MAX - 24); // i128::MAX - 24 is coprime to 2
        assert_eq!(huge.try_mul(huge), Err(RatOverflow));
        assert_eq!(huge.try_add(tiny), Err(RatOverflow));
        assert_eq!(huge.try_sub(-tiny), Err(RatOverflow));
        assert_eq!(huge.try_div(tiny), Err(RatOverflow));
        // Same magnitudes stay fine when the gcd reduction rescues them.
        assert_eq!(huge.try_sub(huge), Ok(Rat::ZERO));
        assert_eq!(huge.try_div(huge), Ok(Rat::ONE));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn try_div_by_zero_panics() {
        let _ = Rat::ONE.try_div(Rat::ZERO);
    }

    #[test]
    fn field_axioms_spot_checks() {
        let vals = [
            Rat::new(1, 2),
            Rat::new(-3, 7),
            Rat::int(4),
            Rat::ZERO,
            Rat::new(22, 7),
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                assert_eq!(a + Rat::ZERO, a);
                assert_eq!(a * Rat::ONE, a);
                assert_eq!(a - a, Rat::ZERO);
                for &c in &vals {
                    assert_eq!((a + b) + c, a + (b + c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }
}
