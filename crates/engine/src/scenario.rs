//! The [`Scenario`] abstraction and the scenario [`Registry`].
//!
//! A scenario is a named, self-describing evaluation workload producing
//! a [`Table`]. Scenarios receive a [`ScenarioCtx`] carrying the shared
//! [`FixtureCache`], the run parameters (days/span), and a deterministic
//! per-scenario RNG seed, so the same registry run with any thread count
//! yields identical tables.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shatter_adm::{AdmKind, HullAdm};
use shatter_dataset::episodes::Episode;
use shatter_dataset::{Dataset, HouseSpec};

use crate::fixtures::{FixtureCache, HouseFixture};
use crate::pool::WorkPool;
use crate::table::Table;

/// Shared run parameters every scenario sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Dataset length in days for month-scale exhibits.
    pub days: usize,
    /// Minutes-long window for the scalability exhibits.
    pub span: usize,
    /// Base seed mixed into each scenario's deterministic seed.
    pub base_seed: u64,
}

impl Default for RunParams {
    fn default() -> RunParams {
        RunParams {
            days: 30,
            span: 60,
            base_seed: 0,
        }
    }
}

/// Thread-safe collector of degradation notes for one scenario run.
///
/// Scenario code calls [`HealthSink::note_degraded`] when a result is
/// best-effort rather than exact — e.g. solver windows that exhausted
/// their deterministic budget — and the runner turns a non-empty sink
/// into `ScenarioStatus::Degraded` on the scenario's report. Cloning is
/// cheap; clones share the note list (so `par_map` workers can report).
#[derive(Clone, Debug, Default)]
pub struct HealthSink {
    notes: Arc<Mutex<Vec<String>>>,
    retried: Arc<AtomicU64>,
    quarantined: Arc<AtomicU64>,
}

impl HealthSink {
    /// An empty sink.
    pub fn new() -> HealthSink {
        HealthSink::default()
    }

    /// Counts work items (fleet houses) that needed at least one retry
    /// before completing. Surfaces in `run_status.csv`'s `retried`
    /// column.
    pub fn add_retried(&self, n: u64) {
        self.retried.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts work items quarantined after exhausting their retry
    /// budget. Surfaces in `run_status.csv`'s `quarantined` column.
    pub fn add_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// Items retried so far.
    pub fn retried(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }

    /// Items quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Records one degradation note (deduplicated exact-match, so
    /// per-cell loops can report the same condition without flooding).
    pub fn note_degraded(&self, note: impl Into<String>) {
        let note = note.into();
        let mut notes = self.notes.lock().unwrap_or_else(|e| e.into_inner());
        if !notes.contains(&note) {
            notes.push(note);
        }
    }

    /// All notes recorded so far, in first-report order.
    pub fn notes(&self) -> Vec<String> {
        self.notes.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Whether any degradation was reported.
    pub fn is_degraded(&self) -> bool {
        !self
            .notes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }
}

/// Execution context handed to [`Scenario::run`].
pub struct ScenarioCtx<'a> {
    /// The shared fixture cache.
    pub cache: &'a FixtureCache,
    /// Run parameters.
    pub params: RunParams,
    /// Deterministic per-scenario seed (`fnv1a(id) ^ base_seed`).
    pub seed: u64,
    /// Slot budget shared with the runner for intra-scenario parallelism
    /// (see [`ScenarioCtx::par_map`]).
    pub pool: WorkPool,
    /// Degradation reporting channel: notes recorded here surface as the
    /// scenario's `Degraded` status in the run report.
    pub health: HealthSink,
}

impl ScenarioCtx<'_> {
    /// Maps `f` over independent work items (capability cells, days,
    /// sweep points...) on the caller plus however many helper threads
    /// the run's shared slot budget can lend right now. Results come
    /// back in submission order and per-item work must derive any
    /// randomness from [`ScenarioCtx::item_seed`], so the produced table
    /// is byte-identical across `--threads` settings.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Helper threads are fresh OS threads with empty fault TLS:
        // re-establish the submitting thread's scenario scope inside
        // each worker so per-scenario fault rules keep matching (and
        // their hit counters stay deterministic in serial runs).
        let scope = shatter_faults::current_scenario();
        self.pool.par_map(items, |i, t| {
            shatter_faults::scoped(scope.as_deref(), || f(i, t))
        })
    }

    /// A [`shatter_core::BatchExecutor`] drawing on this run's shared
    /// slot budget, with the current fault scenario captured for
    /// re-arming inside workers. Hand it to
    /// `shatter_core::schedule_day_batched` (or the SMT scheduler's
    /// batched entry points) to fan occupant window chains and portfolio
    /// race attempts out across the pool while keeping tables
    /// byte-identical across `--threads` settings.
    pub fn batch_executor(&self) -> crate::pool::PoolExecutor {
        crate::pool::PoolExecutor::new(self.pool.clone())
    }

    /// Deterministic seed for parallel work item `index`: a splitmix64
    /// mix of the scenario seed and the index, stable across thread
    /// counts and sibling items.
    pub fn item_seed(&self, index: usize) -> u64 {
        let mut x = self
            .seed
            .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Convenience: `days` from the run parameters.
    pub fn days(&self) -> usize {
        self.params.days
    }

    /// Convenience: `span` from the run parameters.
    pub fn span(&self) -> usize {
        self.params.span
    }

    /// Dataset seed for a house in this run: the spec's canonical seed
    /// XORed with the run's `base_seed`, so `--seed` regenerates every
    /// fixture while `base_seed == 0` keeps the canonical months
    /// byte-stable.
    pub fn dataset_seed(&self, spec: &HouseSpec) -> u64 {
        crate::fixtures::canonical_seed(spec) ^ self.params.base_seed
    }

    /// Cached fixture for `(spec, days)` under this run's dataset seed.
    pub fn fixture(&self, spec: &HouseSpec, days: usize) -> Arc<HouseFixture> {
        self.cache
            .fixture_with_seed(spec, days, self.dataset_seed(spec))
    }

    /// Cached dataset for `(spec, days)` under this run's dataset seed.
    pub fn dataset(&self, spec: &HouseSpec, days: usize) -> Arc<Dataset> {
        Arc::clone(&self.fixture(spec, days).month)
    }

    /// Cached episode extraction for this run's `(spec, days)` dataset.
    pub fn episodes(&self, spec: &HouseSpec, days: usize) -> Arc<Vec<Episode>> {
        self.cache
            .episodes_with_seed(spec, days, self.dataset_seed(spec))
    }

    /// Cached ADM trained on the first `train_days` days of this run's
    /// `(spec, days)` dataset.
    pub fn adm(
        &self,
        spec: &HouseSpec,
        days: usize,
        adm_kind: AdmKind,
        train_days: usize,
    ) -> Arc<HullAdm> {
        self.cache
            .adm_with_seed(spec, days, self.dataset_seed(spec), adm_kind, train_days)
    }
}

/// A named evaluation workload.
pub trait Scenario: Send + Sync {
    /// Stable identifier (`"fig11"`, `"tab5"`, ...).
    fn id(&self) -> &str;

    /// One-line human title.
    fn title(&self) -> &str;

    /// Longer description for `--list` output.
    fn description(&self) -> &str {
        ""
    }

    /// Whether the produced table is byte-identical across runs and
    /// thread counts. Timing-measuring scenarios return `false`.
    fn deterministic(&self) -> bool {
        true
    }

    /// Produces the exhibit table.
    fn run(&self, cx: &ScenarioCtx<'_>) -> Table;
}

type ScenarioFn = Box<dyn Fn(&ScenarioCtx<'_>) -> Table + Send + Sync>;

/// Adapter building a [`Scenario`] from a closure — the ~5-line path for
/// registering a new workload.
pub struct FnScenario {
    id: &'static str,
    title: &'static str,
    description: &'static str,
    deterministic: bool,
    f: ScenarioFn,
}

impl FnScenario {
    /// Builds a deterministic scenario from a closure.
    pub fn new(
        id: &'static str,
        title: &'static str,
        f: impl Fn(&ScenarioCtx<'_>) -> Table + Send + Sync + 'static,
    ) -> FnScenario {
        FnScenario {
            id,
            title,
            description: "",
            deterministic: true,
            f: Box::new(f),
        }
    }

    /// Sets the long description.
    pub fn describe(mut self, description: &'static str) -> FnScenario {
        self.description = description;
        self
    }

    /// Marks the scenario output as timing-dependent (not byte-stable).
    pub fn nondeterministic(mut self) -> FnScenario {
        self.deterministic = false;
        self
    }
}

impl Scenario for FnScenario {
    fn id(&self) -> &str {
        self.id
    }

    fn title(&self) -> &str {
        self.title
    }

    fn description(&self) -> &str {
        self.description
    }

    fn deterministic(&self) -> bool {
        self.deterministic
    }

    fn run(&self, cx: &ScenarioCtx<'_>) -> Table {
        (self.f)(cx)
    }
}

/// Ordered collection of registered scenarios.
#[derive(Default, Clone)]
pub struct Registry {
    items: Vec<Arc<dyn Scenario>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a scenario at the end of the order.
    ///
    /// # Panics
    ///
    /// Panics when another scenario with the same id is already present.
    pub fn register(&mut self, scenario: impl Scenario + 'static) {
        self.register_arc(Arc::new(scenario));
    }

    /// Registers an already-shared scenario.
    ///
    /// # Panics
    ///
    /// Panics when another scenario with the same id is already present.
    pub fn register_arc(&mut self, scenario: Arc<dyn Scenario>) {
        assert!(
            self.get(scenario.id()).is_none(),
            "duplicate scenario id {:?}",
            scenario.id()
        );
        self.items.push(scenario);
    }

    /// Looks up a scenario by id.
    pub fn get(&self, id: &str) -> Option<Arc<dyn Scenario>> {
        self.items.iter().find(|s| s.id() == id).cloned()
    }

    /// All scenarios in registration order.
    pub fn all(&self) -> Vec<Arc<dyn Scenario>> {
        self.items.clone()
    }

    /// Scenarios selected by id, in registration order.
    ///
    /// # Errors
    ///
    /// Returns *every* unknown id (in request order, deduplicated), so a
    /// caller with several typos sees them all in one round trip.
    pub fn select(&self, ids: &[String]) -> Result<Vec<Arc<dyn Scenario>>, Vec<String>> {
        let mut unknown: Vec<String> = Vec::new();
        for id in ids {
            if self.get(id).is_none() && !unknown.contains(id) {
                unknown.push(id.clone());
            }
        }
        if !unknown.is_empty() {
            return Err(unknown);
        }
        Ok(self
            .items
            .iter()
            .filter(|s| ids.iter().any(|id| id == s.id()))
            .cloned()
            .collect())
    }

    /// Registered ids in order.
    pub fn ids(&self) -> Vec<String> {
        self.items.iter().map(|s| s.id().to_string()).collect()
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// FNV-1a hash of a string (also shards the fixture cache's memo map).
/// Delegates to the workspace's single pinned implementation in
/// `shatter-store` — scenario seeds are content addresses too.
pub(crate) fn fnv1a(s: &str) -> u64 {
    shatter_store::fnv::fnv1a_str(s)
}

/// FNV-1a hash of a scenario id, mixed with the base seed to give each
/// scenario an independent deterministic RNG stream.
pub fn scenario_seed(id: &str, base_seed: u64) -> u64 {
    fnv1a(id) ^ base_seed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(id: &'static str) -> FnScenario {
        FnScenario::new(id, "t", |_cx| Table::new(id, "t", &["c"]))
    }

    #[test]
    fn register_select_preserves_order() {
        let mut reg = Registry::new();
        reg.register(trivial("a"));
        reg.register(trivial("b"));
        reg.register(trivial("c"));
        let sel = reg
            .select(&["c".to_string(), "a".to_string()])
            .expect("known ids");
        let ids: Vec<&str> = sel.iter().map(|s| s.id()).collect();
        assert_eq!(ids, ["a", "c"]);
        match reg.select(&["zzz".to_string(), "a".to_string(), "yyy".to_string()]) {
            Err(bad) => assert_eq!(bad, ["zzz", "yyy"], "every unknown id is reported"),
            Ok(_) => panic!("unknown id accepted"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate scenario id")]
    fn duplicate_id_rejected() {
        let mut reg = Registry::new();
        reg.register(trivial("a"));
        reg.register(trivial("a"));
    }

    #[test]
    fn seeds_differ_by_id_and_base() {
        assert_ne!(scenario_seed("fig3", 0), scenario_seed("fig4", 0));
        assert_ne!(scenario_seed("fig3", 0), scenario_seed("fig3", 1));
        assert_eq!(scenario_seed("fig3", 7), scenario_seed("fig3", 7));
    }
}
