//! The [`WorkPool`]: one global slot budget shared between the scenario
//! runner and intra-scenario parallelism.
//!
//! The runner sizes the budget to the configured thread count and holds
//! one slot per worker; everything left over is lendable to scenarios
//! through [`WorkPool::par_map`] (surfaced as `ScenarioCtx::par_map`).
//! Retiring runner workers hand their slot back, so a heavy scenario
//! that outlives the rest of the suite widens automatically — and nested
//! parallelism can never oversubscribe the machine, because every helper
//! thread anywhere is backed by a slot from the same budget.
//!
//! `par_map` writes results by item index and the caller always
//! participates, so the item→result mapping is independent of how many
//! helpers the budget lends at that moment: output is byte-identical
//! across `--threads` settings (and across racing sibling scenarios).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use shatter_core::{BatchExecutor, SmtStats, WindowSolution};
use shatter_smarthome::ZoneId;

/// Returns borrowed slots on drop — including during a panic unwind, so
/// a panicking work item can never leak its helpers out of the budget
/// (the leak would starve, and eventually deadlock, sibling scenarios).
struct SlotGuard<'a> {
    pool: &'a WorkPool,
    n: usize,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.pool.release(self.n);
    }
}

/// Shared budget of borrowable helper slots. Cloning is cheap and all
/// clones draw on the same budget.
#[derive(Clone, Debug, Default)]
pub struct WorkPool {
    extra: Arc<AtomicUsize>,
}

impl WorkPool {
    /// A pool lending up to `extra_slots` helper threads.
    pub fn new(extra_slots: usize) -> WorkPool {
        WorkPool {
            extra: Arc::new(AtomicUsize::new(extra_slots)),
        }
    }

    /// A pool that never lends a helper: every [`WorkPool::par_map`]
    /// runs serially on the caller.
    pub fn serial() -> WorkPool {
        WorkPool::new(0)
    }

    /// Helper slots currently borrowable.
    pub fn available(&self) -> usize {
        self.extra.load(Ordering::Relaxed)
    }

    /// Borrows up to `want` helper slots without blocking, returning how
    /// many were obtained. Pair with [`WorkPool::release`].
    pub fn acquire_up_to(&self, want: usize) -> usize {
        let mut cur = self.extra.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.extra.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    /// Returns `n` borrowed slots to the budget (also used by runner
    /// workers handing their own slot back as they retire).
    pub fn release(&self, n: usize) {
        self.extra.fetch_add(n, Ordering::AcqRel);
    }

    /// Maps `f` over `items` on the caller plus up to `items.len() - 1`
    /// borrowed helper threads, returning results in submission order.
    ///
    /// `f` receives `(index, &item)`; derive any per-item randomness from
    /// the index (e.g. `ScenarioCtx::item_seed`), never from thread
    /// identity, and the output is byte-identical for every budget size —
    /// including zero, where the call degenerates to a serial map.
    ///
    /// A grant of exactly one helper slot is returned unused and the map
    /// runs inline: on an oversubscribed or single-CPU host the spawn +
    /// per-item synchronization of a lone helper costs more than the
    /// second lane buys (the `strategies` exhibit measured *slower*
    /// parallel than serial on the 1-CPU container), and the
    /// `inline_and_pooled_par_map_byte_identical` test pins that both
    /// paths produce identical output, so the cutover is free.
    ///
    /// # Fault isolation
    ///
    /// Every work item runs under `catch_unwind`: a panicking item stops
    /// further pickup, the borrowed helper slots go back to the budget
    /// (guard-backed — returned even while the panic unwinds), and the
    /// *first* panic payload is re-raised on the caller once all workers
    /// have parked. A panic can therefore never leak slots or strand
    /// sibling scenarios waiting on the shared budget.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let helpers = if n > 2 { self.acquire_up_to(n - 1) } else { 0 };
        if helpers == 1 {
            self.release(1);
        }
        if helpers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let guard = SlotGuard {
            pool: self,
            n: helpers,
        };
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(n, || None);
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        {
            let next = AtomicUsize::new(0);
            let stop = AtomicBool::new(false);
            let slots_shared = Mutex::new(&mut slots);
            let worker = || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                    Ok(r) => {
                        slots_shared.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(r);
                    }
                    Err(payload) => {
                        stop.store(true, Ordering::Relaxed);
                        let mut first = panicked.lock().unwrap_or_else(|e| e.into_inner());
                        if first.is_none() {
                            *first = Some(payload);
                        }
                    }
                }
            };
            std::thread::scope(|scope| {
                for _ in 0..helpers {
                    // The closure only captures references, so it is Copy
                    // and each helper gets its own handle.
                    scope.spawn(worker);
                }
                worker();
            });
        }
        drop(guard);
        if let Some(payload) = panicked.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|r| r.expect("par_map slot filled"))
            .collect()
    }
}

/// [`BatchExecutor`] backed by the run's shared [`WorkPool`]: occupant
/// window chains and portfolio race attempts fan out across borrowed
/// helper slots (the caller always participates, so a zero-slot budget
/// degrades to the serial reference path).
///
/// Construction captures the fault scenario armed on the creating thread
/// and re-arms it inside every worker, mirroring `ScenarioCtx::par_map`:
/// helper threads are fresh OS threads with empty fault TLS, and without
/// the re-arm a `smt.window` fault rule scoped to the running scenario
/// would silently stop matching inside batched chains.
///
/// Results come back in submission order and every job is a pure
/// function of its index, so schedules and statistics are byte-identical
/// to [`shatter_core::SerialExecutor`] at any budget size.
#[derive(Clone, Debug)]
pub struct PoolExecutor {
    pool: WorkPool,
    scenario: Option<String>,
}

impl PoolExecutor {
    /// An executor drawing on `pool`, with the current thread's fault
    /// scenario captured for re-arming in workers.
    pub fn new(pool: WorkPool) -> PoolExecutor {
        PoolExecutor {
            pool,
            scenario: shatter_faults::current_scenario(),
        }
    }

    fn run<R: Send>(&self, n: usize, job: &(dyn Fn(usize) -> R + Sync)) -> Vec<R> {
        let items: Vec<usize> = (0..n).collect();
        self.pool.par_map(&items, |_, &i| {
            shatter_faults::scoped(self.scenario.as_deref(), || job(i))
        })
    }
}

impl BatchExecutor for PoolExecutor {
    fn run_chains(
        &self,
        n: usize,
        job: &(dyn Fn(usize) -> (Vec<ZoneId>, SmtStats) + Sync),
    ) -> Vec<(Vec<ZoneId>, SmtStats)> {
        self.run(n, job)
    }

    fn run_attempts(
        &self,
        n: usize,
        job: &(dyn Fn(usize) -> WindowSolution + Sync),
    ) -> Vec<WindowSolution> {
        self.run(n, job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let pool = WorkPool::new(3);
        assert_eq!(pool.available(), 3);
        assert_eq!(pool.acquire_up_to(2), 2);
        assert_eq!(pool.acquire_up_to(5), 1);
        assert_eq!(pool.acquire_up_to(1), 0);
        pool.release(3);
        assert_eq!(pool.available(), 3);
        // Clones share the budget.
        let clone = pool.clone();
        assert_eq!(clone.acquire_up_to(3), 3);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn par_map_preserves_submission_order() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for extra in [0usize, 1, 3, 7] {
            let pool = WorkPool::new(extra);
            let got = pool.par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expect, "extra={extra}");
            assert_eq!(pool.available(), extra, "slots returned, extra={extra}");
        }
    }

    #[test]
    fn single_slot_grant_runs_inline_and_returns_the_slot() {
        let pool = WorkPool::new(1);
        let items: Vec<usize> = (0..16).collect();
        let main_thread = std::thread::current().id();
        let got = pool.par_map(&items, |_, &x| {
            // The lone helper slot must be declined: every item runs on
            // the calling thread.
            assert_eq!(std::thread::current().id(), main_thread);
            x + 1
        });
        assert_eq!(got, (1..=16).collect::<Vec<_>>());
        assert_eq!(pool.available(), 1, "declined slot must be returned");
    }

    #[test]
    fn inline_and_pooled_par_map_byte_identical() {
        // The same work item set must produce identical results whether
        // the map runs inline (0 or 1 slot) or across real helpers.
        let items: Vec<usize> = (0..64).collect();
        let run = |extra: usize| {
            let pool = WorkPool::new(extra);
            pool.par_map(&items, |i, &x| format!("{i}:{}", x * 31))
        };
        let inline = run(0);
        assert_eq!(inline, run(1), "single-slot (inline) path diverged");
        assert_eq!(inline, run(3), "pooled path diverged");
        assert_eq!(inline, run(16), "wide pooled path diverged");
    }

    #[test]
    fn par_map_never_exceeds_budget() {
        let pool = WorkPool::new(2); // caller + 2 helpers = 3 concurrent max
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        pool.par_map(&items, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn panicking_item_returns_every_slot_and_repropagates() {
        // Regression: a panicking worker used to unwind through
        // `thread::scope` past the release call, leaking its helper
        // slots from the shared budget for the rest of the process.
        let pool = WorkPool::new(3);
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |_, &x| {
                if x == 7 {
                    panic!("injected item failure");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "injected item failure");
        assert_eq!(pool.available(), 3, "budget must be whole after a panic");
        // The pool stays usable: the same call shape succeeds afterwards.
        let ok = pool.par_map(&items, |_, &x| x * 2);
        assert_eq!(ok[63], 126);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn nested_par_map_draws_on_the_same_budget() {
        let pool = WorkPool::new(4);
        let outer: Vec<usize> = (0..4).collect();
        let sums = pool.par_map(&outer, |_, &o| {
            let inner: Vec<usize> = (0..8).collect();
            pool.par_map(&inner, |_, &i| o * 100 + i)
                .iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..4).map(|o| o * 800 + 28).collect();
        assert_eq!(sums, expect);
        assert_eq!(pool.available(), 4);
    }
}
