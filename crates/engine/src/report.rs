//! Pluggable output sinks for runner results: aligned text, per-exhibit
//! CSV files, and JSON lines.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::runner::{RunOutcome, ScenarioReport};
use crate::table::{json_string, write_csv};

/// A sink consuming scenario reports as they are emitted, plus a final
/// run summary.
pub trait Reporter {
    /// Consumes one scenario's report.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the underlying sink.
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()>;

    /// Consumes the run summary after all scenarios.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the underlying sink.
    fn finish(&mut self, _outcome: &RunOutcome) -> io::Result<()> {
        Ok(())
    }
}

/// Renders aligned text tables plus a timing summary to a writer.
pub struct TextReporter<W: Write> {
    w: W,
}

impl<W: Write> TextReporter<W> {
    /// Builds a text reporter over any writer (e.g. stdout).
    pub fn new(w: W) -> TextReporter<W> {
        TextReporter { w }
    }
}

impl<W: Write> Reporter for TextReporter<W> {
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()> {
        writeln!(self.w, "{}", report.table.render())?;
        writeln!(
            self.w,
            "[{}] {:.2}s\n",
            report.id,
            report.wall.as_secs_f64()
        )
    }

    fn finish(&mut self, outcome: &RunOutcome) -> io::Result<()> {
        writeln!(
            self.w,
            "ran {} scenarios in {:.2}s wall ({:.2}s scenario-seconds) on {} thread(s); \
             fixture cache: {} hits / {} misses",
            outcome.reports.len(),
            outcome.total_wall.as_secs_f64(),
            outcome.scenario_wall_sum().as_secs_f64(),
            outcome.threads,
            outcome.cache.hits,
            outcome.cache.misses,
        )
    }
}

/// Writes each exhibit to `dir/<id>.csv`.
pub struct CsvReporter {
    dir: PathBuf,
    /// Paths written so far.
    pub written: Vec<PathBuf>,
}

impl CsvReporter {
    /// Builds a CSV reporter writing under `dir`.
    pub fn new(dir: &Path) -> CsvReporter {
        CsvReporter {
            dir: dir.to_path_buf(),
            written: Vec::new(),
        }
    }
}

impl Reporter for CsvReporter {
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()> {
        let path = write_csv(&report.table, &self.dir)?;
        self.written.push(path);
        Ok(())
    }
}

/// Emits one JSON object per scenario (JSON lines), then a summary
/// object with `"kind":"summary"`.
pub struct JsonLinesReporter<W: Write> {
    w: W,
}

impl<W: Write> JsonLinesReporter<W> {
    /// Builds a JSON-lines reporter over any writer.
    pub fn new(w: W) -> JsonLinesReporter<W> {
        JsonLinesReporter { w }
    }
}

impl<W: Write> Reporter for JsonLinesReporter<W> {
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()> {
        writeln!(
            self.w,
            "{{\"kind\":\"scenario\",\"id\":{},\"title\":{},\"deterministic\":{},\"wall_s\":{:.6},\"table\":{}}}",
            json_string(&report.id),
            json_string(&report.title),
            report.deterministic,
            report.wall.as_secs_f64(),
            report.table.to_json(),
        )
    }

    fn finish(&mut self, outcome: &RunOutcome) -> io::Result<()> {
        writeln!(
            self.w,
            "{{\"kind\":\"summary\",\"scenarios\":{},\"wall_s\":{:.6},\"scenario_wall_sum_s\":{:.6},\"threads\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
            outcome.reports.len(),
            outcome.total_wall.as_secs_f64(),
            outcome.scenario_wall_sum().as_secs_f64(),
            outcome.threads,
            outcome.cache.hits,
            outcome.cache.misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::CacheStats;
    use crate::table::Table;
    use std::time::Duration;

    fn outcome() -> RunOutcome {
        let mut t = Table::new("x", "X probe", &["v"]);
        t.push(vec!["1".into()]);
        RunOutcome {
            reports: vec![ScenarioReport {
                id: "x".into(),
                title: "X probe".into(),
                deterministic: true,
                wall: Duration::from_millis(1500),
                table: t,
            }],
            total_wall: Duration::from_secs(2),
            cache: CacheStats { hits: 3, misses: 1 },
            threads: 2,
        }
    }

    #[test]
    fn text_reporter_includes_summary() {
        let out = outcome();
        let mut buf = Vec::new();
        {
            let mut r = TextReporter::new(&mut buf);
            r.scenario(&out.reports[0]).unwrap();
            r.finish(&out).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("== x — X probe =="));
        assert!(s.contains("3 hits / 1 misses"));
    }

    #[test]
    fn json_lines_are_emitted_per_scenario() {
        let out = outcome();
        let mut buf = Vec::new();
        {
            let mut r = JsonLinesReporter::new(&mut buf);
            r.scenario(&out.reports[0]).unwrap();
            r.finish(&out).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"scenario\",\"id\":\"x\""));
        assert!(lines[1].contains("\"kind\":\"summary\""));
        assert!(lines[1].contains("\"cache_hits\":3"));
    }
}
