//! Pluggable output sinks for runner results: aligned text, per-exhibit
//! CSV files, and JSON lines.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::runner::{RunOutcome, ScenarioReport, ScenarioStatus};
use crate::table::{json_string, write_csv, Table};

/// A sink consuming scenario reports as they are emitted, plus a final
/// run summary.
pub trait Reporter {
    /// Consumes one scenario's report.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the underlying sink.
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()>;

    /// Consumes the run summary after all scenarios.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the underlying sink.
    fn finish(&mut self, _outcome: &RunOutcome) -> io::Result<()> {
        Ok(())
    }
}

/// Renders aligned text tables plus a timing summary to a writer.
pub struct TextReporter<W: Write> {
    w: W,
}

impl<W: Write> TextReporter<W> {
    /// Builds a text reporter over any writer (e.g. stdout).
    pub fn new(w: W) -> TextReporter<W> {
        TextReporter { w }
    }
}

impl<W: Write> Reporter for TextReporter<W> {
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()> {
        writeln!(self.w, "{}", report.table.render())?;
        // An Ok scenario renders exactly as before the dependability
        // layer existed: the status suffix appears only on non-Ok rows,
        // keeping clean-run output byte-identical.
        match &report.status {
            ScenarioStatus::Ok => writeln!(
                self.w,
                "[{}] {:.2}s\n",
                report.id,
                report.wall.as_secs_f64()
            ),
            ScenarioStatus::Degraded { notes } => writeln!(
                self.w,
                "[{}] {:.2}s — DEGRADED: {}\n",
                report.id,
                report.wall.as_secs_f64(),
                notes.join("; ")
            ),
            ScenarioStatus::Failed { cause } => writeln!(
                self.w,
                "[{}] {:.2}s — FAILED: {}\n",
                report.id,
                report.wall.as_secs_f64(),
                cause
            ),
        }
    }

    fn finish(&mut self, outcome: &RunOutcome) -> io::Result<()> {
        // Recap of non-Ok scenarios first (nothing extra on clean runs).
        for report in &outcome.reports {
            match &report.status {
                ScenarioStatus::Ok => {}
                ScenarioStatus::Degraded { notes } => {
                    writeln!(self.w, "DEGRADED {}: {}", report.id, notes.join("; "))?;
                }
                ScenarioStatus::Failed { cause } => {
                    writeln!(self.w, "FAILED {}: {}", report.id, cause)?;
                }
            }
        }
        writeln!(
            self.w,
            "ran {} scenarios in {:.2}s wall ({:.2}s scenario-seconds) on {} thread(s); \
             fixture cache: {} hits / {} misses ({} disk hits, {} evictions)",
            outcome.reports.len(),
            outcome.total_wall.as_secs_f64(),
            outcome.scenario_wall_sum().as_secs_f64(),
            outcome.threads,
            outcome.cache.hits,
            outcome.cache.misses,
            outcome.cache.disk_hits,
            outcome.cache.evictions,
        )
    }
}

/// Writes each exhibit to `dir/<id>.csv`.
pub struct CsvReporter {
    dir: PathBuf,
    /// Paths written so far.
    pub written: Vec<PathBuf>,
}

impl CsvReporter {
    /// Builds a CSV reporter writing under `dir`.
    pub fn new(dir: &Path) -> CsvReporter {
        CsvReporter {
            dir: dir.to_path_buf(),
            written: Vec::new(),
        }
    }
}

impl Reporter for CsvReporter {
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()> {
        let path = write_csv(&report.table, &self.dir)?;
        self.written.push(path);
        Ok(())
    }

    fn finish(&mut self, outcome: &RunOutcome) -> io::Result<()> {
        // Machine-readable status roll-up alongside the exhibit CSVs;
        // the per-exhibit files themselves are untouched by statuses.
        let mut status = Table::new(
            "run_status",
            "Per-scenario run status",
            &["scenario", "status", "retried", "quarantined", "detail"],
        );
        for report in &outcome.reports {
            let detail = match &report.status {
                ScenarioStatus::Ok => String::new(),
                ScenarioStatus::Degraded { notes } => notes.join("; "),
                ScenarioStatus::Failed { cause } => cause.clone(),
            };
            status.push(vec![
                report.id.clone(),
                report.status.label().to_string(),
                report.retried.to_string(),
                report.quarantined.to_string(),
                detail,
            ]);
        }
        let path = write_csv(&status, &self.dir)?;
        self.written.push(path);
        Ok(())
    }
}

/// Emits one JSON object per scenario (JSON lines), then a summary
/// object with `"kind":"summary"`.
pub struct JsonLinesReporter<W: Write> {
    w: W,
}

impl<W: Write> JsonLinesReporter<W> {
    /// Builds a JSON-lines reporter over any writer.
    pub fn new(w: W) -> JsonLinesReporter<W> {
        JsonLinesReporter { w }
    }
}

impl<W: Write> Reporter for JsonLinesReporter<W> {
    fn scenario(&mut self, report: &ScenarioReport) -> io::Result<()> {
        let status = match &report.status {
            ScenarioStatus::Ok => "\"status\":\"ok\"".to_string(),
            ScenarioStatus::Degraded { notes } => {
                let notes: Vec<String> = notes.iter().map(|n| json_string(n)).collect();
                format!("\"status\":\"degraded\",\"notes\":[{}]", notes.join(","))
            }
            ScenarioStatus::Failed { cause } => {
                format!("\"status\":\"failed\",\"cause\":{}", json_string(cause))
            }
        };
        writeln!(
            self.w,
            "{{\"kind\":\"scenario\",\"id\":{},\"title\":{},\"deterministic\":{},\"wall_s\":{:.6},{status},\"table\":{}}}",
            json_string(&report.id),
            json_string(&report.title),
            report.deterministic,
            report.wall.as_secs_f64(),
            report.table.to_json(),
        )
    }

    fn finish(&mut self, outcome: &RunOutcome) -> io::Result<()> {
        writeln!(
            self.w,
            "{{\"kind\":\"summary\",\"scenarios\":{},\"wall_s\":{:.6},\"scenario_wall_sum_s\":{:.6},\"threads\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_disk_hits\":{},\"cache_evictions\":{}}}",
            outcome.reports.len(),
            outcome.total_wall.as_secs_f64(),
            outcome.scenario_wall_sum().as_secs_f64(),
            outcome.threads,
            outcome.cache.hits,
            outcome.cache.misses,
            outcome.cache.disk_hits,
            outcome.cache.evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::CacheStats;
    use crate::table::Table;
    use std::time::Duration;

    fn outcome() -> RunOutcome {
        let mut t = Table::new("x", "X probe", &["v"]);
        t.push(vec!["1".into()]);
        RunOutcome {
            reports: vec![ScenarioReport {
                id: "x".into(),
                title: "X probe".into(),
                deterministic: true,
                wall: Duration::from_millis(1500),
                table: t,
                status: ScenarioStatus::Ok,
                retried: 0,
                quarantined: 0,
            }],
            total_wall: Duration::from_secs(2),
            cache: CacheStats {
                hits: 3,
                misses: 1,
                disk_hits: 2,
                evictions: 1,
            },
            threads: 2,
        }
    }

    #[test]
    fn text_reporter_includes_summary() {
        let out = outcome();
        let mut buf = Vec::new();
        {
            let mut r = TextReporter::new(&mut buf);
            r.scenario(&out.reports[0]).unwrap();
            r.finish(&out).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("== x — X probe =="));
        assert!(s.contains("3 hits / 1 misses (2 disk hits, 1 evictions)"));
    }

    #[test]
    fn json_lines_are_emitted_per_scenario() {
        let out = outcome();
        let mut buf = Vec::new();
        {
            let mut r = JsonLinesReporter::new(&mut buf);
            r.scenario(&out.reports[0]).unwrap();
            r.finish(&out).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"scenario\",\"id\":\"x\""));
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[1].contains("\"kind\":\"summary\""));
        assert!(lines[1].contains("\"cache_hits\":3"));
        assert!(lines[1].contains("\"cache_disk_hits\":2"));
        assert!(lines[1].contains("\"cache_evictions\":1"));
    }

    #[test]
    fn non_ok_statuses_render_in_text_and_json() {
        let mut out = outcome();
        out.reports[0].status = ScenarioStatus::Failed {
            cause: "boom".into(),
        };
        let mut degraded = out.reports[0].clone();
        degraded.id = "y".into();
        degraded.status = ScenarioStatus::Degraded {
            notes: vec!["budget exhausted".into()],
        };
        out.reports.push(degraded);

        let mut buf = Vec::new();
        {
            let mut r = TextReporter::new(&mut buf);
            for report in &out.reports {
                r.scenario(report).unwrap();
            }
            r.finish(&out).unwrap();
        }
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("— FAILED: boom"));
        assert!(s.contains("— DEGRADED: budget exhausted"));
        assert!(s.contains("FAILED x: boom"));
        assert!(s.contains("DEGRADED y: budget exhausted"));

        let mut buf = Vec::new();
        {
            let mut r = JsonLinesReporter::new(&mut buf);
            for report in &out.reports {
                r.scenario(report).unwrap();
            }
        }
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"status\":\"failed\",\"cause\":\"boom\""));
        assert!(s.contains("\"status\":\"degraded\",\"notes\":[\"budget exhausted\"]"));
    }

    #[test]
    fn csv_reporter_writes_run_status_rollup() {
        let mut out = outcome();
        out.reports[0].status = ScenarioStatus::Degraded {
            notes: vec!["partial".into()],
        };
        let dir = std::env::temp_dir().join(format!(
            "shatter-report-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        out.reports[0].retried = 2;
        out.reports[0].quarantined = 1;
        let mut r = CsvReporter::new(&dir);
        r.scenario(&out.reports[0]).unwrap();
        r.finish(&out).unwrap();
        let status_path = r
            .written
            .iter()
            .find(|p| p.file_name().is_some_and(|n| n == "run_status.csv"))
            .expect("run_status.csv written");
        let body = std::fs::read_to_string(status_path).unwrap();
        assert!(body.contains("scenario,status,retried,quarantined,detail"));
        assert!(body.contains("x,degraded,2,1,partial"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
