//! The tabular exhibit format scenarios produce: header plus string
//! rows, renderable as aligned text, CSV, or a JSON object.

use std::fmt::Write as _;
use std::path::Path;

/// A rendered exhibit: header row plus data rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Exhibit identifier, e.g. `"tab5"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// JSON object form: `{"id", "title", "header", "rows"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"id\":{},\"title\":{},\"header\":[{}],\"rows\":[",
            json_string(&self.id),
            json_string(&self.title),
            self.header
                .iter()
                .map(|h| json_string(h))
                .collect::<Vec<_>>()
                .join(",")
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(
                &row.iter()
                    .map(|c| json_string(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes and quotes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes a table's CSV under `dir/<id>.csv`.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_csv(table: &Table, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", table.id));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "Sample", &["a", "b"]);
        t.push(vec!["1".into(), "x\"y".into()]);
        t
    }

    #[test]
    fn render_and_csv() {
        let t = sample();
        assert!(t.render().contains("== t1 — Sample =="));
        assert!(t.to_csv().starts_with("a,b\n"));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = sample().to_json();
        assert!(j.contains("\"x\\\"y\""), "{j}");
        assert!(j.starts_with("{\"id\":\"t1\""));
    }
}
