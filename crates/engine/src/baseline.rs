//! Machine-readable performance baseline: serial-uncached vs
//! parallel-cached execution of a scenario set (the `BENCH_engine.json`
//! artifact).
//!
//! The serial-uncached leg reproduces the pre-engine evaluation harness
//! (one fresh fixture world per exhibit, one thread); the
//! parallel-cached leg is the engine's normal mode (shared
//! [`FixtureCache`], worker pool).

use std::sync::Arc;
use std::time::Duration;

use crate::fixtures::{CacheStats, FixtureCache};
use crate::runner::{run_scenarios, RunConfig};
use crate::scenario::Scenario;
use crate::table::json_string;

/// Per-scenario timings of the two legs.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Scenario id.
    pub id: String,
    /// Wall-clock in the serial-uncached leg.
    pub serial_uncached: Duration,
    /// Wall-clock in the parallel-cached leg.
    pub parallel_cached: Duration,
}

/// The full baseline measurement.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Days parameter of the run.
    pub days: usize,
    /// Span parameter of the run.
    pub span: usize,
    /// Threads used in the parallel leg.
    pub threads: usize,
    /// Total wall-clock of the serial-uncached leg.
    pub serial_uncached_wall: Duration,
    /// Total wall-clock of the parallel-cached leg.
    pub parallel_cached_wall: Duration,
    /// Cache counters accumulated during the parallel-cached leg.
    pub cache: CacheStats,
    /// Per-scenario timings.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Wall-clock speedup of parallel+cached over serial+uncached.
    pub fn speedup(&self) -> f64 {
        let p = self.parallel_cached_wall.as_secs_f64();
        if p <= 0.0 {
            return f64::INFINITY;
        }
        self.serial_uncached_wall.as_secs_f64() / p
    }

    /// Renders as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"days\": {},\n", self.days));
        out.push_str(&format!("  \"span\": {},\n", self.span));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"serial_uncached_s\": {:.3},\n",
            self.serial_uncached_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"parallel_cached_s\": {:.3},\n",
            self.parallel_cached_wall.as_secs_f64()
        ));
        out.push_str(&format!("  \"speedup\": {:.2},\n", self.speedup()));
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"disk_hits\": {}, \"evictions\": {}, \"hit_rate\": {}}},\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.disk_hits,
            self.cache.evictions,
            self.cache
                .hit_rate()
                .map_or_else(|| "null".to_string(), |r| format!("{r:.3}"))
        ));
        out.push_str("  \"scenarios\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"serial_uncached_s\": {:.3}, \"parallel_cached_s\": {:.3}}}{}\n",
                json_string(&e.id),
                e.serial_uncached.as_secs_f64(),
                e.parallel_cached.as_secs_f64(),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures both legs over the same scenario set.
///
/// The serial leg hands every scenario a [`FixtureCache::disabled`]
/// cache — every fixture, model and memoized intermediate (schedules,
/// reward tables, benign day costs) is recomputed on demand, which is
/// exactly how the pre-engine ad-hoc harness executed — on one thread.
/// The parallel leg runs the engine's normal shared-cache pool with
/// `cfg.threads`.
pub fn measure(scenarios: &[Arc<dyn Scenario>], cfg: &RunConfig) -> Baseline {
    // Serial, uncached: memoization off, one thread.
    let mut serial = Vec::with_capacity(scenarios.len());
    let serial_start = std::time::Instant::now();
    for s in scenarios {
        let off = FixtureCache::disabled();
        let one = run_scenarios(
            std::slice::from_ref(s),
            &off,
            &RunConfig {
                threads: 1,
                params: cfg.params,
                fail_fast: cfg.fail_fast,
            },
        );
        serial.push(one.reports.into_iter().next().expect("one report"));
    }
    let serial_wall = serial_start.elapsed();

    // Parallel, cached.
    let shared = FixtureCache::new();
    let parallel = run_scenarios(scenarios, &shared, cfg);

    let entries = serial
        .iter()
        .zip(&parallel.reports)
        .map(|(s, p)| {
            debug_assert_eq!(s.id, p.id);
            BaselineEntry {
                id: s.id.clone(),
                serial_uncached: s.wall,
                parallel_cached: p.wall,
            }
        })
        .collect();

    Baseline {
        days: cfg.params.days,
        span: cfg.params.span,
        threads: parallel.threads,
        serial_uncached_wall: serial_wall,
        parallel_cached_wall: parallel.total_wall,
        cache: parallel.cache,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::CacheStats;

    #[test]
    fn json_shape_and_speedup() {
        let b = Baseline {
            days: 6,
            span: 20,
            threads: 4,
            serial_uncached_wall: Duration::from_secs(10),
            parallel_cached_wall: Duration::from_secs(4),
            cache: CacheStats {
                hits: 10,
                misses: 5,
                ..CacheStats::default()
            },
            entries: vec![BaselineEntry {
                id: "fig3".into(),
                serial_uncached: Duration::from_secs(2),
                parallel_cached: Duration::from_secs(1),
            }],
        };
        assert!((b.speedup() - 2.5).abs() < 1e-9);
        let j = b.to_json();
        assert!(j.contains("\"speedup\": 2.50"));
        assert!(j.contains("\"id\": \"fig3\""));
        assert!(j.contains("\"hit_rate\": 0.667"));
    }
}
