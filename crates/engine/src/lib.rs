//! `shatter-engine` — the evaluation substrate for the SHATTER
//! reproduction: a registry of [`Scenario`]s, a [`FixtureCache`] that
//! memoizes the dominant costs (dataset synthesis, episode extraction,
//! ADM training), a deterministic parallel [`runner`], and pluggable
//! [`report`]ers (text, CSV, JSON lines).
//!
//! Every paper exhibit (and every future workload) is a [`Scenario`]: a
//! named computation from a [`ScenarioCtx`] to a [`Table`]. Scenarios
//! pull shared fixtures through the cache instead of re-synthesizing
//! them, so a full-suite run pays each `(house, days, seed)` dataset and
//! each `(dataset, AdmKind, train_days)` model once, and the runner can
//! execute independent scenarios on parallel threads with per-scenario
//! deterministic RNG seeds.
//!
//! # Examples
//!
//! ```
//! use shatter_engine::{FixtureCache, FnScenario, Registry, RunConfig, Table};
//!
//! let mut reg = Registry::new();
//! reg.register(FnScenario::new("hello", "Trivial scenario", |cx| {
//!     let fx = cx.fixture(&shatter_dataset::HouseSpec::aras_a(), 2);
//!     let mut t = Table::new("hello", "Trivial scenario", &["days"]);
//!     t.push(vec![fx.month.days.len().to_string()]);
//!     t
//! }));
//! let cache = FixtureCache::new();
//! let out = shatter_engine::runner::run_scenarios(
//!     &reg.all(),
//!     &cache,
//!     &RunConfig::default(),
//! );
//! assert_eq!(out.reports.len(), 1);
//! assert_eq!(out.reports[0].table.rows[0][0], "2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod fixtures;
pub mod pool;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod table;

pub use fixtures::{
    disk_schema_sig, CacheStats, FixtureCache, HouseFixture, DISK_SCHEMA, HOUSE_A_SEED,
    HOUSE_B_SEED,
};
pub use pool::{PoolExecutor, WorkPool};
pub use report::{CsvReporter, JsonLinesReporter, Reporter, TextReporter};
pub use runner::{RunConfig, RunOutcome, ScenarioReport, ScenarioStatus};
pub use scenario::{FnScenario, HealthSink, Registry, RunParams, Scenario, ScenarioCtx};
pub use table::{write_csv, Table};
