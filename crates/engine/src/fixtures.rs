//! Shared evaluation fixtures and the memoizing [`FixtureCache`].
//!
//! Dataset synthesis, episode extraction and ADM training dominate the
//! cost of every exhibit; the cache keys them by `(HouseSpec signature,
//! days, seed)` and `(dataset key, AdmKind, train_days)` respectively so
//! a full-suite run pays each once. All entries are `Arc`-shared and the
//! cache is internally locked, so scenarios on parallel runner threads
//! share one cache safely. Any [`HouseSpec`] — the ARAS presets or a
//! generated scaled home — caches the same way; nothing here enumerates
//! houses.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shatter_adm::{AdmKind, HullAdm};
use shatter_dataset::episodes::{extract_episodes, Episode};
use shatter_dataset::{synthesize, Dataset, HouseSpec, SynthConfig};
use shatter_hvac::EnergyModel;
use shatter_smarthome::Home;

/// Seed of the canonical House-A month (same value as
/// [`shatter_dataset::spec::ARAS_A_SEED`]).
pub const HOUSE_A_SEED: u64 = shatter_dataset::spec::ARAS_A_SEED;
/// Seed of the canonical House-B month.
pub const HOUSE_B_SEED: u64 = shatter_dataset::spec::ARAS_B_SEED;

/// Canonical dataset seed of a house spec.
pub fn canonical_seed(spec: &HouseSpec) -> u64 {
    spec.canonical_seed
}

/// The canonical evaluation fixture for one house.
pub struct HouseFixture {
    /// House identity of this fixture.
    pub spec: HouseSpec,
    /// Days synthesized.
    pub days: usize,
    /// Dataset seed used.
    pub seed: u64,
    /// The home.
    pub home: Home,
    /// Canonical month of behaviour (shared with the cache).
    pub month: Arc<Dataset>,
    /// Energy/cost model.
    pub model: EnergyModel,
}

impl HouseFixture {
    /// Builds the fixture for a house with the canonical seed, outside
    /// any cache (each call re-synthesizes).
    pub fn new(spec: &HouseSpec, days: usize) -> HouseFixture {
        HouseFixture::with_seed(spec, days, canonical_seed(spec))
    }

    /// Builds the fixture with an explicit dataset seed.
    pub fn with_seed(spec: &HouseSpec, days: usize, seed: u64) -> HouseFixture {
        let home = spec.home.build();
        let month = Arc::new(synthesize(&SynthConfig::new(spec.clone(), days, seed)));
        let model = EnergyModel::standard(home.clone());
        HouseFixture {
            spec: spec.clone(),
            days,
            seed,
            home,
            month,
            model,
        }
    }

    /// Trains an ADM on the first `days` days of the month (defender
    /// view), outside any cache.
    pub fn adm(&self, kind: AdmKind, days: usize) -> HullAdm {
        HullAdm::train(&self.month.prefix_days(days), kind)
    }

    /// Memo-key fragment fully identifying this fixture's dataset:
    /// `"{label}-{spec signature:016x}/{days}/{seed}"`. Every schedule /
    /// reward-table / benign-cost memo key embeds it, so two specs
    /// sharing `days` and `seed` can never alias a cache entry.
    pub fn cache_key(&self) -> String {
        format!("{}/{}/{}", self.spec.cache_tag(), self.days, self.seed)
    }
}

/// Key of one synthesized dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DatasetKey {
    /// [`HouseSpec::signature`] of the house.
    sig: u64,
    days: usize,
    seed: u64,
}

impl DatasetKey {
    fn new(spec: &HouseSpec, days: usize, seed: u64) -> DatasetKey {
        DatasetKey {
            sig: spec.signature(),
            days,
            seed,
        }
    }
}

/// Hashable encoding of an [`AdmKind`] (f64 params by bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AdmKey {
    tag: u8,
    a: u64,
    b: u64,
    c: u64,
}

fn adm_key(kind: &AdmKind) -> AdmKey {
    match kind {
        AdmKind::Dbscan(p) => AdmKey {
            tag: 0,
            a: p.eps.to_bits(),
            b: p.min_pts as u64,
            c: 0,
        },
        AdmKind::KMeans(p) => AdmKey {
            tag: 1,
            a: p.k as u64,
            b: p.max_iter as u64,
            c: p.seed,
        },
    }
}

/// Hit/miss counters of a [`FixtureCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that computed and stored a fresh entry.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`, or `None` before any lookup — an empty
    /// cache has no rate, and reporting it as `0.0` used to make a
    /// fresh run indistinguishable from a 100%-miss run.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Memoizes dataset synthesis, fixture construction, episode extraction,
/// ADM training, and arbitrary keyed intermediates (via [`memo`]) across
/// scenarios.
///
/// A cache built with [`FixtureCache::disabled`] never stores or serves
/// entries — every request recomputes, reproducing the pre-engine
/// harness's cost model (used as the "serial uncached" baseline leg).
///
/// [`memo`]: FixtureCache::memo
pub struct FixtureCache {
    fixtures: Mutex<HashMap<DatasetKey, Arc<HouseFixture>>>,
    episodes: Mutex<HashMap<DatasetKey, Arc<Vec<Episode>>>>,
    adms: Mutex<HashMap<(DatasetKey, AdmKey, usize), Arc<HullAdm>>>,
    // The memo map carries the per-day schedule and SMT-window traffic
    // of every parallel scenario worker, so it is sharded by key hash to
    // keep lock contention off the hot path.
    memos: [Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>; MEMO_SHARDS],
    disabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Number of lock shards backing [`FixtureCache::memo`].
const MEMO_SHARDS: usize = 16;

/// Locks a cache map, panicking with the lookup context on poisoning.
///
/// Only pure `HashMap` operations run under cache locks (all expensive
/// computation happens outside them), so a poisoned lock indicates a
/// panic inside the map machinery itself. If that ever happens, the
/// panic names the map and the cache key involved, and the runner's
/// fault isolation turns it into a per-scenario `Failed` report instead
/// of tearing down the suite.
fn lock_map<'a, T>(
    lock: &'a Mutex<T>,
    map: &str,
    key: &dyn std::fmt::Debug,
) -> std::sync::MutexGuard<'a, T> {
    lock.lock()
        .unwrap_or_else(|_| panic!("{map} cache lock poisoned at key {key:?}"))
}

impl Default for FixtureCache {
    fn default() -> FixtureCache {
        FixtureCache {
            fixtures: Mutex::default(),
            episodes: Mutex::default(),
            adms: Mutex::default(),
            memos: std::array::from_fn(|_| Mutex::default()),
            disabled: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl FixtureCache {
    /// Creates an empty cache.
    pub fn new() -> FixtureCache {
        FixtureCache::default()
    }

    /// Creates a cache that never memoizes: every request recomputes and
    /// counts as a miss. Scenarios run against it exactly like the
    /// pre-engine ad-hoc harness.
    pub fn disabled() -> FixtureCache {
        FixtureCache {
            disabled: true,
            ..FixtureCache::default()
        }
    }

    /// Whether this cache is in the never-memoize mode.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Memoizes an arbitrary shared intermediate under a caller-chosen
    /// key. The key must capture *all* inputs of `compute` — scenarios
    /// build keys on [`HouseFixture::cache_key`], which embeds the house
    /// spec signature, days and seed (e.g.
    /// `"sched/{fixture key}/{adm}/{strategy}/{cap:x}/{day}"` for attack
    /// schedules). On a type mismatch for an existing key the value is
    /// recomputed and replaced.
    pub fn memo<T, F>(&self, key: &str, compute: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let shard = self.memo_shard(key);
        if !self.disabled {
            if let Some(v) = lock_map(shard, "memo", &key).get(key) {
                if let Ok(t) = Arc::clone(v).downcast::<T>() {
                    self.hit();
                    return t;
                }
            }
        }
        self.miss();
        let t = Arc::new(compute());
        if !self.disabled {
            lock_map(shard, "memo", &key).insert(
                key.to_string(),
                Arc::clone(&t) as Arc<dyn Any + Send + Sync>,
            );
        }
        t
    }

    /// The lock shard responsible for a memo key (FNV-1a of the key).
    fn memo_shard(&self, key: &str) -> &Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>> {
        &self.memos[(crate::scenario::fnv1a(key) as usize) % MEMO_SHARDS]
    }

    /// The canonical fixture for `(spec, days)` (canonical seed).
    pub fn fixture(&self, spec: &HouseSpec, days: usize) -> Arc<HouseFixture> {
        self.fixture_with_seed(spec, days, canonical_seed(spec))
    }

    /// The fixture for `(spec, days, seed)`.
    pub fn fixture_with_seed(&self, spec: &HouseSpec, days: usize, seed: u64) -> Arc<HouseFixture> {
        let key = DatasetKey::new(spec, days, seed);
        if !self.disabled {
            if let Some(fx) = lock_map(&self.fixtures, "fixture", &key).get(&key) {
                self.hit();
                return Arc::clone(fx);
            }
        }
        // Synthesize outside the lock: other keys stay available while
        // this month is built, and a racing duplicate insert is benign
        // (identical content, last writer wins).
        self.miss();
        let fx = Arc::new(HouseFixture::with_seed(spec, days, seed));
        if !self.disabled {
            lock_map(&self.fixtures, "fixture", &key).insert(key, Arc::clone(&fx));
        }
        fx
    }

    /// The dataset behind the canonical fixture.
    pub fn dataset(&self, spec: &HouseSpec, days: usize) -> Arc<Dataset> {
        Arc::clone(&self.fixture(spec, days).month)
    }

    /// Extracted episodes of the canonical `(spec, days)` dataset.
    pub fn episodes(&self, spec: &HouseSpec, days: usize) -> Arc<Vec<Episode>> {
        self.episodes_with_seed(spec, days, canonical_seed(spec))
    }

    /// Extracted episodes of the `(spec, days, seed)` dataset.
    pub fn episodes_with_seed(
        &self,
        spec: &HouseSpec,
        days: usize,
        seed: u64,
    ) -> Arc<Vec<Episode>> {
        let key = DatasetKey::new(spec, days, seed);
        if !self.disabled {
            if let Some(eps) = lock_map(&self.episodes, "episode", &key).get(&key) {
                self.hit();
                return Arc::clone(eps);
            }
        }
        self.miss();
        let fx = self.fixture_with_seed(spec, days, seed);
        let eps = Arc::new(extract_episodes(&fx.month));
        if !self.disabled {
            lock_map(&self.episodes, "episode", &key).insert(key, Arc::clone(&eps));
        }
        eps
    }

    /// A trained ADM for the canonical `(spec, days)` dataset: `adm_kind`
    /// trained on the first `train_days` days. Identical to
    /// `HouseFixture::adm` but memoized.
    pub fn adm(
        &self,
        spec: &HouseSpec,
        days: usize,
        adm_kind: AdmKind,
        train_days: usize,
    ) -> Arc<HullAdm> {
        self.adm_with_seed(spec, days, canonical_seed(spec), adm_kind, train_days)
    }

    /// A trained ADM for the `(spec, days, seed)` dataset.
    pub fn adm_with_seed(
        &self,
        spec: &HouseSpec,
        days: usize,
        seed: u64,
        adm_kind: AdmKind,
        train_days: usize,
    ) -> Arc<HullAdm> {
        let key = (
            DatasetKey::new(spec, days, seed),
            adm_key(&adm_kind),
            train_days,
        );
        if !self.disabled {
            if let Some(adm) = lock_map(&self.adms, "adm", &key).get(&key) {
                self.hit();
                return Arc::clone(adm);
            }
        }
        self.miss();
        let fx = self.fixture_with_seed(spec, days, seed);
        let adm = Arc::new(fx.adm(adm_kind, train_days));
        if !self.disabled {
            lock_map(&self.adms, "adm", &key).insert(key, Arc::clone(&adm));
        }
        adm
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_distinguishes_empty_from_all_miss() {
        assert_eq!(CacheStats::default().hit_rate(), None);
        assert_eq!(CacheStats { hits: 0, misses: 4 }.hit_rate(), Some(0.0));
        assert_eq!(
            CacheStats { hits: 2, misses: 1 }.hit_rate(),
            Some(2.0 / 3.0)
        );
        assert_eq!(CacheStats { hits: 5, misses: 0 }.hit_rate(), Some(1.0));
    }

    #[test]
    fn fixture_is_cached() {
        let cache = FixtureCache::new();
        let a = cache.fixture(&HouseSpec::aras_a(), 3);
        let b = cache.fixture(&HouseSpec::aras_a(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = FixtureCache::new();
        let a = cache.fixture(&HouseSpec::aras_a(), 3);
        let b = cache.fixture(&HouseSpec::aras_b(), 3);
        let c = cache.fixture(&HouseSpec::aras_a(), 4);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn specs_sharing_days_and_seed_never_alias() {
        // Regression for the latent memo key-collision risk: two house
        // specs with identical (days, seed) must resolve to different
        // fixture-cache entries AND different memo-key prefixes.
        let cache = FixtureCache::new();
        let s6 = HouseSpec::scaled(6, 2);
        let s10 = HouseSpec::scaled(10, 2);
        let a = cache.fixture_with_seed(&s6, 3, 5);
        let b = cache.fixture_with_seed(&s10, 3, 5);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.month, b.month);
        assert_ne!(a.cache_key(), b.cache_key());
        // Same shape, different occupant count: still distinct.
        let s6x3 = HouseSpec::scaled(6, 3);
        let c = cache.fixture_with_seed(&s6x3, 3, 5);
        assert_ne!(a.cache_key(), c.cache_key());
        // ARAS A vs B forced onto the same seed: distinct too.
        let fa = HouseFixture::with_seed(&HouseSpec::aras_a(), 2, 7);
        let fb = HouseFixture::with_seed(&HouseSpec::aras_b(), 2, 7);
        assert_ne!(fa.cache_key(), fb.cache_key());
    }

    #[test]
    fn cached_adm_matches_uncached_training() {
        let cache = FixtureCache::new();
        let spec = HouseSpec::aras_a();
        let cached = cache.adm(&spec, 4, AdmKind::default_kmeans(), 3);
        let again = cache.adm(&spec, 4, AdmKind::default_kmeans(), 3);
        assert!(Arc::ptr_eq(&cached, &again));
        let fx = HouseFixture::new(&spec, 4);
        let direct = fx.adm(AdmKind::default_kmeans(), 3);
        // HullAdm has no PartialEq and its Debug form iterates a hash
        // map; compare the learned geometry keyed and sorted instead.
        let geometry = |adm: &HullAdm| -> Vec<String> {
            let mut v: Vec<String> = adm
                .models()
                .map(|((o, z), zm)| format!("{}/{}: {zm:?}", o.index(), z.index()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(geometry(&cached), geometry(&direct));
    }

    #[test]
    fn memo_caches_by_key_and_recomputes_when_disabled() {
        let cache = FixtureCache::new();
        let a = cache.memo("k1", || 41usize + 1);
        let b = cache.memo("k1", || unreachable!("must be served from cache"));
        assert_eq!((*a, *b), (42, 42));
        assert!(Arc::ptr_eq(&a, &b));
        let other = cache.memo("k2", || 7usize);
        assert_eq!(*other, 7);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });

        let off = FixtureCache::disabled();
        assert!(off.is_disabled());
        let x = off.memo("k1", || 1usize);
        let y = off.memo("k1", || 2usize);
        assert_eq!((*x, *y), (1, 2));
        assert_eq!(off.stats().hits, 0);
        let f1 = off.fixture(&HouseSpec::aras_a(), 2);
        let f2 = off.fixture(&HouseSpec::aras_a(), 2);
        assert!(!Arc::ptr_eq(&f1, &f2));
    }

    #[test]
    fn episodes_cached_and_consistent() {
        let cache = FixtureCache::new();
        let spec = HouseSpec::aras_b();
        let e1 = cache.episodes(&spec, 2);
        let e2 = cache.episodes(&spec, 2);
        assert!(Arc::ptr_eq(&e1, &e2));
        let direct = extract_episodes(&HouseFixture::new(&spec, 2).month);
        assert_eq!(*e1, direct);
    }

    #[test]
    fn scaled_spec_fixtures_cache_like_preset_ones() {
        let cache = FixtureCache::new();
        let spec = HouseSpec::scaled(6, 3);
        let a = cache.fixture(&spec, 2);
        let b = cache.fixture(&spec, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.home.occupants().len(), 3);
        assert_eq!(a.month.n_occupants, 3);
    }
}
