//! Shared evaluation fixtures and the memoizing [`FixtureCache`].
//!
//! Dataset synthesis, episode extraction and ADM training dominate the
//! cost of every exhibit; the cache keys them by `(HouseSpec signature,
//! days, seed)` and `(dataset key, AdmKind, train_days)` respectively so
//! a full-suite run pays each once. All entries are `Arc`-shared and the
//! cache is internally locked, so scenarios on parallel runner threads
//! share one cache safely. Any [`HouseSpec`] — the ARAS presets or a
//! generated scaled home — caches the same way; nothing here enumerates
//! houses.

//! A [`BlobStore`] disk tier can sit underneath the whole cache
//! ([`FixtureCache::with_disk`]): misses serialize and persist what
//! they computed, and a warm second run deserializes datasets, episode
//! sets, trained ADMs and memoized intermediates instead of recomputing
//! them — with byte-identical results, because every payload travels
//! through the exact (bit-pattern) wire codec. Independently, a RAM
//! budget ([`FixtureCache::with_memory_budget`]) bounds resident bytes
//! with deterministic insertion-order eviction; evicted entries
//! refault through the disk tier (or recompute), so eviction moves
//! counters and wall-clock only, never results.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shatter_adm::{AdmKind, HullAdm};
use shatter_dataset::episodes::{extract_episodes, Episode};
use shatter_dataset::{
    episodes_from_blob, episodes_to_blob, synthesize, Dataset, HouseSpec, SynthConfig,
};
use shatter_hvac::EnergyModel;
use shatter_smarthome::Home;
use shatter_store::{Blob, BlobStore};

/// Schema string behind every fixture-store blob; bump when any
/// persisted encoding changes incompatibly (old blobs are then
/// discarded lazily instead of misdecoded).
pub const DISK_SCHEMA: &str = "shatter-fixture-store-v1";

/// The [`BlobStore`] schema signature for [`FixtureCache`] disk tiers.
pub fn disk_schema_sig() -> u64 {
    shatter_store::fnv::fnv1a_str(DISK_SCHEMA)
}

/// Seed of the canonical House-A month (same value as
/// [`shatter_dataset::spec::ARAS_A_SEED`]).
pub const HOUSE_A_SEED: u64 = shatter_dataset::spec::ARAS_A_SEED;
/// Seed of the canonical House-B month.
pub const HOUSE_B_SEED: u64 = shatter_dataset::spec::ARAS_B_SEED;

/// Canonical dataset seed of a house spec.
pub fn canonical_seed(spec: &HouseSpec) -> u64 {
    spec.canonical_seed
}

/// The canonical evaluation fixture for one house.
pub struct HouseFixture {
    /// House identity of this fixture.
    pub spec: HouseSpec,
    /// Days synthesized.
    pub days: usize,
    /// Dataset seed used.
    pub seed: u64,
    /// The home.
    pub home: Home,
    /// Canonical month of behaviour (shared with the cache).
    pub month: Arc<Dataset>,
    /// Energy/cost model.
    pub model: EnergyModel,
}

impl HouseFixture {
    /// Builds the fixture for a house with the canonical seed, outside
    /// any cache (each call re-synthesizes).
    pub fn new(spec: &HouseSpec, days: usize) -> HouseFixture {
        HouseFixture::with_seed(spec, days, canonical_seed(spec))
    }

    /// Builds the fixture with an explicit dataset seed.
    pub fn with_seed(spec: &HouseSpec, days: usize, seed: u64) -> HouseFixture {
        let home = spec.home.build();
        let month = Arc::new(synthesize(&SynthConfig::new(spec.clone(), days, seed)));
        let model = EnergyModel::standard(home.clone());
        HouseFixture {
            spec: spec.clone(),
            days,
            seed,
            home,
            month,
            model,
        }
    }

    /// Trains an ADM on the first `days` days of the month (defender
    /// view), outside any cache.
    pub fn adm(&self, kind: AdmKind, days: usize) -> HullAdm {
        HullAdm::train(&self.month.prefix_days(days), kind)
    }

    /// Memo-key fragment fully identifying this fixture's dataset:
    /// `"{label}-{spec signature:016x}/{days}/{seed}"`. Every schedule /
    /// reward-table / benign-cost memo key embeds it, so two specs
    /// sharing `days` and `seed` can never alias a cache entry.
    pub fn cache_key(&self) -> String {
        format!("{}/{}/{}", self.spec.cache_tag(), self.days, self.seed)
    }
}

/// Key of one synthesized dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DatasetKey {
    /// [`HouseSpec::signature`] of the house.
    sig: u64,
    days: usize,
    seed: u64,
}

impl DatasetKey {
    fn new(spec: &HouseSpec, days: usize, seed: u64) -> DatasetKey {
        DatasetKey {
            sig: spec.signature(),
            days,
            seed,
        }
    }
}

/// Hashable encoding of an [`AdmKind`] (f64 params by bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AdmKey {
    tag: u8,
    a: u64,
    b: u64,
    c: u64,
}

fn adm_key(kind: &AdmKind) -> AdmKey {
    match kind {
        AdmKind::Dbscan(p) => AdmKey {
            tag: 0,
            a: p.eps.to_bits(),
            b: p.min_pts as u64,
            c: 0,
        },
        AdmKind::KMeans(p) => AdmKey {
            tag: 1,
            a: p.k as u64,
            b: p.max_iter as u64,
            c: p.seed,
        },
    }
}

/// Hit/miss counters of a [`FixtureCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-RAM tier.
    pub hits: u64,
    /// Lookups that computed and stored a fresh entry.
    pub misses: u64,
    /// Lookups served by deserializing a disk-tier blob.
    pub disk_hits: u64,
    /// Entries evicted from RAM under the memory budget. A perf
    /// counter, never a correctness event: evicted entries refault
    /// through the disk tier or recompute.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (disk hits count as hits), or `None`
    /// before any lookup — an empty cache has no rate, and reporting
    /// it as `0.0` used to make a fresh run indistinguishable from a
    /// 100%-miss run.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.disk_hits + self.misses;
        (total > 0).then(|| (self.hits + self.disk_hits) as f64 / total as f64)
    }
}

/// Memoizes dataset synthesis, fixture construction, episode extraction,
/// ADM training, and arbitrary keyed intermediates (via [`memo`]) across
/// scenarios.
///
/// A cache built with [`FixtureCache::disabled`] never stores or serves
/// entries — every request recomputes, reproducing the pre-engine
/// harness's cost model (used as the "serial uncached" baseline leg).
///
/// [`memo`]: FixtureCache::memo
pub struct FixtureCache {
    fixtures: Mutex<HashMap<DatasetKey, Arc<HouseFixture>>>,
    episodes: Mutex<HashMap<DatasetKey, Arc<Vec<Episode>>>>,
    adms: Mutex<HashMap<(DatasetKey, AdmKey, usize), Arc<HullAdm>>>,
    // The memo map carries the per-day schedule and SMT-window traffic
    // of every parallel scenario worker, so it is sharded by key hash to
    // keep lock contention off the hot path.
    memos: [Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>; MEMO_SHARDS],
    disabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional disk tier; misses persist, refaults deserialize.
    disk: Option<BlobStore>,
    disk_hits: AtomicU64,
    /// Optional RAM budget in bytes (serialized sizes, a deliberate
    /// proxy for resident heap). `None` = unbounded.
    budget_bytes: Option<u64>,
    resident_bytes: AtomicU64,
    evictions: AtomicU64,
    /// Insertion-ordered eviction ledger over every budget-charged
    /// entry. Lock ordering: ledger before any map lock, never the
    /// reverse.
    ledger: Mutex<VecDeque<LedgerEntry>>,
}

/// Number of lock shards backing [`FixtureCache::memo`].
const MEMO_SHARDS: usize = 16;

/// Identifies one budget-charged cache entry for eviction.
#[derive(Debug, Clone)]
enum Resident {
    Fixture(DatasetKey),
    Episodes(DatasetKey),
    Adm(DatasetKey, AdmKey, usize),
    Memo(String),
}

#[derive(Debug)]
struct LedgerEntry {
    handle: Resident,
    bytes: u64,
}

/// Locks a cache map, panicking with the lookup context on poisoning.
///
/// Only pure `HashMap` operations run under cache locks (all expensive
/// computation happens outside them), so a poisoned lock indicates a
/// panic inside the map machinery itself. If that ever happens, the
/// panic names the map and the cache key involved, and the runner's
/// fault isolation turns it into a per-scenario `Failed` report instead
/// of tearing down the suite.
fn lock_map<'a, T>(
    lock: &'a Mutex<T>,
    map: &str,
    key: &dyn std::fmt::Debug,
) -> std::sync::MutexGuard<'a, T> {
    lock.lock()
        .unwrap_or_else(|_| panic!("{map} cache lock poisoned at key {key:?}"))
}

impl Default for FixtureCache {
    fn default() -> FixtureCache {
        FixtureCache {
            fixtures: Mutex::default(),
            episodes: Mutex::default(),
            adms: Mutex::default(),
            memos: std::array::from_fn(|_| Mutex::default()),
            disabled: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk: None,
            disk_hits: AtomicU64::new(0),
            budget_bytes: None,
            resident_bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            ledger: Mutex::default(),
        }
    }
}

impl FixtureCache {
    /// Creates an empty cache.
    pub fn new() -> FixtureCache {
        FixtureCache::default()
    }

    /// Creates a cache that never memoizes: every request recomputes and
    /// counts as a miss. Scenarios run against it exactly like the
    /// pre-engine ad-hoc harness.
    pub fn disabled() -> FixtureCache {
        FixtureCache {
            disabled: true,
            ..FixtureCache::default()
        }
    }

    /// Whether this cache is in the never-memoize mode.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Attaches a disk tier: misses persist what they computed, and
    /// refaults (cold-start or post-eviction) deserialize from disk
    /// instead of recomputing.
    pub fn with_disk(mut self, store: BlobStore) -> FixtureCache {
        self.disk = Some(store);
        self
    }

    /// Bounds resident cache bytes (serialized sizes). When an insert
    /// pushes the total past the budget, the oldest charged entries
    /// are evicted in insertion order until it fits again.
    pub fn with_memory_budget(mut self, bytes: u64) -> FixtureCache {
        self.budget_bytes = Some(bytes);
        self
    }

    /// The attached disk tier, if any (for stats reporting).
    pub fn disk(&self) -> Option<&BlobStore> {
        self.disk.as_ref()
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether inserts must serialize their value (for the disk tier,
    /// the budget's size accounting, or both).
    fn wants_blob_bytes(&self) -> bool {
        self.disk.is_some() || self.budget_bytes.is_some()
    }

    /// Charges a freshly inserted entry against the RAM budget and
    /// evicts from the front of the ledger until the budget holds.
    /// Call *without* holding any map lock (the eviction loop takes
    /// them). No-op when no budget is configured.
    fn charge(&self, handle: Resident, bytes: u64) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        let mut ledger = lock_map(&self.ledger, "ledger", &"push");
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
        ledger.push_back(LedgerEntry { handle, bytes });
        while self.resident_bytes.load(Ordering::Relaxed) > budget {
            let Some(oldest) = ledger.pop_front() else {
                break;
            };
            match &oldest.handle {
                Resident::Fixture(k) => {
                    lock_map(&self.fixtures, "fixture", k).remove(k);
                }
                Resident::Episodes(k) => {
                    lock_map(&self.episodes, "episode", k).remove(k);
                }
                Resident::Adm(d, a, t) => {
                    let k = (*d, *a, *t);
                    lock_map(&self.adms, "adm", &k).remove(&k);
                }
                Resident::Memo(key) => {
                    lock_map(self.memo_shard(key), "memo", key).remove(key);
                }
            }
            self.resident_bytes
                .fetch_sub(oldest.bytes, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Memoizes an arbitrary shared intermediate under a caller-chosen
    /// key. The key must capture *all* inputs of `compute` — scenarios
    /// build keys on [`HouseFixture::cache_key`], which embeds the house
    /// spec signature, days and seed (e.g.
    /// `"sched/{fixture key}/{adm}/{strategy}/{cap:x}/{day}"` for attack
    /// schedules). On a type mismatch for an existing key the value is
    /// recomputed and replaced.
    pub fn memo<T, F>(&self, key: &str, compute: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let shard = self.memo_shard(key);
        if !self.disabled {
            if let Some(v) = lock_map(shard, "memo", &key).get(key) {
                if let Ok(t) = Arc::clone(v).downcast::<T>() {
                    self.hit();
                    return t;
                }
            }
        }
        self.miss();
        let t = Arc::new(compute());
        if !self.disabled {
            lock_map(shard, "memo", &key).insert(
                key.to_string(),
                Arc::clone(&t) as Arc<dyn Any + Send + Sync>,
            );
        }
        t
    }

    /// Like [`FixtureCache::memo`] for [`Blob`]-serializable values:
    /// additionally backed by the disk tier (when attached) and
    /// charged against the RAM budget (when configured). The key
    /// contract is identical — and doubly load-bearing here, because
    /// the key is also the blob's durable content address across runs.
    pub fn memo_blob<T, F>(&self, key: &str, compute: F) -> Arc<T>
    where
        T: Blob + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let shard = self.memo_shard(key);
        if !self.disabled {
            if let Some(v) = lock_map(shard, "memo", &key).get(key) {
                if let Ok(t) = Arc::clone(v).downcast::<T>() {
                    self.hit();
                    return t;
                }
            }
            if let Some(disk) = &self.disk {
                if let Some((t, bytes)) = disk.get_blob_sized::<T>(key) {
                    self.disk_hit();
                    let t = Arc::new(t);
                    if lock_map(shard, "memo", &key)
                        .insert(
                            key.to_string(),
                            Arc::clone(&t) as Arc<dyn Any + Send + Sync>,
                        )
                        .is_none()
                    {
                        self.charge(Resident::Memo(key.to_string()), bytes as u64);
                    }
                    return t;
                }
            }
        }
        self.miss();
        let t = Arc::new(compute());
        if !self.disabled {
            let mut bytes = 0u64;
            if self.wants_blob_bytes() {
                let blob = t.to_blob();
                bytes = blob.len() as u64;
                if let Some(disk) = &self.disk {
                    disk.put(key, &blob).ok();
                }
            }
            if lock_map(shard, "memo", &key)
                .insert(
                    key.to_string(),
                    Arc::clone(&t) as Arc<dyn Any + Send + Sync>,
                )
                .is_none()
            {
                self.charge(Resident::Memo(key.to_string()), bytes);
            }
        }
        t
    }

    /// The lock shard responsible for a memo key (FNV-1a of the key).
    fn memo_shard(&self, key: &str) -> &Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>> {
        &self.memos[(crate::scenario::fnv1a(key) as usize) % MEMO_SHARDS]
    }

    /// The canonical fixture for `(spec, days)` (canonical seed).
    pub fn fixture(&self, spec: &HouseSpec, days: usize) -> Arc<HouseFixture> {
        self.fixture_with_seed(spec, days, canonical_seed(spec))
    }

    /// The fixture for `(spec, days, seed)`.
    pub fn fixture_with_seed(&self, spec: &HouseSpec, days: usize, seed: u64) -> Arc<HouseFixture> {
        let key = DatasetKey::new(spec, days, seed);
        if !self.disabled {
            if let Some(fx) = lock_map(&self.fixtures, "fixture", &key).get(&key) {
                self.hit();
                return Arc::clone(fx);
            }
        }
        // Disk tier: a persisted month deserializes bit-exactly; only
        // the home/model (cheap, deterministic) are rebuilt.
        let disk_key = format!("fixture/{}/{}/{}", spec.cache_tag(), days, seed);
        if !self.disabled {
            if let Some(disk) = &self.disk {
                if let Some((month, bytes)) = disk.get_blob_sized::<Dataset>(&disk_key) {
                    let home = spec.home.build();
                    // The blob checksum guards bytes, not meaning: a
                    // month that does not match its own key's shape is
                    // damage and must not be trusted.
                    if month.days.len() == days && month.n_occupants == home.occupants().len() {
                        self.disk_hit();
                        let model = EnergyModel::standard(home.clone());
                        let fx = Arc::new(HouseFixture {
                            spec: spec.clone(),
                            days,
                            seed,
                            home,
                            month: Arc::new(month),
                            model,
                        });
                        if lock_map(&self.fixtures, "fixture", &key)
                            .insert(key, Arc::clone(&fx))
                            .is_none()
                        {
                            self.charge(Resident::Fixture(key), bytes as u64);
                        }
                        return fx;
                    }
                    disk.discard(&disk_key);
                }
            }
        }
        // Synthesize outside the lock: other keys stay available while
        // this month is built, and a racing duplicate insert is benign
        // (identical content, last writer wins).
        self.miss();
        let fx = Arc::new(HouseFixture::with_seed(spec, days, seed));
        if !self.disabled {
            let mut bytes = 0u64;
            if self.wants_blob_bytes() {
                let blob = fx.month.to_blob();
                bytes = blob.len() as u64;
                if let Some(disk) = &self.disk {
                    disk.put(&disk_key, &blob).ok();
                }
            }
            if lock_map(&self.fixtures, "fixture", &key)
                .insert(key, Arc::clone(&fx))
                .is_none()
            {
                self.charge(Resident::Fixture(key), bytes);
            }
        }
        fx
    }

    /// The dataset behind the canonical fixture.
    pub fn dataset(&self, spec: &HouseSpec, days: usize) -> Arc<Dataset> {
        Arc::clone(&self.fixture(spec, days).month)
    }

    /// Extracted episodes of the canonical `(spec, days)` dataset.
    pub fn episodes(&self, spec: &HouseSpec, days: usize) -> Arc<Vec<Episode>> {
        self.episodes_with_seed(spec, days, canonical_seed(spec))
    }

    /// Extracted episodes of the `(spec, days, seed)` dataset.
    pub fn episodes_with_seed(
        &self,
        spec: &HouseSpec,
        days: usize,
        seed: u64,
    ) -> Arc<Vec<Episode>> {
        let key = DatasetKey::new(spec, days, seed);
        if !self.disabled {
            if let Some(eps) = lock_map(&self.episodes, "episode", &key).get(&key) {
                self.hit();
                return Arc::clone(eps);
            }
        }
        let disk_key = format!("episodes/{}/{}/{}", spec.cache_tag(), days, seed);
        if !self.disabled {
            if let Some(disk) = &self.disk {
                if let Some(raw) = disk.get(&disk_key) {
                    match episodes_from_blob(&raw) {
                        Some(eps) => {
                            self.disk_hit();
                            let eps = Arc::new(eps);
                            if lock_map(&self.episodes, "episode", &key)
                                .insert(key, Arc::clone(&eps))
                                .is_none()
                            {
                                self.charge(Resident::Episodes(key), raw.len() as u64);
                            }
                            return eps;
                        }
                        None => disk.discard(&disk_key),
                    }
                }
            }
        }
        self.miss();
        let fx = self.fixture_with_seed(spec, days, seed);
        let eps = Arc::new(extract_episodes(&fx.month));
        if !self.disabled {
            let mut bytes = 0u64;
            if self.wants_blob_bytes() {
                let blob = episodes_to_blob(&eps);
                bytes = blob.len() as u64;
                if let Some(disk) = &self.disk {
                    disk.put(&disk_key, &blob).ok();
                }
            }
            if lock_map(&self.episodes, "episode", &key)
                .insert(key, Arc::clone(&eps))
                .is_none()
            {
                self.charge(Resident::Episodes(key), bytes);
            }
        }
        eps
    }

    /// A trained ADM for the canonical `(spec, days)` dataset: `adm_kind`
    /// trained on the first `train_days` days. Identical to
    /// `HouseFixture::adm` but memoized.
    pub fn adm(
        &self,
        spec: &HouseSpec,
        days: usize,
        adm_kind: AdmKind,
        train_days: usize,
    ) -> Arc<HullAdm> {
        self.adm_with_seed(spec, days, canonical_seed(spec), adm_kind, train_days)
    }

    /// A trained ADM for the `(spec, days, seed)` dataset.
    pub fn adm_with_seed(
        &self,
        spec: &HouseSpec,
        days: usize,
        seed: u64,
        adm_kind: AdmKind,
        train_days: usize,
    ) -> Arc<HullAdm> {
        let ak = adm_key(&adm_kind);
        let key = (DatasetKey::new(spec, days, seed), ak, train_days);
        if !self.disabled {
            if let Some(adm) = lock_map(&self.adms, "adm", &key).get(&key) {
                self.hit();
                return Arc::clone(adm);
            }
        }
        let disk_key = format!(
            "adm/{}/{}/{}/k{}-{:016x}-{:016x}-{:016x}/{}",
            spec.cache_tag(),
            days,
            seed,
            ak.tag,
            ak.a,
            ak.b,
            ak.c,
            train_days
        );
        if !self.disabled {
            if let Some(disk) = &self.disk {
                if let Some((adm, bytes)) = disk.get_blob_sized::<HullAdm>(&disk_key) {
                    self.disk_hit();
                    let adm = Arc::new(adm);
                    if lock_map(&self.adms, "adm", &key)
                        .insert(key, Arc::clone(&adm))
                        .is_none()
                    {
                        self.charge(Resident::Adm(key.0, key.1, key.2), bytes as u64);
                    }
                    return adm;
                }
            }
        }
        self.miss();
        let fx = self.fixture_with_seed(spec, days, seed);
        let adm = Arc::new(fx.adm(adm_kind, train_days));
        if !self.disabled {
            let mut bytes = 0u64;
            if self.wants_blob_bytes() {
                let blob = adm.to_blob();
                bytes = blob.len() as u64;
                if let Some(disk) = &self.disk {
                    disk.put(&disk_key, &blob).ok();
                }
            }
            if lock_map(&self.adms, "adm", &key)
                .insert(key, Arc::clone(&adm))
                .is_none()
            {
                self.charge(Resident::Adm(key.0, key.1, key.2), bytes);
            }
        }
        adm
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_distinguishes_empty_from_all_miss() {
        assert_eq!(CacheStats::default().hit_rate(), None);
        let stats = |hits, misses, disk_hits| CacheStats {
            hits,
            misses,
            disk_hits,
            evictions: 0,
        };
        assert_eq!(stats(0, 4, 0).hit_rate(), Some(0.0));
        assert_eq!(stats(2, 1, 0).hit_rate(), Some(2.0 / 3.0));
        assert_eq!(stats(5, 0, 0).hit_rate(), Some(1.0));
        // A disk hit is a hit: it avoided the recompute.
        assert_eq!(stats(1, 1, 2).hit_rate(), Some(0.75));
    }

    #[test]
    fn fixture_is_cached() {
        let cache = FixtureCache::new();
        let a = cache.fixture(&HouseSpec::aras_a(), 3);
        let b = cache.fixture(&HouseSpec::aras_a(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = FixtureCache::new();
        let a = cache.fixture(&HouseSpec::aras_a(), 3);
        let b = cache.fixture(&HouseSpec::aras_b(), 3);
        let c = cache.fixture(&HouseSpec::aras_a(), 4);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn specs_sharing_days_and_seed_never_alias() {
        // Regression for the latent memo key-collision risk: two house
        // specs with identical (days, seed) must resolve to different
        // fixture-cache entries AND different memo-key prefixes.
        let cache = FixtureCache::new();
        let s6 = HouseSpec::scaled(6, 2);
        let s10 = HouseSpec::scaled(10, 2);
        let a = cache.fixture_with_seed(&s6, 3, 5);
        let b = cache.fixture_with_seed(&s10, 3, 5);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.month, b.month);
        assert_ne!(a.cache_key(), b.cache_key());
        // Same shape, different occupant count: still distinct.
        let s6x3 = HouseSpec::scaled(6, 3);
        let c = cache.fixture_with_seed(&s6x3, 3, 5);
        assert_ne!(a.cache_key(), c.cache_key());
        // ARAS A vs B forced onto the same seed: distinct too.
        let fa = HouseFixture::with_seed(&HouseSpec::aras_a(), 2, 7);
        let fb = HouseFixture::with_seed(&HouseSpec::aras_b(), 2, 7);
        assert_ne!(fa.cache_key(), fb.cache_key());
    }

    #[test]
    fn cached_adm_matches_uncached_training() {
        let cache = FixtureCache::new();
        let spec = HouseSpec::aras_a();
        let cached = cache.adm(&spec, 4, AdmKind::default_kmeans(), 3);
        let again = cache.adm(&spec, 4, AdmKind::default_kmeans(), 3);
        assert!(Arc::ptr_eq(&cached, &again));
        let fx = HouseFixture::new(&spec, 4);
        let direct = fx.adm(AdmKind::default_kmeans(), 3);
        // HullAdm has no PartialEq and its Debug form iterates a hash
        // map; compare the learned geometry keyed and sorted instead.
        let geometry = |adm: &HullAdm| -> Vec<String> {
            let mut v: Vec<String> = adm
                .models()
                .map(|((o, z), zm)| format!("{}/{}: {zm:?}", o.index(), z.index()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(geometry(&cached), geometry(&direct));
    }

    #[test]
    fn memo_caches_by_key_and_recomputes_when_disabled() {
        let cache = FixtureCache::new();
        let a = cache.memo("k1", || 41usize + 1);
        let b = cache.memo("k1", || unreachable!("must be served from cache"));
        assert_eq!((*a, *b), (42, 42));
        assert!(Arc::ptr_eq(&a, &b));
        let other = cache.memo("k2", || 7usize);
        assert_eq!(*other, 7);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                ..CacheStats::default()
            }
        );

        let off = FixtureCache::disabled();
        assert!(off.is_disabled());
        let x = off.memo("k1", || 1usize);
        let y = off.memo("k1", || 2usize);
        assert_eq!((*x, *y), (1, 2));
        assert_eq!(off.stats().hits, 0);
        let f1 = off.fixture(&HouseSpec::aras_a(), 2);
        let f2 = off.fixture(&HouseSpec::aras_a(), 2);
        assert!(!Arc::ptr_eq(&f1, &f2));
    }

    #[test]
    fn episodes_cached_and_consistent() {
        let cache = FixtureCache::new();
        let spec = HouseSpec::aras_b();
        let e1 = cache.episodes(&spec, 2);
        let e2 = cache.episodes(&spec, 2);
        assert!(Arc::ptr_eq(&e1, &e2));
        let direct = extract_episodes(&HouseFixture::new(&spec, 2).month);
        assert_eq!(*e1, direct);
    }

    #[test]
    fn scaled_spec_fixtures_cache_like_preset_ones() {
        let cache = FixtureCache::new();
        let spec = HouseSpec::scaled(6, 3);
        let a = cache.fixture(&spec, 2);
        let b = cache.fixture(&spec, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.home.occupants().len(), 3);
        assert_eq!(a.month.n_occupants, 3);
    }
}
