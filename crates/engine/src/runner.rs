//! The parallel scenario runner.
//!
//! Scenarios are pure functions of their [`ScenarioCtx`], so the runner
//! executes them on a fixed-size pool of scoped threads pulling from an
//! atomic work queue. Results are reported in *submission* order
//! regardless of thread interleaving, and every scenario receives the
//! same deterministic seed it would get in a serial run — output is
//! therefore byte-identical across `--threads` settings.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use shatter_faults::FaultKind;

use crate::fixtures::{CacheStats, FixtureCache};
use crate::pool::WorkPool;
use crate::scenario::{scenario_seed, HealthSink, RunParams, Scenario, ScenarioCtx};
use crate::table::Table;

/// Runner configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Parameters forwarded to every scenario.
    pub params: RunParams,
    /// Stop submitting new scenarios after the first failure. The
    /// default (`false`, "keep going") runs the whole suite and reports
    /// every failure at the end — a crashing scenario never takes the
    /// rest of the evaluation down with it.
    pub fail_fast: bool,
}

impl RunConfig {
    /// Resolves `threads == 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// How one scenario finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// Ran to completion with exact results.
    Ok,
    /// Ran to completion, but parts of the result are best-effort
    /// (e.g. solver windows that exhausted their deterministic budget).
    Degraded {
        /// Deduplicated degradation notes from the scenario's
        /// [`HealthSink`], in first-report order.
        notes: Vec<String>,
    },
    /// The scenario panicked; its table is a placeholder and the run's
    /// exit code must be nonzero.
    Failed {
        /// The panic message (or a marker for non-string payloads).
        cause: String,
    },
}

impl ScenarioStatus {
    /// Lowercase status word used by the reporters (`ok` / `degraded` /
    /// `failed`).
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioStatus::Ok => "ok",
            ScenarioStatus::Degraded { .. } => "degraded",
            ScenarioStatus::Failed { .. } => "failed",
        }
    }

    /// Whether the scenario failed outright.
    pub fn is_failed(&self) -> bool {
        matches!(self, ScenarioStatus::Failed { .. })
    }

    /// Whether the scenario completed with exact results.
    pub fn is_ok(&self) -> bool {
        matches!(self, ScenarioStatus::Ok)
    }
}

/// One executed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario id.
    pub id: String,
    /// Scenario title.
    pub title: String,
    /// Whether the scenario declares byte-stable output.
    pub deterministic: bool,
    /// Wall-clock of this scenario's `run`.
    pub wall: Duration,
    /// The produced exhibit (a one-row placeholder when `status` is
    /// [`ScenarioStatus::Failed`]).
    pub table: Table,
    /// How the scenario finished.
    pub status: ScenarioStatus,
    /// Work items (fleet houses) that completed only after a retry,
    /// from the scenario's [`HealthSink`].
    pub retried: u64,
    /// Work items quarantined after exhausting their retry budget.
    pub quarantined: u64,
}

/// Result of a full runner invocation.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-scenario reports in submission order. With
    /// [`RunConfig::fail_fast`], scenarios skipped after the first
    /// failure are simply absent.
    pub reports: Vec<ScenarioReport>,
    /// Wall-clock of the whole run (parallel section).
    pub total_wall: Duration,
    /// Cache counters accumulated on the shared cache during the run.
    pub cache: CacheStats,
    /// Worker threads actually used.
    pub threads: usize,
}

impl RunOutcome {
    /// Sum of per-scenario wall-clocks (the serial-equivalent cost).
    pub fn scenario_wall_sum(&self) -> Duration {
        self.reports.iter().map(|r| r.wall).sum()
    }

    /// Reports whose scenario failed.
    pub fn failures(&self) -> Vec<&ScenarioReport> {
        self.reports
            .iter()
            .filter(|r| r.status.is_failed())
            .collect()
    }

    /// Whether any scenario failed (drives the `repro` exit code).
    pub fn any_failed(&self) -> bool {
        self.reports.iter().any(|r| r.status.is_failed())
    }
}

/// Human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_one(
    scenario: &dyn Scenario,
    cache: &FixtureCache,
    params: RunParams,
    pool: &WorkPool,
) -> ScenarioReport {
    let id = scenario.id().to_string();
    let health = HealthSink::new();
    let cx = ScenarioCtx {
        cache,
        params,
        seed: scenario_seed(scenario.id(), params.base_seed),
        pool: pool.clone(),
        health: health.clone(),
    };
    let start = Instant::now();
    // Fault isolation: the scenario runs inside its fault scope (so
    // per-scenario injection rules match) and under `catch_unwind` — a
    // panicking scenario becomes a Failed report instead of tearing the
    // worker (and the whole suite) down.
    let result = catch_unwind(AssertUnwindSafe(|| {
        shatter_faults::with_scenario(&id, || {
            if let Some(kind) = shatter_faults::hit("scenario.run") {
                match kind {
                    FaultKind::Panic => shatter_faults::panic_now("scenario.run"),
                    // The runner has no solver to exhaust or I/O to
                    // tear: the non-panic kinds degrade the scenario.
                    FaultKind::Overflow | FaultKind::Budget | FaultKind::Io => cx
                        .health
                        .note_degraded(format!("injected {} at scenario.run", kind.name())),
                }
            }
            scenario.run(&cx)
        })
    }));
    let wall = start.elapsed();
    let (table, status) = match result {
        Ok(table) => {
            let status = if health.is_degraded() {
                ScenarioStatus::Degraded {
                    notes: health.notes(),
                }
            } else {
                ScenarioStatus::Ok
            };
            (table, status)
        }
        Err(payload) => {
            let cause = panic_message(payload.as_ref());
            let mut placeholder = Table::new(&id, scenario.title(), &["error"]);
            placeholder.push(vec![cause.clone()]);
            (placeholder, ScenarioStatus::Failed { cause })
        }
    };
    ScenarioReport {
        id,
        title: scenario.title().to_string(),
        deterministic: scenario.deterministic(),
        wall,
        table,
        status,
        retried: health.retried(),
        quarantined: health.quarantined(),
    }
}

/// Runs `scenarios` against a shared `cache`, in parallel when the
/// config allows, returning reports in submission order.
pub fn run_scenarios(
    scenarios: &[Arc<dyn Scenario>],
    cache: &FixtureCache,
    cfg: &RunConfig,
) -> RunOutcome {
    let before = cache.stats();
    let start = Instant::now();
    let total = cfg.effective_threads();
    let threads = total.min(scenarios.len()).max(1);
    // One global slot budget: each runner worker holds a slot implicitly,
    // the surplus is lendable to scenarios via `ScenarioCtx::par_map`,
    // and retiring workers hand their slot back — so a heavy scenario
    // outliving the queue widens without ever oversubscribing `total`.
    let pool = WorkPool::new(total.saturating_sub(threads));

    let mut slots: Vec<Option<ScenarioReport>> = Vec::new();
    slots.resize_with(scenarios.len(), || None);
    // Set by the first failure under fail-fast: already-running
    // scenarios finish, queued ones are skipped (their slots stay empty).
    let stop = AtomicBool::new(false);

    if threads <= 1 {
        for (i, s) in scenarios.iter().enumerate() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let report = run_one(s.as_ref(), cache, cfg.params, &pool);
            if cfg.fail_fast && report.status.is_failed() {
                stop.store(true, Ordering::Relaxed);
            }
            slots[i] = Some(report);
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots_shared = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        pool.release(1);
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = scenarios.get(i) else {
                        pool.release(1);
                        break;
                    };
                    let report = run_one(s.as_ref(), cache, cfg.params, &pool);
                    if cfg.fail_fast && report.status.is_failed() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    slots_shared.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(report);
                });
            }
        });
    }

    let after = cache.stats();
    RunOutcome {
        reports: slots.into_iter().flatten().collect(),
        total_wall: start.elapsed(),
        cache: CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            disk_hits: after.disk_hits - before.disk_hits,
            evictions: after.evictions - before.evictions,
        },
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FnScenario, Registry};
    use shatter_dataset::HouseSpec;

    fn registry() -> Registry {
        let mut reg = Registry::new();
        for (i, id) in ["s1", "s2", "s3", "s4", "s5"].iter().enumerate() {
            reg.register(FnScenario::new(id, "probe", move |cx| {
                let fx = cx.fixture(&HouseSpec::aras_a(), 2);
                let mut t = Table::new(id, "probe", &["seed", "days", "idx"]);
                t.push(vec![
                    cx.seed.to_string(),
                    fx.month.days.len().to_string(),
                    i.to_string(),
                ]);
                t
            }));
        }
        reg
    }

    fn rendered(out: &RunOutcome) -> Vec<String> {
        out.reports.iter().map(|r| r.table.render()).collect()
    }

    #[test]
    fn parallel_output_matches_serial_and_orders_reports() {
        let reg = registry();
        let cache_a = crate::FixtureCache::new();
        let cache_b = crate::FixtureCache::new();
        let serial = run_scenarios(
            &reg.all(),
            &cache_a,
            &RunConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = run_scenarios(
            &reg.all(),
            &cache_b,
            &RunConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(rendered(&serial), rendered(&parallel));
        let ids: Vec<&str> = parallel.reports.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["s1", "s2", "s3", "s4", "s5"]);
        // Five fixture lookups total; racing workers may each miss the
        // first lookup (compute-outside-lock), but at least one hit must
        // land once the entry is published.
        assert_eq!(parallel.cache.hits + parallel.cache.misses, 5);
        assert!(parallel.cache.misses >= 1);
        assert_eq!(serial.cache.misses, 1);
        assert_eq!(serial.cache.hits, 4);
    }

    fn panicking(id: &'static str) -> FnScenario {
        FnScenario::new(id, "chaos probe", move |_cx| -> Table {
            panic!("chaos boom in {id}")
        })
    }

    #[test]
    fn panicking_scenario_is_isolated_and_suite_completes() {
        // Keep-going default: the panic becomes one Failed report and
        // every other scenario still runs — serially and in parallel.
        for threads in [1, 3] {
            let mut reg = registry();
            reg.register(panicking("boom"));
            let cache = crate::FixtureCache::new();
            let out = run_scenarios(
                &reg.all(),
                &cache,
                &RunConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(out.reports.len(), 6);
            assert!(out.any_failed());
            let failures = out.failures();
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].id, "boom");
            match &failures[0].status {
                ScenarioStatus::Failed { cause } => {
                    assert_eq!(cause, "chaos boom in boom");
                }
                other => panic!("expected Failed, got {other:?}"),
            }
            // The placeholder table carries the cause for the reporters.
            assert_eq!(failures[0].table.rows, vec![vec!["chaos boom in boom"]]);
            assert!(out.reports.iter().filter(|r| r.status.is_ok()).count() >= 5);
        }
    }

    #[test]
    fn fail_fast_skips_scenarios_after_the_first_failure() {
        let mut reg = Registry::new();
        reg.register(panicking("first"));
        for id in ["second", "third"] {
            reg.register(FnScenario::new(id, "probe", move |_cx| {
                Table::new(id, "probe", &["v"])
            }));
        }
        let cache = crate::FixtureCache::new();
        let out = run_scenarios(
            &reg.all(),
            &cache,
            &RunConfig {
                threads: 1,
                fail_fast: true,
                ..Default::default()
            },
        );
        assert_eq!(out.reports.len(), 1);
        assert!(out.reports[0].status.is_failed());
    }

    #[test]
    fn health_notes_surface_as_deduplicated_degraded_status() {
        let mut reg = Registry::new();
        reg.register(FnScenario::new("soft", "probe", |cx| {
            cx.health.note_degraded("window budget exhausted");
            cx.health.note_degraded("window budget exhausted");
            cx.health.note_degraded("tableau overflow");
            Table::new("soft", "probe", &["v"])
        }));
        let cache = crate::FixtureCache::new();
        let out = run_scenarios(&reg.all(), &cache, &RunConfig::default());
        assert!(!out.any_failed());
        match &out.reports[0].status {
            ScenarioStatus::Degraded { notes } => {
                assert_eq!(notes, &["window budget exhausted", "tableau overflow"]);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn injected_scenario_fault_hits_only_its_target() {
        // The plan is keyed to the "chaos-target" scenario id, so the
        // sibling scenario (and every other test in this process) is
        // untouched; the rule fires exactly once.
        shatter_faults::install_str("chaos-target/scenario.run/panic").unwrap();
        let mut reg = Registry::new();
        reg.register(FnScenario::new("chaos-target", "probe", |_cx| {
            Table::new("chaos-target", "probe", &["v"])
        }));
        reg.register(FnScenario::new("chaos-bystander", "probe", |_cx| {
            Table::new("chaos-bystander", "probe", &["v"])
        }));
        let cache = crate::FixtureCache::new();
        let out = run_scenarios(&reg.all(), &cache, &RunConfig::default());
        assert_eq!(out.reports.len(), 2);
        match &out.reports[0].status {
            ScenarioStatus::Failed { cause } => {
                assert_eq!(cause, "injected fault: panic at scenario.run");
            }
            other => panic!("expected injected failure, got {other:?}"),
        }
        assert!(out.reports[1].status.is_ok());
    }

    #[test]
    fn effective_threads_bounds() {
        let cfg = RunConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(cfg.effective_threads(), 3);
        let auto = RunConfig::default();
        assert!(auto.effective_threads() >= 1);
    }
}
