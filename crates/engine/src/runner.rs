//! The parallel scenario runner.
//!
//! Scenarios are pure functions of their [`ScenarioCtx`], so the runner
//! executes them on a fixed-size pool of scoped threads pulling from an
//! atomic work queue. Results are reported in *submission* order
//! regardless of thread interleaving, and every scenario receives the
//! same deterministic seed it would get in a serial run — output is
//! therefore byte-identical across `--threads` settings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::fixtures::{CacheStats, FixtureCache};
use crate::pool::WorkPool;
use crate::scenario::{scenario_seed, RunParams, Scenario, ScenarioCtx};
use crate::table::Table;

/// Runner configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Parameters forwarded to every scenario.
    pub params: RunParams,
}

impl RunConfig {
    /// Resolves `threads == 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// One executed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario id.
    pub id: String,
    /// Scenario title.
    pub title: String,
    /// Whether the scenario declares byte-stable output.
    pub deterministic: bool,
    /// Wall-clock of this scenario's `run`.
    pub wall: Duration,
    /// The produced exhibit.
    pub table: Table,
}

/// Result of a full runner invocation.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-scenario reports in submission order.
    pub reports: Vec<ScenarioReport>,
    /// Wall-clock of the whole run (parallel section).
    pub total_wall: Duration,
    /// Cache counters accumulated on the shared cache during the run.
    pub cache: CacheStats,
    /// Worker threads actually used.
    pub threads: usize,
}

impl RunOutcome {
    /// Sum of per-scenario wall-clocks (the serial-equivalent cost).
    pub fn scenario_wall_sum(&self) -> Duration {
        self.reports.iter().map(|r| r.wall).sum()
    }
}

fn run_one(
    scenario: &dyn Scenario,
    cache: &FixtureCache,
    params: RunParams,
    pool: &WorkPool,
) -> ScenarioReport {
    let cx = ScenarioCtx {
        cache,
        params,
        seed: scenario_seed(scenario.id(), params.base_seed),
        pool: pool.clone(),
    };
    let start = Instant::now();
    let table = scenario.run(&cx);
    ScenarioReport {
        id: scenario.id().to_string(),
        title: scenario.title().to_string(),
        deterministic: scenario.deterministic(),
        wall: start.elapsed(),
        table,
    }
}

/// Runs `scenarios` against a shared `cache`, in parallel when the
/// config allows, returning reports in submission order.
pub fn run_scenarios(
    scenarios: &[Arc<dyn Scenario>],
    cache: &FixtureCache,
    cfg: &RunConfig,
) -> RunOutcome {
    let before = cache.stats();
    let start = Instant::now();
    let total = cfg.effective_threads();
    let threads = total.min(scenarios.len()).max(1);
    // One global slot budget: each runner worker holds a slot implicitly,
    // the surplus is lendable to scenarios via `ScenarioCtx::par_map`,
    // and retiring workers hand their slot back — so a heavy scenario
    // outliving the queue widens without ever oversubscribing `total`.
    let pool = WorkPool::new(total.saturating_sub(threads));

    let mut slots: Vec<Option<ScenarioReport>> = Vec::new();
    slots.resize_with(scenarios.len(), || None);

    if threads <= 1 {
        for (i, s) in scenarios.iter().enumerate() {
            slots[i] = Some(run_one(s.as_ref(), cache, cfg.params, &pool));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots_shared = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = scenarios.get(i) else {
                        pool.release(1);
                        break;
                    };
                    let report = run_one(s.as_ref(), cache, cfg.params, &pool);
                    slots_shared.lock().expect("runner result lock")[i] = Some(report);
                });
            }
        });
    }

    let after = cache.stats();
    RunOutcome {
        reports: slots
            .into_iter()
            .map(|r| r.expect("every scenario slot filled"))
            .collect(),
        total_wall: start.elapsed(),
        cache: CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
        },
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FnScenario, Registry};
    use shatter_dataset::HouseSpec;

    fn registry() -> Registry {
        let mut reg = Registry::new();
        for (i, id) in ["s1", "s2", "s3", "s4", "s5"].iter().enumerate() {
            reg.register(FnScenario::new(id, "probe", move |cx| {
                let fx = cx.fixture(&HouseSpec::aras_a(), 2);
                let mut t = Table::new(id, "probe", &["seed", "days", "idx"]);
                t.push(vec![
                    cx.seed.to_string(),
                    fx.month.days.len().to_string(),
                    i.to_string(),
                ]);
                t
            }));
        }
        reg
    }

    fn rendered(out: &RunOutcome) -> Vec<String> {
        out.reports.iter().map(|r| r.table.render()).collect()
    }

    #[test]
    fn parallel_output_matches_serial_and_orders_reports() {
        let reg = registry();
        let cache_a = crate::FixtureCache::new();
        let cache_b = crate::FixtureCache::new();
        let serial = run_scenarios(
            &reg.all(),
            &cache_a,
            &RunConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = run_scenarios(
            &reg.all(),
            &cache_b,
            &RunConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(rendered(&serial), rendered(&parallel));
        let ids: Vec<&str> = parallel.reports.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["s1", "s2", "s3", "s4", "s5"]);
        // Five fixture lookups total; racing workers may each miss the
        // first lookup (compute-outside-lock), but at least one hit must
        // land once the entry is published.
        assert_eq!(parallel.cache.hits + parallel.cache.misses, 5);
        assert!(parallel.cache.misses >= 1);
        assert_eq!(serial.cache.misses, 1);
        assert_eq!(serial.cache.hits, 4);
    }

    #[test]
    fn effective_threads_bounds() {
        let cfg = RunConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(cfg.effective_threads(), 3);
        let auto = RunConfig::default();
        assert!(auto.effective_threads() >= 1);
    }
}
