//! Batched day scheduling through the engine's [`PoolExecutor`]: the
//! assembled schedule and merged statistics must be byte-identical to
//! the serial reference executor at every pool width — in carry and
//! portfolio modes too — and fault-injection scoping must survive the
//! hop onto pool helper threads.

use std::collections::HashMap;
use std::sync::Mutex;

use shatter_adm::{AdmKind, HullAdm};
use shatter_core::{
    schedule_day_batched, AttackSchedule, AttackerCapability, BatchExecutor, RewardTable,
    SerialExecutor, SmtScheduler, SmtStats, WindowMemo, WindowSolution,
};
use shatter_dataset::{synthesize, Dataset, HouseSpec, SynthConfig};
use shatter_engine::{PoolExecutor, WorkPool};
use shatter_hvac::EnergyModel;
use shatter_smarthome::houses;

fn world(seed: u64) -> (Dataset, HullAdm, RewardTable, AttackerCapability) {
    let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 6, seed));
    let adm = HullAdm::train(&ds.prefix_days(5), AdmKind::default_kmeans());
    let model = EnergyModel::standard(houses::aras_house_a());
    let table = RewardTable::build(&model);
    let cap = AttackerCapability::full(&houses::aras_house_a());
    (ds, adm, table, cap)
}

/// Minimal in-memory [`WindowMemo`]; each run gets its own instance so
/// equality between runs is never a trivial cache replay.
#[derive(Default)]
struct MapMemo(Mutex<HashMap<String, WindowSolution>>);

impl WindowMemo for MapMemo {
    fn window(&self, key: &str, compute: &mut dyn FnMut() -> WindowSolution) -> WindowSolution {
        if let Some(hit) = self.0.lock().unwrap().get(key) {
            return hit.clone();
        }
        let v = compute();
        self.0.lock().unwrap().insert(key.to_string(), v.clone());
        v
    }
}

fn day_with(
    sched: &SmtScheduler,
    world: &(Dataset, HullAdm, RewardTable, AttackerCapability),
    exec: &dyn BatchExecutor,
) -> (AttackSchedule, SmtStats) {
    let (ds, adm, table, cap) = world;
    let memo = MapMemo::default();
    schedule_day_batched(sched, table, adm, cap, &ds.days[5], &memo, "day5", exec)
}

#[test]
fn batched_day_byte_identical_across_pool_widths_and_modes() {
    let w = world(9);
    let configs: Vec<(&str, SmtScheduler)> = vec![
        ("default", SmtScheduler::default()),
        (
            "carry",
            SmtScheduler {
                carry_learnts: true,
                ..SmtScheduler::default()
            },
        ),
        (
            "portfolio",
            SmtScheduler {
                portfolio: 3,
                portfolio_hard_conflicts: 0,
                ..SmtScheduler::default()
            },
        ),
    ];
    let mut decisions: HashMap<&str, u64> = HashMap::new();
    for (name, sched) in &configs {
        let (serial_a, serial_stats) = day_with(sched, &w, &SerialExecutor);
        // Width 0: the pool executor degenerates to inline execution.
        // Width 7: occupant chains and (in portfolio mode) race
        // attempts genuinely run on borrowed helper threads.
        for width in [0usize, 7] {
            let exec = PoolExecutor::new(WorkPool::new(width));
            let (pooled, pooled_stats) = day_with(sched, &w, &exec);
            assert_eq!(
                serial_a, pooled,
                "{name}: schedule diverged at width {width}"
            );
            assert_eq!(
                serial_stats, pooled_stats,
                "{name}: stats diverged at width {width}"
            );
        }
        assert!(serial_stats.windows > 0, "{name}: no windows solved");
        decisions.insert(name, serial_stats.sat_decisions);
    }
    // Non-vacuity: with the hardness threshold at zero the portfolio
    // run must actually race (extra attempts burn extra decisions),
    // while the committed schedule above stayed pinned to serial.
    assert!(
        decisions["portfolio"] > decisions["default"],
        "portfolio racing never ran: {:?}",
        decisions
    );
}

#[test]
fn pool_helpers_keep_fault_scenario_armed() {
    // A rule that can never fire still arms its scenario, which is all
    // `scenario_armed` needs; the huge hit index keeps this inert for
    // every other test in the process.
    shatter_faults::install_str("tlsprobe/smt.window/panic@9999999999").unwrap();
    let exec = shatter_faults::with_scenario("tlsprobe", || PoolExecutor::new(WorkPool::new(7)));
    // Helper threads are fresh OS threads with empty fault TLS: every
    // attempt must still observe the captured scenario scope, whether
    // it lands on the caller or on a borrowed helper.
    let attempts = exec.run_attempts(8, &|_| WindowSolution {
        degraded: shatter_faults::scenario_armed(),
        ..WindowSolution::default()
    });
    assert_eq!(attempts.len(), 8);
    assert!(
        attempts.iter().all(|a| a.degraded),
        "a pool worker lost the fault scenario scope"
    );
    // Outside the scenario the same pool sees no armed scope.
    let bare = PoolExecutor::new(WorkPool::new(7));
    let attempts = bare.run_attempts(8, &|_| WindowSolution {
        degraded: shatter_faults::scenario_armed(),
        ..WindowSolution::default()
    });
    assert!(attempts.iter().all(|a| !a.degraded));
}

#[test]
fn injected_window_fault_in_batched_day_matches_serial() {
    // Separate scenario names per run: hit counters are shared per
    // (scenario, site) across the process, so each run needs its own
    // counter stream for the fault to land on the same window.
    shatter_faults::install_str("bfault/smt.window/budget@5,sfault/smt.window/budget@5").unwrap();
    let w = world(9);
    let sched = SmtScheduler::default();
    let (batched, batched_stats) = shatter_faults::with_scenario("bfault", || {
        let exec = PoolExecutor::new(WorkPool::new(7));
        day_with(&sched, &w, &exec)
    });
    let (serial, serial_stats) =
        shatter_faults::with_scenario("sfault", || day_with(&sched, &w, &SerialExecutor));
    assert!(
        batched_stats.fallbacks >= 1,
        "injected budget fault never degraded a window"
    );
    assert_eq!(batched, serial, "faulted batched schedule diverged");
    assert_eq!(batched_stats, serial_stats, "faulted stats diverged");
}
