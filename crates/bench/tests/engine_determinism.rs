//! Engine determinism over the real exhibit registry: the same scenario
//! set must render byte-identically across repeated runs and across
//! thread counts, with the fixture cache active.

use shatter_bench::builtin_registry;
use shatter_engine::runner::run_scenarios;
use shatter_engine::{FixtureCache, RunConfig, RunParams};

fn quick_cfg(threads: usize) -> RunConfig {
    RunConfig {
        threads,
        params: RunParams {
            days: 3,
            span: 10,
            base_seed: 0,
        },
        fail_fast: false,
    }
}

fn rendered_deterministic(threads: usize) -> Vec<(String, String)> {
    let reg = builtin_registry();
    let scenarios: Vec<_> = reg
        .all()
        .into_iter()
        .filter(|s| s.deterministic())
        // The testbed replay is deterministic but slow in debug builds
        // and exercises no cache path; covered by exhibit_smoke.
        .filter(|s| s.id() != "testbed")
        .collect();
    let cache = FixtureCache::new();
    let out = run_scenarios(&scenarios, &cache, &quick_cfg(threads));
    assert!(out.cache.hits > 0, "cache never hit across the suite");
    out.reports
        .into_iter()
        .map(|r| (r.id, r.table.render()))
        .collect()
}

#[test]
fn suite_is_byte_identical_across_runs_and_thread_counts() {
    let serial_a = rendered_deterministic(1);
    let serial_b = rendered_deterministic(1);
    assert_eq!(serial_a, serial_b, "repeat serial runs diverged");
    let parallel = rendered_deterministic(4);
    assert_eq!(serial_a, parallel, "parallel run diverged from serial");
}

#[test]
fn heavy_exhibits_byte_identical_across_pool_widths() {
    // Running a single scenario with a wide thread budget leaves the
    // whole surplus to `ScenarioCtx::par_map`, so this exercises real
    // intra-scenario parallelism (the suite-level test above mostly
    // saturates the budget with scenario workers instead).
    let reg = builtin_registry();
    for id in [
        "tab5",
        "tab6",
        "strategies",
        "ablation",
        "scaled_homes",
        "capability_grid",
    ] {
        let one = |threads: usize| {
            let cache = FixtureCache::new();
            let scenarios = reg.select(&[id.to_string()]).expect("known id");
            let out = run_scenarios(&scenarios, &cache, &quick_cfg(threads));
            out.reports[0].table.render()
        };
        assert_eq!(one(1), one(6), "{id} diverged across pool widths");
    }
}

#[test]
fn cached_run_matches_uncached_run() {
    let reg = builtin_registry();
    let scenarios = reg
        .select(&["fig3".to_string(), "fig6".to_string(), "tab6".to_string()])
        .expect("known ids");
    let shared = FixtureCache::new();
    let cached = run_scenarios(&scenarios, &shared, &quick_cfg(2));
    // Fresh cache per scenario: every fixture/ADM retrained from scratch.
    let mut uncached = Vec::new();
    for s in &scenarios {
        let fresh = FixtureCache::new();
        let one = run_scenarios(std::slice::from_ref(s), &fresh, &quick_cfg(1));
        uncached.extend(one.reports);
    }
    let a: Vec<String> = cached.reports.iter().map(|r| r.table.render()).collect();
    let b: Vec<String> = uncached.iter().map(|r| r.table.render()).collect();
    assert_eq!(a, b, "fixture caching changed exhibit output");
    assert!(cached.cache.hits > 0);
}
