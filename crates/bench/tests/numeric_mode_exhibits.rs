//! Acceptance pin for the two-phase numeric pipeline: the float
//! fast-path and forced-exact simplex modes must render byte-identical
//! exhibit tables once the columns that legitimately depend on the mode
//! are masked — wall-clock timings and the `float_piv`/`fb` effort
//! counters. Every semantic column (verdicts, objectives, schedules,
//! SAT-core counters) must match cell for cell.
//!
//! This test owns its own binary because the forced-exact knob is the
//! `SHATTER_EXACT_SIMPLEX` environment variable (process-global): tests
//! in other binaries run SMT exhibits concurrently and must never
//! observe the variable mid-flip.

use shatter_bench::{run_exhibit, Table};

/// Columns whose cells may differ between numeric modes: wall-clock
/// timings (machine noise) and the mode's own effort counters.
fn masked_columns(t: &Table) -> Vec<usize> {
    t.header
        .iter()
        .enumerate()
        .filter(|(_, h)| {
            matches!(
                h.as_str(),
                "total_ms" | "per_window_us" | "float_piv" | "fb"
            )
        })
        .map(|(i, _)| i)
        .collect()
}

fn column(t: &Table, name: &str) -> usize {
    t.header
        .iter()
        .position(|h| h == name)
        .unwrap_or_else(|| panic!("{}: no column {name}", t.id))
}

#[test]
fn exhibit_tables_identical_across_numeric_modes() {
    assert!(
        std::env::var("SHATTER_EXACT_SIMPLEX").is_err(),
        "test requires a clean environment"
    );
    let ids = ["strategies", "fig11"];
    let fast: Vec<Table> = ids.iter().map(|id| run_exhibit(id, 4, 10)).collect();
    std::env::set_var("SHATTER_EXACT_SIMPLEX", "1");
    let exact: Vec<Table> = ids.iter().map(|id| run_exhibit(id, 4, 10)).collect();
    std::env::remove_var("SHATTER_EXACT_SIMPLEX");

    let mut fast_float_pivots = 0u64;
    for (f, e) in fast.iter().zip(&exact) {
        assert_eq!(f.header, e.header, "{}: headers diverged", f.id);
        assert_eq!(f.rows.len(), e.rows.len(), "{}: row counts diverged", f.id);
        let masked = masked_columns(f);
        for (ri, (rf, re)) in f.rows.iter().zip(&e.rows).enumerate() {
            for (ci, (cf, ce)) in rf.iter().zip(re).enumerate() {
                if masked.contains(&ci) {
                    continue;
                }
                assert_eq!(
                    cf, ce,
                    "{}: row {ri} column {} diverged between numeric modes",
                    f.id, f.header[ci]
                );
            }
        }
        // The masked counters must prove each leg ran its own pipeline:
        // the exact leg never pivots in floats; the fast leg does
        // somewhere in the suite (some exhibits solve by propagation
        // alone at smoke scale, so the check is suite-wide).
        let fp = column(f, "float_piv");
        let total = |t: &Table| -> u64 {
            t.rows
                .iter()
                .map(|r| r[fp].parse::<u64>().expect("numeric float_piv"))
                .sum()
        };
        fast_float_pivots += total(f);
        assert_eq!(total(e), 0, "{}: exact leg reported float pivots", f.id);
    }
    assert!(
        fast_float_pivots > 0,
        "fast leg reported no float pivots anywhere in the suite"
    );
}
