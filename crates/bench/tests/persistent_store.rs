//! Cross-run amortization contract of the persistent fixture/memo
//! store: a warm run over a populated blob store must produce tables
//! byte-identical to the cold run that filled it, memory-budget
//! eviction must change counters but never bytes (evicted entries
//! refault through the disk tier), and a damaged or fault-injected
//! cached blob must be discarded and recomputed, never trusted.
//!
//! Fault-injection rules are process-global but scoped by scenario id,
//! so every test here runs under its own unique id.

use std::path::{Path, PathBuf};

use shatter_bench::fleet::{run_fleet, FleetConfig, FleetPolicy};
use shatter_engine::scenario::scenario_seed;
use shatter_engine::{disk_schema_sig, FixtureCache, HealthSink, RunParams, ScenarioCtx, WorkPool};
use shatter_store::BlobStore;

const N_HOUSES: usize = 4;

fn params() -> RunParams {
    RunParams {
        days: 2,
        span: 20,
        base_seed: 0,
    }
}

fn cfg() -> FleetConfig {
    FleetConfig {
        n_houses: N_HOUSES,
        sample: None,
        policy: FleetPolicy::default(),
    }
}

fn ctx<'a>(id: &str, cache: &'a FixtureCache, extra_threads: usize) -> ScenarioCtx<'a> {
    ScenarioCtx {
        cache,
        params: params(),
        seed: scenario_seed(id, params().base_seed),
        pool: if extra_threads == 0 {
            WorkPool::serial()
        } else {
            WorkPool::new(extra_threads)
        },
        health: HealthSink::new(),
    }
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shatter-store-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path) -> BlobStore {
    BlobStore::open(dir, disk_schema_sig()).unwrap()
}

/// The in-RAM-only run every persistent variant must reproduce.
fn reference_table(id: &str) -> String {
    let cache = FixtureCache::new();
    let cx = ctx(id, &cache, 0);
    run_fleet(&cx, &cfg(), None).0.render()
}

#[test]
fn warm_run_replays_from_disk_and_is_byte_identical() {
    let id = "store-warm-test";
    let reference = reference_table(id);
    let dir = store_dir("warm");

    // Cold: fills the store. Everything is a compute miss.
    {
        let cache = FixtureCache::new().with_disk(open_store(&dir));
        let cx = ctx(id, &cache, 0);
        let (table, _) = run_fleet(&cx, &cfg(), None);
        assert_eq!(table.render(), reference, "disk tier must not change bytes");
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 0, "an empty store cannot hit");
        assert!(stats.misses > 0);
        assert!(cache.disk().unwrap().stats().writes > 0);
    }

    // Warm: a fresh RAM cache over the populated store replays every
    // fixture, model and memo from disk — zero recomputation.
    let cache = FixtureCache::new().with_disk(open_store(&dir));
    let cx = ctx(id, &cache, 0);
    let (table, _) = run_fleet(&cx, &cfg(), None);
    assert_eq!(table.render(), reference);
    let stats = cache.stats();
    assert!(stats.disk_hits > 0, "warm run must replay from disk");
    assert_eq!(stats.misses, 0, "warm run must not recompute anything");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eviction_changes_counters_but_never_bytes_across_threads() {
    let id = "store-evict-test";
    let reference = reference_table(id);
    // 64 KiB cannot hold even one synthesized month, so the budget
    // evicts continuously in insertion order.
    for extra_threads in [0, 3] {
        let cache = FixtureCache::new().with_memory_budget(64 * 1024);
        let cx = ctx(id, &cache, extra_threads);
        let (table, _) = run_fleet(&cx, &cfg(), None);
        assert_eq!(
            table.render(),
            reference,
            "eviction is a perf knob, not a correctness event ({} extra threads)",
            extra_threads
        );
        assert!(
            cache.stats().evictions > 0,
            "a 64 KiB budget must evict at exhibit scale"
        );
    }
}

#[test]
fn evicted_entries_refault_through_the_disk_tier() {
    let id = "store-refault-test";
    let reference = reference_table(id);
    let dir = store_dir("refault");

    // Populate the store once, unconstrained.
    {
        let cache = FixtureCache::new().with_disk(open_store(&dir));
        let cx = ctx(id, &cache, 0);
        run_fleet(&cx, &cfg(), None);
    }

    // Warm run under a starved RAM budget: entries are evicted and
    // refault from disk instead of recomputing.
    let cache = FixtureCache::new()
        .with_disk(open_store(&dir))
        .with_memory_budget(64 * 1024);
    let cx = ctx(id, &cache, 0);
    let (table, _) = run_fleet(&cx, &cfg(), None);
    assert_eq!(table.render(), reference);
    let stats = cache.stats();
    assert!(stats.evictions > 0, "starved budget must evict");
    assert_eq!(
        stats.misses, 0,
        "every refault must land in the disk tier, not recompute"
    );
    assert!(stats.disk_hits > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_cached_blob_is_discarded_and_recomputed() {
    let id = "store-corrupt-test";
    let reference = reference_table(id);
    let dir = store_dir("corrupt");

    {
        let cache = FixtureCache::new().with_disk(open_store(&dir));
        let cx = ctx(id, &cache, 0);
        run_fleet(&cx, &cfg(), None);
    }

    // Silent media corruption: flip one payload byte in every third
    // blob, breaking their FNV checksums.
    let mut blobs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "blob"))
        .collect();
    blobs.sort();
    assert!(!blobs.is_empty());
    for path in blobs.iter().step_by(3) {
        let mut bytes = std::fs::read(path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        std::fs::write(path, &bytes).unwrap();
    }

    let cache = FixtureCache::new().with_disk(open_store(&dir));
    let cx = ctx(id, &cache, 0);
    let (table, _) = run_fleet(&cx, &cfg(), None);
    assert_eq!(
        table.render(),
        reference,
        "a corrupt blob must be recomputed, never trusted"
    );
    let disk = cache.disk().unwrap().stats();
    assert!(disk.discarded > 0, "corrupt blobs must be discarded");
    assert!(
        cache.stats().misses > 0,
        "discarded blobs must fall through to recompute"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_read_fault_discards_and_recomputes() {
    let id = "store-readfault-test";
    let reference = reference_table(id);
    let dir = store_dir("readfault");

    {
        let cache = FixtureCache::new().with_disk(open_store(&dir));
        let cx = ctx(id, &cache, 0);
        shatter_faults::with_scenario(id, || run_fleet(&cx, &cfg(), None));
    }

    // The first two warm reads hit an injected I/O fault: the store
    // must treat the blob as damaged (delete + discard + miss), and the
    // cache must recompute and re-persist it.
    shatter_faults::install_str(&format!("{id}/store.read/io@0,{id}/store.read/io@1")).unwrap();
    let cache = FixtureCache::new().with_disk(open_store(&dir));
    let cx = ctx(id, &cache, 0);
    let (table, _) = shatter_faults::with_scenario(id, || run_fleet(&cx, &cfg(), None));
    assert_eq!(table.render(), reference);
    let disk = cache.disk().unwrap().stats();
    assert_eq!(disk.discarded, 2, "each injected read fault discards once");
    assert_eq!(cache.stats().misses, 2, "each discarded blob recomputes");
    assert!(disk.writes >= 2, "recomputed blobs are re-persisted");
    std::fs::remove_dir_all(&dir).ok();
}
