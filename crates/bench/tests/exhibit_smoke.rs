//! Smoke tests for the reproduction harness: every exhibit must produce a
//! well-formed table at reduced scale through the scenario registry, and
//! the key claim encoded in each exhibit must hold even on the quick
//! configuration.

use shatter_bench::run_exhibit;
use shatter_bench::Table;

fn assert_well_formed(t: &Table) {
    assert!(!t.id.is_empty());
    assert!(!t.header.is_empty());
    assert!(!t.rows.is_empty(), "{} produced no rows", t.id);
    for row in &t.rows {
        assert_eq!(row.len(), t.header.len(), "{}: ragged row {row:?}", t.id);
    }
    // Render and CSV paths must not panic and must contain every header.
    let rendered = t.render();
    let csv = t.to_csv();
    for h in &t.header {
        assert!(csv.starts_with(&t.header.join(",")) || csv.contains(h));
    }
    assert!(rendered.contains(&t.id));
}

fn cell(t: &Table, row_match: &[(usize, &str)], col: usize) -> f64 {
    t.rows
        .iter()
        .find(|r| row_match.iter().all(|&(i, v)| r[i] == v))
        .unwrap_or_else(|| panic!("{}: no row matching {row_match:?}", t.id))[col]
        .parse()
        .expect("numeric cell")
}

#[test]
fn fig3_savings_positive() {
    let t = run_exhibit("fig3", 6, 20);
    assert_well_formed(&t);
    for house in ["A", "B"] {
        let savings = cell(&t, &[(0, house), (1, "SAVINGS%")], 3);
        assert!(savings > 20.0, "house {house} savings {savings}");
    }
}

#[test]
fn fig5_f1_grows_with_training_days() {
    let t = run_exhibit("fig5", 20, 20); // train points 10, 15
    assert_well_formed(&t);
    let f1_10 = cell(&t, &[(0, "DBSCAN"), (1, "HAO1"), (2, "10")], 3);
    let f1_15 = cell(&t, &[(0, "DBSCAN"), (1, "HAO1"), (2, "15")], 3);
    assert!(f1_15 >= f1_10 - 8.0, "f1 {f1_10} -> {f1_15}");
}

#[test]
fn fig6_kmeans_covers_more_area() {
    let t = run_exhibit("fig6", 12, 20);
    assert_well_formed(&t);
    let db = cell(&t, &[(0, "DBSCAN"), (2, "AREA")], 5);
    let km = cell(&t, &[(0, "K-Means"), (2, "AREA")], 5);
    assert!(km > db, "km {km} vs db {db}");
}

#[test]
fn tab3_has_all_schedule_rows() {
    let t = run_exhibit("tab3", 12, 20);
    assert_well_formed(&t);
    for label in ["Actual", "Greedy", "SHATTER", "RangeThresh", "Trigger"] {
        assert!(t.rows.iter().any(|r| r[0] == label), "missing row {label}");
    }
}

#[test]
fn tab4_partial_knowledge_not_easier_to_detect() {
    let t = run_exhibit("tab4", 15, 20);
    assert_well_formed(&t);
    // Averaged F1: partial <= all + slack.
    let avg = |knowledge: &str| -> f64 {
        let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[1] == knowledge).collect();
        rows.iter()
            .map(|r| r[6].parse::<f64>().unwrap())
            .sum::<f64>()
            / rows.len() as f64
    };
    assert!(avg("Partial") <= avg("All") + 0.05);
}

#[test]
fn tab5_biota_highest_and_detected() {
    let t = run_exhibit("tab5", 6, 20);
    assert_well_formed(&t);
    let biota_a = cell(&t, &[(0, "BIoTA")], 3);
    let benign_a = cell(&t, &[(0, "Benign")], 3);
    assert!(biota_a > benign_a);
    let detect = cell(&t, &[(0, "BIoTA")], 5);
    assert!(detect >= 0.6);
}

#[test]
fn strategies_enumerates_registry_and_dp_is_stealthy() {
    let t = run_exhibit("strategies", 12, 20);
    assert_well_formed(&t);
    for key in ["biota", "greedy", "dp", "smt"] {
        assert!(t.rows.iter().any(|r| r[0] == key), "missing strategy {key}");
    }
    // The SHATTER window optimizer must validate as stealthy.
    let dp_row = t.rows.iter().find(|r| r[0] == "dp").expect("dp row");
    assert_eq!(dp_row[4], "true");
}

#[test]
fn fig10_with_triggering_dominates() {
    let t = run_exhibit("fig10", 4, 20);
    assert_well_formed(&t);
    for house in ["A", "B"] {
        let without = cell(&t, &[(0, house), (1, "TOTAL")], 3);
        let with = cell(&t, &[(0, house), (1, "TOTAL")], 4);
        assert!(with >= without - 1e-9);
    }
}

#[test]
fn tab6_tab7_monotone_in_access() {
    let t6 = run_exhibit("tab6", 4, 20);
    assert_well_formed(&t6);
    let v4 = cell(&t6, &[(0, "4")], 1);
    let v2 = cell(&t6, &[(0, "2")], 1);
    assert!(v4 >= v2 - 1e-9, "tab6 A: {v4} < {v2}");
    let t7 = run_exhibit("tab7", 4, 20);
    assert_well_formed(&t7);
    let a13 = cell(&t7, &[(0, "13")], 1);
    let a3 = cell(&t7, &[(0, "3")], 1);
    assert!(a13 >= a3 - 1e-9, "tab7 A: {a13} < {a3}");
}

#[test]
fn fig11_produces_both_sweeps() {
    let t = run_exhibit("fig11", 12, 20);
    assert_well_formed(&t);
    assert!(t.rows.iter().any(|r| r[0] == "horizon"));
    assert!(t.rows.iter().any(|r| r[0] == "zones"));
}

#[test]
fn testbed_exhibit_reports_increment() {
    let t = run_exhibit("testbed", 4, 20);
    assert_well_formed(&t);
    let inc = cell(&t, &[(0, "energy_increment_pct")], 1);
    assert!(inc > 10.0, "increment {inc}");
}

#[test]
fn ablation_rows_cover_all_axes() {
    let t = run_exhibit("ablation", 3, 20);
    assert_well_formed(&t);
    for axis in ["horizon", "trigger_aware", "adm_eps", "battery_kwh"] {
        assert!(t.rows.iter().any(|r| r[0] == axis), "missing axis {axis}");
    }
}

#[test]
fn scaled_homes_covers_shapes_and_attack_lifts_cost() {
    let t = run_exhibit("scaled_homes", 4, 20);
    assert_well_formed(&t);
    for (zones, occupants) in [("6", "2"), ("10", "3"), ("16", "4")] {
        let row = t
            .rows
            .iter()
            .find(|r| r[1] == zones)
            .unwrap_or_else(|| panic!("missing {zones}-zone row"));
        assert_eq!(row[2], occupants);
        let benign: f64 = row[3].parse().unwrap();
        let attacked: f64 = row[4].parse().unwrap();
        assert!(
            attacked >= benign - 1e-9,
            "{zones} zones: attacked {attacked} < benign {benign}"
        );
    }
}

#[test]
fn capability_grid_full_corner_dominates() {
    let t = run_exhibit("capability_grid", 4, 20);
    assert_well_formed(&t);
    assert_eq!(t.rows.len(), 9, "3 zone profiles x 3 windows");
    let full = cell(&t, &[(0, "all"), (1, "all-day")], 4);
    for row in &t.rows {
        let lift: f64 = row[4].parse().unwrap();
        // Restricting the attacker can only shed impact (small slack
        // for scheduler tie-breaking).
        assert!(
            lift <= full + 0.25,
            "{}x{} lift {lift} beats full-capability {full}",
            row[0],
            row[1]
        );
    }
}

#[test]
fn defense_sweep_ranks_every_asset_and_plans() {
    let t = run_exhibit("defense_sweep", 6, 20);
    assert_well_formed(&t);
    // 4 indoor zones + 13 appliances ranked.
    assert_eq!(t.rows.iter().filter(|r| r[0] == "rank").count(), 17);
    // The greedy plan stops at zero marginal value, so at smoke scale it
    // may be empty — but never over budget.
    assert!(t.rows.iter().filter(|r| r[0] == "plan").count() <= 3);
    let residual = cell(&t, &[(0, "residual")], 3);
    assert!(residual.is_finite());
}

#[test]
fn fig4_reports_scores_for_small_minpts() {
    let t = run_exhibit("fig4", 10, 20);
    assert_well_formed(&t);
    let dbi = cell(&t, &[(0, "DBSCAN"), (1, "2")], 2);
    assert!(dbi.is_finite());
}
