//! Crash-recovery contract of the fleet + journal stack: kill the run
//! anywhere (torn record, flipped byte, mid-fleet panic), resume, and
//! the final table must be byte-identical to an uninterrupted run —
//! across thread counts — with completed houses replayed, never
//! recomputed.
//!
//! Fault-injection rules are process-global but scoped by scenario id,
//! so every test here runs under its own unique id.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use shatter_bench::fleet::{config_signature, run_fleet, FleetConfig, FleetPolicy};
use shatter_engine::scenario::scenario_seed;
use shatter_engine::{FixtureCache, HealthSink, RunParams, ScenarioCtx, WorkPool};
use shatter_store::Journal;

const N_HOUSES: usize = 8;

fn params() -> RunParams {
    RunParams {
        days: 2,
        span: 20,
        base_seed: 0,
    }
}

fn cfg() -> FleetConfig {
    FleetConfig {
        n_houses: N_HOUSES,
        sample: None,
        policy: FleetPolicy::default(),
    }
}

/// A standalone scenario context over a fresh cache; `extra_threads`
/// mirrors `--threads (extra_threads + 1)`.
fn ctx<'a>(id: &str, cache: &'a FixtureCache, extra_threads: usize) -> ScenarioCtx<'a> {
    ScenarioCtx {
        cache,
        params: params(),
        seed: scenario_seed(id, params().base_seed),
        pool: if extra_threads == 0 {
            WorkPool::serial()
        } else {
            WorkPool::new(extra_threads)
        },
        health: HealthSink::new(),
    }
}

/// The uninterrupted, un-journaled run every recovery path must match.
fn reference_table(id: &str) -> String {
    let cache = FixtureCache::new();
    let cx = ctx(id, &cache, 0);
    run_fleet(&cx, &cfg(), None).0.render()
}

fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shatter-fleet-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rec"))
        .collect();
    files.sort();
    files
}

#[test]
fn damaged_records_are_discarded_and_resume_is_byte_identical() {
    let id = "fleet-damage-test";
    let reference = reference_table(id);
    let dir = journal_dir("damage");
    let sig = config_signature(&cfg(), &params());

    {
        let cache = FixtureCache::new();
        let cx = ctx(id, &cache, 0);
        let journal = Journal::open(&dir, sig).unwrap();
        let (_, out) = run_fleet(&cx, &cfg(), Some(&journal));
        assert_eq!(out.computed, N_HOUSES as u64);
        assert_eq!(journal.stats().writes, N_HOUSES as u64);
    }

    // Simulate a kill -9 mid-write (torn tail) plus silent media
    // corruption (one flipped payload byte, which breaks the record's
    // FNV checksum).
    let files = record_files(&dir);
    assert_eq!(files.len(), N_HOUSES);
    let torn = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &torn[..torn.len() - 5]).unwrap();
    let mut flipped = std::fs::read(&files[1]).unwrap();
    let last = flipped.len() - 2;
    flipped[last] ^= 0x01;
    std::fs::write(&files[1], &flipped).unwrap();

    // Resume on a fresh cache: exactly the two damaged records are
    // discarded and recomputed; the six intact ones replay.
    let cache = FixtureCache::new();
    let cx = ctx(id, &cache, 0);
    let journal = Journal::open(&dir, sig).unwrap();
    assert_eq!(journal.stats().loaded, N_HOUSES as u64 - 2);
    assert_eq!(journal.stats().discarded, 2);
    let (table, out) = run_fleet(&cx, &cfg(), Some(&journal));
    assert_eq!(out.journal_hits, N_HOUSES as u64 - 2);
    assert_eq!(out.computed, 2);
    assert_eq!(table.render(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_is_byte_identical_across_thread_counts() {
    let id = "fleet-threads-test";
    let reference = reference_table(id);
    let dir = journal_dir("threads");
    let sig = config_signature(&cfg(), &params());

    // Populate the journal on 7 threads...
    {
        let cache = FixtureCache::new();
        let cx = ctx(id, &cache, 6);
        let journal = Journal::open(&dir, sig).unwrap();
        let (table, _) = run_fleet(&cx, &cfg(), Some(&journal));
        assert_eq!(
            table.render(),
            reference,
            "parallel fresh run must match serial"
        );
    }
    // ...and replay it serially: same bytes, zero recomputation.
    let cache = FixtureCache::new();
    let cx = ctx(id, &cache, 0);
    let journal = Journal::open(&dir, sig).unwrap();
    let (table, out) = run_fleet(&cx, &cfg(), Some(&journal));
    assert_eq!(out.journal_hits, N_HOUSES as u64);
    assert_eq!(out.computed, 0);
    assert_eq!(table.render(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_fleet_crash_resumes_without_recomputing_completed_houses() {
    let id = "fleet-crash-test";
    let reference = reference_table(id);
    let dir = journal_dir("crash");
    let sig = config_signature(&cfg(), &params());

    // The 5th journal write panics — a reproducible mid-fleet crash.
    // The write sits outside the per-house retry guard, so the panic
    // escapes run_fleet (in repro this surfaces as a Failed scenario
    // and a nonzero exit).
    shatter_faults::install_str(&format!("{id}/store.write/panic@4")).unwrap();
    {
        let cache = FixtureCache::new();
        let cx = ctx(id, &cache, 0);
        let journal = Journal::open(&dir, sig).unwrap();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            shatter_faults::with_scenario(id, || run_fleet(&cx, &cfg(), Some(&journal)))
        }));
        assert!(crashed.is_err(), "injected store.write panic must escape");
    }

    // Resume on a fresh cache: every record that made it to disk
    // replays (the fault rule has already fired and stays quiet).
    let cache = FixtureCache::new();
    let cx = ctx(id, &cache, 0);
    let journal = Journal::open(&dir, sig).unwrap();
    let persisted = journal.stats().loaded;
    assert!(
        persisted >= 4 && persisted < N_HOUSES as u64,
        "crash must leave a partial journal, got {persisted}"
    );
    let (table, out) = shatter_faults::with_scenario(id, || run_fleet(&cx, &cfg(), Some(&journal)));
    assert_eq!(out.journal_hits, persisted);
    assert_eq!(out.computed, N_HOUSES as u64 - persisted);
    assert_eq!(table.render(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_house_is_retried_and_completes() {
    let id = "fleet-retry-test";
    let reference = reference_table(id);
    shatter_faults::install_str(&format!("{id}/fleet.house/panic@0")).unwrap();
    let cache = FixtureCache::new();
    let cx = ctx(id, &cache, 0);
    let (table, out) = shatter_faults::with_scenario(id, || run_fleet(&cx, &cfg(), None));
    assert_eq!(out.retried, 1);
    assert_eq!(out.quarantined, 0);
    assert_eq!(cx.health.retried(), 1);
    // House 0 completed on attempt 1 with the same result bytes apart
    // from the attempts column.
    let row = &table.rows[0];
    assert_eq!(row[row.len() - 2], "ok");
    assert_eq!(row[row.len() - 1], "1");
    let mut expected: Vec<Vec<String>> = reference
        .lines()
        .skip(3)
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect();
    expected[0][10] = "1".to_string();
    let got: Vec<Vec<String>> = table
        .render()
        .lines()
        .skip(3)
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn house_exhausting_retries_is_quarantined() {
    let id = "fleet-quarantine-test";
    shatter_faults::install_str(&format!(
        "{id}/fleet.house/panic@0,{id}/fleet.house/panic@1"
    ))
    .unwrap();
    let cache = FixtureCache::new();
    let cx = ctx(id, &cache, 0);
    let (table, out) = shatter_faults::with_scenario(id, || run_fleet(&cx, &cfg(), None));
    assert_eq!(out.quarantined, 1);
    assert_eq!(
        out.retried, 0,
        "a quarantined house counts once, not as a retry"
    );
    assert_eq!(cx.health.quarantined(), 1);
    assert!(
        cx.health.is_degraded(),
        "quarantine must degrade the scenario"
    );
    let row = &table.rows[0];
    assert_eq!(row[row.len() - 2], "quarantined");
    assert!(
        row[3].is_empty(),
        "quarantined rows carry no fabricated numbers"
    );
    // The rest of the fleet is unaffected.
    assert!(table.rows[1..].iter().all(|r| r[r.len() - 2] == "ok"));
}
