//! Back-compat pins: the declarative `HouseSpec` path must produce
//! byte-identical datasets, fixtures and exhibit tables to the
//! pre-refactor `HouseKind` enum path. The pinned hashes were extracted
//! from the last enum-based commit (same seeds, same scale) — if one of
//! these fails, the house-axis refactor changed evaluation output.

use shatter_bench::run_exhibit;
use shatter_dataset::{synthesize, HouseSpec, SynthConfig};
use shatter_engine::HouseFixture;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Pinned on the pre-`HouseSpec` commit (HouseKind enum path).
const DATASET_A_12_11: u64 = 0xdb35225957b37e58;
const DATASET_B_12_22: u64 = 0x00268aa0e91beac9;
const EXHIBIT_FIG3_4: u64 = 0xa6e612dfafdacfb3;
const EXHIBIT_FIG6_12: u64 = 0xc131ea5da915ce70;
const EXHIBIT_TAB3_12: u64 = 0x6c29b27246993e58;

#[test]
fn aras_datasets_match_enum_path() {
    let da = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, 11));
    let db = synthesize(&SynthConfig::new(HouseSpec::aras_b(), 12, 22));
    assert_eq!(
        fnv1a(format!("{da:?}").as_bytes()),
        DATASET_A_12_11,
        "House A dataset diverged from the pre-refactor synthesis"
    );
    assert_eq!(
        fnv1a(format!("{db:?}").as_bytes()),
        DATASET_B_12_22,
        "House B dataset diverged from the pre-refactor synthesis"
    );
}

#[test]
fn fixtures_match_canonical_seeds() {
    // HouseFixture::new must pick the same canonical seeds (11/22) the
    // enum path hard-coded, and carry the same month.
    let fa = HouseFixture::new(&HouseSpec::aras_a(), 12);
    assert_eq!(fa.seed, 11);
    let direct = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, 11));
    assert_eq!(*fa.month, direct);
    let fb = HouseFixture::new(&HouseSpec::aras_b(), 12);
    assert_eq!(fb.seed, 22);
}

#[test]
fn exhibit_tables_match_enum_path() {
    // fig3 covers both houses' datasets + energy model; fig6 covers
    // episode extraction + ADM training geometry; tab3 covers reward
    // tables, DP/greedy schedules, stay-range thresholds and triggers.
    for (id, days, pin) in [
        ("fig3", 4usize, EXHIBIT_FIG3_4),
        ("fig6", 12, EXHIBIT_FIG6_12),
        ("tab3", 12, EXHIBIT_TAB3_12),
    ] {
        let t = run_exhibit(id, days, 20);
        assert_eq!(
            fnv1a(t.render().as_bytes()),
            pin,
            "{id} (days={days}) diverged from the pre-refactor table"
        );
    }
}
