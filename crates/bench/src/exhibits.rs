//! One function per paper exhibit, each a [`Scenario`] body taking the
//! engine's [`ScenarioCtx`]. See `DESIGN.md` §4 for the exhibit index and
//! `scenarios::register_builtin` for the registry wiring.
//!
//! All fixture-scale work (dataset synthesis, episode extraction, ADM
//! training) is pulled through the context's [`FixtureCache`], so a
//! full-suite run pays each shared fixture once.
//!
//! [`Scenario`]: shatter_engine::Scenario
//! [`FixtureCache`]: shatter_engine::FixtureCache

use std::sync::Arc;
use std::time::Instant;

use shatter_adm::dbscan::DbscanParams;
use shatter_adm::kmeans::KMeansParams;
use shatter_adm::{indices, metrics, AdmKind, HullAdm};
use shatter_core::{
    biota::detection_rate, impact, trigger, AttackSchedule, AttackerCapability, RewardTable,
    Scheduler, SmtScheduler, SmtStats, StrategyRegistry,
};
use shatter_dataset::attacks::{biota_attack_episodes, AttackerKnowledge, BiotaConfig};
use shatter_dataset::episodes::{extract_episodes, features_for, Episode};
use shatter_dataset::HouseSpec;
use shatter_engine::{HouseFixture, ScenarioCtx, Table};
use shatter_geometry::Point;
use shatter_hvac::{AshraeController, DchvacController, EnergyModel};
use shatter_smarthome::{houses, ApplianceId, Minute, OccupantId, ZoneId};
use shatter_testbed::experiment::{run_validation, ValidationConfig};

use crate::common::{dataset_label, EngineWindowMemo};

pub(crate) fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}
fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Stable memo-key fragment describing a trained ADM configuration.
pub(crate) fn adm_tag(kind: &AdmKind, train_days: usize) -> String {
    match kind {
        AdmKind::Dbscan(p) => format!("dbscan:{}:{}@{train_days}", p.eps, p.min_pts),
        AdmKind::KMeans(p) => format!("kmeans:{}:{}:{}@{train_days}", p.k, p.max_iter, p.seed),
    }
}

/// Stable memo-key prefix for SMT window solutions: identifies the day
/// trace ([`HouseFixture::cache_key`] = house spec signature + days +
/// seed, plus the day index), the ADM and the reward table the windows
/// are solved against. The scheduler appends the window span, boundary
/// stay and capability signature itself.
pub(crate) fn smt_prefix(
    fx: &HouseFixture,
    adm_tag: &str,
    table_tag: &str,
    day_idx: usize,
) -> String {
    format!("smtw/{}/{adm_tag}/{table_tag}/{day_idx}", fx.cache_key())
}

/// Cached reward table of a fixture's energy model (disk-tiered when
/// the cache has a blob store).
pub(crate) fn reward_table(cx: &ScenarioCtx<'_>, fx: &HouseFixture) -> Arc<RewardTable> {
    cx.cache
        .memo_blob(&format!("rtable/{}", fx.cache_key()), || {
            RewardTable::build(&fx.model)
        })
}

/// Cached benign per-day control costs ($) of a fixture's month.
pub(crate) fn benign_day_costs(cx: &ScenarioCtx<'_>, fx: &HouseFixture) -> Arc<Vec<f64>> {
    cx.cache
        .memo_blob(&format!("benign/{}", fx.cache_key()), || {
            fx.model
                .dataset_costs(&DchvacController, &fx.month.days)
                .iter()
                .map(|c| c.total_usd())
                .collect()
        })
}

/// Cached attack schedule for one day of a fixture's month. The key
/// carries the ADM tag, strategy key, capability signature and day, so
/// triggering on/off comparisons and overlapping exhibits synthesize
/// each schedule once.
#[allow(clippy::too_many_arguments)]
pub(crate) fn day_schedule(
    cx: &ScenarioCtx<'_>,
    fx: &HouseFixture,
    adm: &HullAdm,
    adm_tag: &str,
    strategy_key: &str,
    scheduler: &(dyn Scheduler + Sync),
    cap: &AttackerCapability,
    table: &RewardTable,
    day_idx: usize,
) -> Arc<AttackSchedule> {
    cx.cache.memo_blob(
        &format!(
            "sched/{}/{adm_tag}/{strategy_key}/{:016x}/{day_idx}",
            fx.cache_key(),
            cap.signature()
        ),
        || scheduler.schedule(table, adm, cap, &fx.month.days[day_idx]),
    )
}

/// Fig. 3 — ASHRAE vs proposed control cost per day, both houses.
pub fn fig3(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "fig3",
        "ASHRAE vs SHATTER control cost ($/day)",
        &["house", "day", "ashrae_usd", "dchvac_usd"],
    );
    for spec in [HouseSpec::aras_a(), HouseSpec::aras_b()] {
        let fx = cx.fixture(&spec, days);
        let ashrae = fx
            .model
            .dataset_costs(&AshraeController::default(), &fx.month.days);
        let dchvac = fx.model.dataset_costs(&DchvacController, &fx.month.days);
        let mut a_total = 0.0;
        let mut d_total = 0.0;
        for (day, (a, d)) in ashrae.iter().zip(&dchvac).enumerate() {
            a_total += a.total_usd();
            d_total += d.total_usd();
            t.push(vec![
                spec.short.clone(),
                day.to_string(),
                fmt2(a.total_usd()),
                fmt2(d.total_usd()),
            ]);
        }
        t.push(vec![
            spec.short.clone(),
            "TOTAL".into(),
            fmt2(a_total),
            fmt2(d_total),
        ]);
        t.push(vec![
            spec.short.clone(),
            "SAVINGS%".into(),
            String::new(),
            fmt2(100.0 * (1.0 - d_total / a_total)),
        ]);
    }
    t
}

/// Pools per-zone clusterings for one occupant and averages the three
/// validity indices, weighted by zone point count.
fn tuning_scores(points_by_zone: &[Vec<Point>], kind: &AdmKind) -> (f64, f64, f64) {
    let mut dbi_sum = 0.0;
    let mut sc_sum = 0.0;
    let mut chi_sum = 0.0;
    let mut weight = 0.0;
    for pts in points_by_zone {
        if pts.len() < 8 {
            continue;
        }
        let labels: Vec<Option<usize>> = match kind {
            AdmKind::Dbscan(p) => shatter_adm::dbscan::dbscan(pts, p)
                .labels
                .iter()
                .map(|l| match l {
                    shatter_adm::dbscan::Label::Cluster(c) => Some(*c),
                    shatter_adm::dbscan::Label::Noise => None,
                })
                .collect(),
            AdmKind::KMeans(p) => shatter_adm::kmeans::kmeans(pts, p)
                .assignments
                .iter()
                .map(|&a| Some(a))
                .collect(),
        };
        let (Some(dbi), Some(sc), Some(chi)) = (
            indices::davies_bouldin(pts, &labels),
            indices::silhouette(pts, &labels),
            indices::calinski_harabasz(pts, &labels),
        ) else {
            continue;
        };
        let w = pts.len() as f64;
        dbi_sum += dbi * w;
        sc_sum += sc * w;
        chi_sum += chi * w;
        weight += w;
    }
    if weight == 0.0 {
        (f64::NAN, f64::NAN, f64::NAN)
    } else {
        (dbi_sum / weight, sc_sum / weight, chi_sum / weight)
    }
}

/// Fig. 4 — ADM hyperparameter tuning on HAO1 (Davies-Bouldin,
/// Silhouette, Calinski-Harabasz vs DBSCAN `minPts` and K-Means `k`).
pub fn fig4(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let house_a = HouseSpec::aras_a();
    let fx = cx.fixture(&house_a, days);
    let eps = cx.episodes(&house_a, days);
    let points_by_zone: Vec<Vec<Point>> = (0..fx.home.zones().len())
        .map(|z| {
            features_for(&eps, OccupantId(0), ZoneId(z))
                .into_iter()
                .map(|(x, y)| Point::new(x, y))
                .collect()
        })
        .collect();
    let mut t = Table::new(
        "fig4",
        "ADM hyperparameter tuning (HAO1)",
        &[
            "algorithm",
            "param",
            "davies_bouldin",
            "silhouette",
            "calinski_harabasz",
        ],
    );
    for min_pts in (2..=50).step_by(4) {
        let kind = AdmKind::Dbscan(DbscanParams { eps: 45.0, min_pts });
        let (dbi, sc, chi) = tuning_scores(&points_by_zone, &kind);
        t.push(vec![
            "DBSCAN".into(),
            min_pts.to_string(),
            fmt3(dbi),
            fmt3(sc),
            fmt3(chi),
        ]);
    }
    for k in (2..=40).step_by(4) {
        let kind = AdmKind::KMeans(KMeansParams {
            k,
            ..KMeansParams::default()
        });
        let (dbi, sc, chi) = tuning_scores(&points_by_zone, &kind);
        t.push(vec![
            "K-Means".into(),
            k.to_string(),
            fmt3(dbi),
            fmt3(sc),
            fmt3(chi),
        ]);
    }
    t
}

/// Occupant-filtered ADM evaluation against BIoTA attack samples.
fn score_occupant(
    adm: &HullAdm,
    occupant: OccupantId,
    benign: &[Episode],
    attacks: &[Episode],
) -> metrics::Confusion {
    let b: Vec<Episode> = benign
        .iter()
        .filter(|e| e.occupant == occupant)
        .copied()
        .collect();
    let a: Vec<Episode> = attacks
        .iter()
        .filter(|e| e.occupant == occupant)
        .copied()
        .collect();
    metrics::evaluate(adm, &b, &a)
}

/// Fig. 5 — progressive F1 vs number of training days, both ADMs × all
/// four datasets (HAO1/HAO2/HBO1/HBO2).
pub fn fig5(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "fig5",
        "Progressive F1 (%) vs training days",
        &["adm", "dataset", "train_days", "f1_pct"],
    );
    let train_points: Vec<usize> = [10usize, 15, 20, 25]
        .into_iter()
        .filter(|&d| d + 5 <= days)
        .collect();
    for kind_label in ["DBSCAN", "K-Means"] {
        for house in [HouseSpec::aras_a(), HouseSpec::aras_b()] {
            let fx = cx.fixture(&house, days);
            for occupant in 0..2usize {
                for &td in &train_points {
                    let (train, test) = fx.month.split_at_day(td);
                    let kind = if kind_label == "DBSCAN" {
                        AdmKind::default_dbscan()
                    } else {
                        AdmKind::default_kmeans()
                    };
                    let adm = cx.adm(&house, days, kind, td);
                    let attacks = biota_attack_episodes(&train, &BiotaConfig::default());
                    let benign = extract_episodes(&test);
                    let c = score_occupant(&adm, OccupantId(occupant), &benign, &attacks);
                    t.push(vec![
                        kind_label.into(),
                        dataset_label(&house, occupant),
                        td.to_string(),
                        fmt2(100.0 * c.f1()),
                    ]);
                }
            }
        }
    }
    t
}

/// Fig. 6 — cluster hull geometry for HAO1 under both ADMs, with
/// coverage areas (K-Means hulls cover more area).
pub fn fig6(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let house_a = HouseSpec::aras_a();
    let fx = cx.fixture(&house_a, days);
    let mut t = Table::new(
        "fig6",
        "ADM cluster hulls (HAO1): vertices and coverage",
        &[
            "adm",
            "zone",
            "cluster",
            "vertex",
            "arrival_min",
            "stay_min",
        ],
    );
    for (label, kind) in [
        ("DBSCAN", AdmKind::default_dbscan()),
        ("K-Means", AdmKind::default_kmeans()),
    ] {
        let adm = cx.adm(&house_a, days, kind, days);
        let mut area = 0.0;
        for z in 0..fx.home.zones().len() {
            let Some(zm) = adm.zone_model(OccupantId(0), ZoneId(z)) else {
                continue;
            };
            for (ci, hull) in zm.hulls.iter().enumerate() {
                area += hull.area();
                for (vi, v) in hull.vertices().iter().enumerate() {
                    t.push(vec![
                        label.into(),
                        z.to_string(),
                        ci.to_string(),
                        vi.to_string(),
                        fmt2(v.x),
                        fmt2(v.y),
                    ]);
                }
            }
        }
        t.push(vec![
            label.into(),
            "ALL".into(),
            "AREA".into(),
            String::new(),
            String::new(),
            fmt2(area),
        ]);
    }
    t
}

/// Table III — the §V case study: actual vs greedy vs SHATTER schedules
/// over ten evening slots, with stay-range thresholds and trigger status.
#[allow(clippy::needless_range_loop)] // occupant index addresses schedules, names, triggers
pub fn tab3(cx: &ScenarioCtx<'_>) -> Table {
    let days = 12;
    let house_a = HouseSpec::aras_a();
    let fx = cx.fixture(&house_a, days);
    let adm = cx.adm(&house_a, days, AdmKind::default_kmeans(), 10);
    let table = reward_table(cx, &fx);
    let cap = AttackerCapability::full(&fx.home);
    let day = &fx.month.days[3]; // "day 4"
    let start = 1080usize;
    let span = 10usize;

    let strategies = StrategyRegistry::builtin();
    let greedy_sched = &strategies.get("greedy").expect("builtin greedy").scheduler;
    let shatter_sched = &strategies.get("dp").expect("builtin dp").scheduler;

    let actual = AttackSchedule::from_actual(day);
    let greedy = greedy_sched.schedule(&table, &adm, &cap, day);
    let shatter = shatter_sched.schedule(&table, &adm, &cap, day);
    let triggers = trigger::plan_triggers(&fx.home, &adm, &cap, day, &shatter);

    let mut header: Vec<String> = vec!["row".into(), "occupant".into()];
    for s in 0..span {
        header.push(format!("t{}", start + s));
    }
    let mut t = Table {
        id: "tab3".into(),
        title: "Case study: 18:00–18:09, actual vs greedy vs SHATTER".into(),
        header,
        rows: Vec::new(),
    };
    let names = ["Alice", "Bob"];
    for (label, sched) in [
        ("Actual", &actual),
        ("Greedy", &greedy),
        ("SHATTER", &shatter),
    ] {
        for o in 0..2usize {
            let mut row = vec![label.to_string(), names[o].to_string()];
            for s in 0..span {
                row.push(sched.zones[o][start + s].index().to_string());
            }
            t.push(row);
        }
    }
    // Stay-range thresholds for the SHATTER-reported zone at each slot.
    for o in 0..2usize {
        let mut row = vec!["RangeThresh".to_string(), names[o].to_string()];
        for s in 0..span {
            let z = shatter.zones[o][start + s];
            let mut arrival = start + s;
            while arrival > 0 && shatter.zones[o][arrival - 1] == z {
                arrival -= 1;
            }
            let ranges = adm.stay_ranges(OccupantId(o), z, arrival as f64);
            row.push(match ranges.first() {
                Some(&(lo, hi)) => format!("[{:.0}-{:.0}]", lo, hi),
                None => "[]".into(),
            });
        }
        t.push(row);
    }
    // Trigger status per occupant per slot.
    for o in 0..2usize {
        let mut row = vec!["Trigger".to_string(), names[o].to_string()];
        for s in 0..span {
            let z = shatter.zones[o][start + s];
            let fired = triggers.on[start + s]
                .iter()
                .any(|aid| fx.home.appliance(*aid).zone == z);
            row.push(fired.to_string());
        }
        t.push(row);
    }
    // Cost rows over the window.
    let window_cost = |sched: &AttackSchedule, o: usize| -> f64 {
        (start..start + span)
            .map(|s| table.rate(OccupantId(o), sched.zones[o][s], s as Minute))
            .sum::<f64>()
            * 100.0 // cents
    };
    for (label, sched) in [
        ("ActualCost_c", &actual),
        ("GreedyCost_c", &greedy),
        ("ShatterCost_c", &shatter),
    ] {
        for o in 0..2usize {
            let mut row = vec![label.to_string(), names[o].to_string()];
            row.push(fmt3(window_cost(sched, o)));
            row.extend(std::iter::repeat_n(String::new(), span - 1));
            t.push(row);
        }
    }
    t
}

/// Table IV — ADM detection quality (accuracy / precision / recall / F1)
/// for both ADMs × four datasets × attacker knowledge.
pub fn tab4(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "tab4",
        "ADM comparison vs attacker knowledge",
        &[
            "adm",
            "knowledge",
            "dataset",
            "accuracy",
            "precision",
            "recall",
            "f1",
        ],
    );
    let train_days = (days * 2) / 3;
    for (kind_label, kind) in [
        ("DBSCAN", AdmKind::default_dbscan()),
        ("K-Means", AdmKind::default_kmeans()),
    ] {
        for knowledge in [AttackerKnowledge::All, AttackerKnowledge::half()] {
            for house in [HouseSpec::aras_a(), HouseSpec::aras_b()] {
                let fx = cx.fixture(&house, days);
                let (train, test) = fx.month.split_at_day(train_days);
                let adm = cx.adm(&house, days, kind, train_days);
                let attacks = biota_attack_episodes(
                    &train,
                    &BiotaConfig {
                        knowledge,
                        ..BiotaConfig::default()
                    },
                );
                let benign = extract_episodes(&test);
                for occupant in 0..2usize {
                    let c = score_occupant(&adm, OccupantId(occupant), &benign, &attacks);
                    t.push(vec![
                        kind_label.into(),
                        match knowledge {
                            AttackerKnowledge::All => "All".into(),
                            AttackerKnowledge::Partial(_) => "Partial".into(),
                        },
                        dataset_label(&house, occupant),
                        fmt2(c.accuracy()),
                        fmt2(c.precision()),
                        fmt2(c.recall()),
                        fmt2(c.f1()),
                    ]);
                }
            }
        }
    }
    t
}

/// Monthly attacked cost of a scheduler against an (attacker-side) ADM,
/// with detection measured against the defender's ADM. Schedules,
/// reward table and benign day costs come from the fixture cache.
#[allow(clippy::too_many_arguments)]
fn monthly_attack(
    cx: &ScenarioCtx<'_>,
    fx: &HouseFixture,
    attacker_adm: &HullAdm,
    atk_tag: &str,
    defender_adm: &HullAdm,
    strategy_key: &str,
    scheduler: &(dyn Scheduler + Sync),
    with_triggering: bool,
) -> (f64, f64, f64) {
    let cap = AttackerCapability::full(&fx.home);
    let table = reward_table(cx, fx);
    let benign_costs = benign_day_costs(cx, fx);
    // Per-day synthesis+pricing cells are independent; split them over
    // the run's slot budget and reduce in submission order.
    let per_day = cx.par_map(&fx.month.days, |d, day| {
        let sched = day_schedule(
            cx,
            fx,
            attacker_adm,
            atk_tag,
            strategy_key,
            scheduler,
            &cap,
            &table,
            d,
        );
        let out = impact::evaluate_day_with_schedule(
            &fx.model,
            attacker_adm,
            &cap,
            day,
            &sched,
            with_triggering,
            Some(benign_costs[d]),
        );
        (
            out.attacked_cost_usd,
            out.benign_cost_usd,
            detection_rate(defender_adm, &out.schedule, day),
        )
    });
    let mut attacked = 0.0;
    let mut benign = 0.0;
    let mut detect_sum = 0.0;
    for (a, b, det) in per_day {
        attacked += a;
        benign += b;
        detect_sum += det;
    }
    (attacked, benign, detect_sum / fx.month.days.len() as f64)
}

/// Table V — BIoTA vs Greedy vs SHATTER monthly energy cost under both
/// ADMs and both knowledge levels. Strategies come from the core
/// [`StrategyRegistry`] rather than being hard-coded.
pub fn tab5(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "tab5",
        "Attack impact: BIoTA vs Greedy vs SHATTER (monthly $, no triggering)",
        &[
            "framework",
            "adm",
            "knowledge",
            "house_a_usd",
            "house_b_usd",
            "detect_a",
            "detect_b",
        ],
    );
    let house_a = HouseSpec::aras_a();
    let house_b = HouseSpec::aras_b();
    let fx_a = cx.fixture(&house_a, days);
    let fx_b = cx.fixture(&house_b, days);
    let strategies = StrategyRegistry::builtin();
    // Month-scale sweep: the SMT scheduler is orders of magnitude slower
    // per day (Fig. 11) and is excluded here exactly as in the paper.
    let month_scale: Vec<_> = strategies
        .iter()
        .filter(|e| e.adm_aware && e.key != "smt")
        .collect();
    let framework_label = |key: &'static str| -> &'static str {
        match key {
            "biota" => "BIoTA",
            "greedy" => "Greedy",
            "dp" => "SHATTER",
            "smt" => "SHATTER-SMT",
            other => other,
        }
    };

    // Benign reference rows.
    let benign_a: f64 = benign_day_costs(cx, &fx_a).iter().sum();
    let benign_b: f64 = benign_day_costs(cx, &fx_b).iter().sum();
    t.push(vec![
        "Benign".into(),
        "-".into(),
        "-".into(),
        fmt2(benign_a),
        fmt2(benign_b),
        "-".into(),
        "-".into(),
    ]);

    for (kind_label, kind) in [
        ("DBSCAN", AdmKind::default_dbscan()),
        ("K-Means", AdmKind::default_kmeans()),
    ] {
        let def_a = cx.adm(&house_a, days, kind, days);
        let def_b = cx.adm(&house_b, days, kind, days);

        // ADM-oblivious strategies (BIoTA's rules-based world): one row
        // each, independent of the defender's ADM choice.
        if kind_label == "DBSCAN" {
            let def_tag = adm_tag(&kind, days);
            for entry in strategies.iter().filter(|e| !e.adm_aware) {
                let sched: &(dyn Scheduler + Sync) = &*entry.scheduler;
                let (a, _, da) =
                    monthly_attack(cx, &fx_a, &def_a, &def_tag, &def_a, entry.key, sched, false);
                let (b, _, db) =
                    monthly_attack(cx, &fx_b, &def_b, &def_tag, &def_b, entry.key, sched, false);
                t.push(vec![
                    framework_label(entry.key).into(),
                    "Rules".into(),
                    "-".into(),
                    fmt2(a),
                    fmt2(b),
                    fmt2(da),
                    fmt2(db),
                ]);
            }
        }

        for knowledge in ["All", "Partial"] {
            let atk_days = if knowledge == "All" { days } else { days / 2 };
            let atk_a = cx.adm(&house_a, days, kind, atk_days);
            let atk_b = cx.adm(&house_b, days, kind, atk_days);
            let atk_tag = adm_tag(&kind, atk_days);
            for entry in &month_scale {
                let sched: &(dyn Scheduler + Sync) = &*entry.scheduler;
                let (a, _, da) =
                    monthly_attack(cx, &fx_a, &atk_a, &atk_tag, &def_a, entry.key, sched, false);
                let (b, _, db) =
                    monthly_attack(cx, &fx_b, &atk_b, &atk_tag, &def_b, entry.key, sched, false);
                t.push(vec![
                    framework_label(entry.key).into(),
                    kind_label.into(),
                    knowledge.into(),
                    fmt2(a),
                    fmt2(b),
                    fmt2(da),
                    fmt2(db),
                ]);
            }
        }
    }
    t
}

/// `strategies` — one-day shootout across *every* registered attack
/// strategy (including SMT, affordable at day scale): reward, divergence
/// from actual behaviour, stealth validation, and detection rate.
pub fn strategies(cx: &ScenarioCtx<'_>) -> Table {
    let days = 12;
    let day_idx = 10;
    let adm_kind = AdmKind::default_kmeans();
    let house_a = HouseSpec::aras_a();
    let fx = cx.fixture(&house_a, days);
    let adm = cx.adm(&house_a, days, adm_kind, 10);
    let table = reward_table(cx, &fx);
    let cap = AttackerCapability::full(&fx.home);
    let day = &fx.month.days[day_idx];
    let mut t = Table::new(
        "strategies",
        "Attack-strategy shootout (House A, one day, registry-enumerated)",
        &[
            "key",
            "name",
            "reward",
            "divergence_min",
            "stealthy",
            "detect",
            "theory_conflicts",
            "sat_decisions",
            "sat_propagations",
            "sat_learned",
            "sat_restarts",
            "sat_gcd",
            "sat_live",
            "float_piv",
            "fb",
            "bin_props",
            "phase_resets",
            "pf_wins",
        ],
    );
    let registry = StrategyRegistry::builtin();
    let entries: Vec<_> = registry.iter().collect();
    // Every (strategy, occupant) zone row is independent; the SMT rows
    // dominate and split across the pool, with their window solutions
    // memoized so fig11's span sweep shares them.
    let memo = EngineWindowMemo(cx.cache);
    let prefix = smt_prefix(&fx, &adm_tag(&adm_kind, 10), "std", day_idx);
    let n_occupants = day.minutes[0].occupants.len();
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for ei in 0..entries.len() {
        for o in 0..n_occupants {
            cells.push((ei, o));
        }
    }
    // Hard SMT windows additionally race portfolio attempts through the
    // same slot budget (nested fan-out; a zero surplus runs them inline).
    let exec = cx.batch_executor();
    let rows = cx.par_map(&cells, |_, &(ei, o)| {
        entries[ei].scheduler.schedule_occupant_zones_batched(
            OccupantId(o),
            &table,
            &adm,
            &cap,
            day,
            &memo,
            &prefix,
            &exec,
        )
    });
    for (ei, entry) in entries.iter().enumerate() {
        let zones: Vec<_> = (0..n_occupants)
            .map(|o| rows[ei * n_occupants + o].0.clone())
            .collect();
        // Solver-effort counters summed over the occupant rows; the
        // memo replays them on cache hits, so they match a cold run.
        let mut stats = SmtStats::default();
        for o in 0..n_occupants {
            let s = &rows[ei * n_occupants + o].1;
            stats.theory_conflicts += s.theory_conflicts;
            stats.sat_decisions += s.sat_decisions;
            stats.sat_propagations += s.sat_propagations;
            stats.sat_learned += s.sat_learned;
            stats.sat_restarts += s.sat_restarts;
            stats.sat_gc_clauses += s.sat_gc_clauses;
            stats.sat_learnt_live = stats.sat_learnt_live.max(s.sat_learnt_live);
            stats.float_pivots += s.float_pivots;
            stats.exact_fallbacks += s.exact_fallbacks;
            stats.degraded_windows += s.degraded_windows;
            stats.retried_windows += s.retried_windows;
            stats.bin_props += s.bin_props;
            stats.phase_resets += s.phase_resets;
            stats.portfolio_wins += s.portfolio_wins;
        }
        // Budget-degraded windows surface on the run status, not as a
        // table column — clean-run tables stay byte-identical.
        if stats.degraded_windows > 0 {
            cx.health.note_degraded(format!(
                "strategies/{}: {} budget-degraded SMT window(s)",
                entry.key, stats.degraded_windows
            ));
        }
        let sched = AttackSchedule::from_zone_rows(zones, &table);
        let stealthy = sched.validate(&adm, &cap, day).is_ok();
        t.push(vec![
            entry.key.into(),
            entry.scheduler.name().into(),
            fmt3(sched.reward(&table)),
            sched.divergence(day).to_string(),
            stealthy.to_string(),
            fmt2(detection_rate(&adm, &sched, day)),
            stats.theory_conflicts.to_string(),
            stats.sat_decisions.to_string(),
            stats.sat_propagations.to_string(),
            stats.sat_learned.to_string(),
            stats.sat_restarts.to_string(),
            stats.sat_gc_clauses.to_string(),
            stats.sat_learnt_live.to_string(),
            stats.float_pivots.to_string(),
            stats.exact_fallbacks.to_string(),
            stats.bin_props.to_string(),
            stats.phase_resets.to_string(),
            stats.portfolio_wins.to_string(),
        ]);
    }
    t
}

/// Fig. 10 — daily control cost with and without appliance triggering
/// (DBSCAN ADM, full access).
pub fn fig10(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "fig10",
        "Daily cost: benign vs attack without/with appliance triggering",
        &[
            "house",
            "day",
            "benign_usd",
            "without_trig_usd",
            "with_trig_usd",
        ],
    );
    for kind in [HouseSpec::aras_a(), HouseSpec::aras_b()] {
        let fx = cx.fixture(&kind, days);
        let adm_kind = AdmKind::default_dbscan();
        let adm = cx.adm(&kind, days, adm_kind, days);
        let tag = adm_tag(&adm_kind, days);
        let cap = AttackerCapability::full(&fx.home);
        let table = reward_table(cx, &fx);
        let benign_costs = benign_day_costs(cx, &fx);
        let sched = StrategyRegistry::builtin()
            .get("dp")
            .expect("builtin dp")
            .scheduler
            .clone();
        let mut sums = (0.0, 0.0, 0.0);
        for (d, day) in fx.month.days.iter().enumerate() {
            // Both legs pull the day's schedule through the cache, so it
            // is synthesized once and shared (also with tab5/tab6/tab7,
            // which evaluate the same full-capability DP attack).
            let schedule = day_schedule(cx, &fx, &adm, &tag, "dp", &*sched, &cap, &table, d);
            let without = impact::evaluate_day_with_schedule(
                &fx.model,
                &adm,
                &cap,
                day,
                &schedule,
                false,
                Some(benign_costs[d]),
            );
            let schedule = day_schedule(cx, &fx, &adm, &tag, "dp", &*sched, &cap, &table, d);
            let with = impact::evaluate_day_with_schedule(
                &fx.model,
                &adm,
                &cap,
                day,
                &schedule,
                true,
                Some(benign_costs[d]),
            );
            sums.0 += without.benign_cost_usd;
            sums.1 += without.attacked_cost_usd;
            sums.2 += with.attacked_cost_usd;
            t.push(vec![
                kind.short.clone(),
                d.to_string(),
                fmt2(without.benign_cost_usd),
                fmt2(without.attacked_cost_usd),
                fmt2(with.attacked_cost_usd),
            ]);
        }
        t.push(vec![
            kind.short.clone(),
            "TOTAL".into(),
            fmt2(sums.0),
            fmt2(sums.1),
            fmt2(sums.2),
        ]);
        t.push(vec![
            kind.short.clone(),
            "TRIG_GAIN".into(),
            String::new(),
            String::new(),
            format!(
                "{:.2} (+{:.1}%)",
                sums.2 - sums.1,
                100.0 * (sums.2 - sums.1) / sums.1
            ),
        ]);
    }
    t
}

/// Shared sweep core for Tables VI and VII: appliance-triggering impact
/// (cost with triggering − cost without) under a restricted capability.
/// Each day's schedule is synthesized once and priced for both legs; the
/// capability signature keys the cached schedules.
fn triggering_impact(
    cx: &ScenarioCtx<'_>,
    fx: &HouseFixture,
    adm: &HullAdm,
    tag: &str,
    cap: &AttackerCapability,
) -> f64 {
    let table = reward_table(cx, fx);
    let benign_costs = benign_day_costs(cx, fx);
    let sched = StrategyRegistry::builtin()
        .get("dp")
        .expect("builtin dp")
        .scheduler
        .clone();
    // Days are independent; each cell prices both legs off one cached
    // schedule. Under tab6 the zone-subset cells usually hold the whole
    // slot budget already, so this inner par_map degrades to a serial
    // loop there while tab7's direct calls still fan out.
    let per_day = cx.par_map(&fx.month.days, |d, day| {
        let schedule = day_schedule(cx, fx, adm, tag, "dp", &*sched, cap, &table, d);
        let without = impact::evaluate_day_with_schedule(
            &fx.model,
            adm,
            cap,
            day,
            &schedule,
            false,
            Some(benign_costs[d]),
        )
        .attacked_cost_usd;
        let with = impact::evaluate_day_with_schedule(
            &fx.model,
            adm,
            cap,
            day,
            &schedule,
            true,
            Some(benign_costs[d]),
        )
        .attacked_cost_usd;
        (without, with)
    });
    per_day.iter().map(|(w, t)| t - w).sum()
}

/// Table VI — triggering-attack impact vs number of accessible zones.
pub fn tab6(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "tab6",
        "Appliance-triggering impact vs accessible zones ($/month)",
        &["zones", "house_a_usd", "house_b_usd"],
    );
    // For each access budget, an optimal attacker picks the *best* zone
    // subset; enumerate all subsets of that size and take the maximum.
    // Every (subset, house) sweep is an independent month of schedule
    // synthesis — the exhibit's entire cost — so they all go through one
    // par_map and the per-size maxima are folded from the ordered result.
    let all_zones = [ZoneId(1), ZoneId(2), ZoneId(3), ZoneId(4)];
    let house_a = HouseSpec::aras_a();
    let house_b = HouseSpec::aras_b();
    let fx_a = cx.fixture(&house_a, days);
    let fx_b = cx.fixture(&house_b, days);
    let adm_kind = AdmKind::default_dbscan();
    let adm_a = cx.adm(&house_a, days, adm_kind, days);
    let adm_b = cx.adm(&house_b, days, adm_kind, days);
    let tag = adm_tag(&adm_kind, days);
    let sizes = [4usize, 3, 2];
    // (subset size, zone mask, house index into the fixture pair).
    let mut cells: Vec<(usize, u32, usize)> = Vec::new();
    for &size in &sizes {
        for mask in 0u32..16 {
            if mask.count_ones() as usize == size {
                for house in 0..2usize {
                    cells.push((size, mask, house));
                }
            }
        }
    }
    let impacts = cx.par_map(&cells, |_, &(_, mask, house)| {
        let zones: Vec<ZoneId> = all_zones
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, z)| *z)
            .collect();
        let (fx, adm) = if house == 0 {
            (&fx_a, &adm_a)
        } else {
            (&fx_b, &adm_b)
        };
        let cap = AttackerCapability::full(&fx.home).with_zone_access(zones);
        triggering_impact(cx, fx, adm, &tag, &cap)
    });
    for &size in &sizes {
        let mut best = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (cell, impact) in cells.iter().zip(&impacts) {
            match cell {
                (s, _, 0) if *s == size => best.0 = best.0.max(*impact),
                (s, _, _) if *s == size => best.1 = best.1.max(*impact),
                _ => {}
            }
        }
        t.push(vec![size.to_string(), fmt2(best.0), fmt2(best.1)]);
    }
    t
}

/// Table VII — triggering-attack impact vs number of accessible
/// appliances.
pub fn tab7(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "tab7",
        "Appliance-triggering impact vs accessible appliances ($/month)",
        &["appliances", "house_a_usd", "house_b_usd"],
    );
    let all: Vec<ApplianceId> = (0..13).map(ApplianceId).collect();
    // "8": drop the livingroom/bedroom electronics; "3": highest-power trio.
    let eight: Vec<ApplianceId> = (3..11).map(ApplianceId).collect();
    let three: Vec<ApplianceId> = [4usize, 10, 5].into_iter().map(ApplianceId).collect();
    let house_a = HouseSpec::aras_a();
    let house_b = HouseSpec::aras_b();
    let fx_a = cx.fixture(&house_a, days);
    let fx_b = cx.fixture(&house_b, days);
    let adm_kind = AdmKind::default_dbscan();
    let adm_a = cx.adm(&house_a, days, adm_kind, days);
    let adm_b = cx.adm(&house_b, days, adm_kind, days);
    let tag = adm_tag(&adm_kind, days);
    for (label, set) in [("13", all), ("8", eight), ("3", three)] {
        let cap_a = AttackerCapability::full(&fx_a.home).with_appliance_access(set.clone());
        let cap_b = AttackerCapability::full(&fx_b.home).with_appliance_access(set);
        t.push(vec![
            label.into(),
            fmt2(triggering_impact(cx, &fx_a, &adm_a, &tag, &cap_a)),
            fmt2(triggering_impact(cx, &fx_b, &adm_b, &tag, &cap_b)),
        ]);
    }
    t
}

/// Fig. 11 — scalability: SMT scheduling time vs optimization horizon
/// (exponential trend) and vs number of zones (linear trend). Timing
/// columns make this exhibit non-byte-stable across runs.
pub fn fig11(cx: &ScenarioCtx<'_>) -> Table {
    let span = cx.span();
    let mut t = Table::new(
        "fig11",
        "SMT scheduler scalability",
        &[
            "sweep",
            "value",
            "house",
            "total_ms",
            "per_window_us",
            "theory_conflicts",
            "sat_decisions",
            "sat_propagations",
            "sat_learned",
            "sat_restarts",
            "sat_gcd",
            "sat_live",
            "float_piv",
            "fb",
            "bin_props",
            "phase_resets",
            "pf_wins",
        ],
    );
    /// One measurement of the span sweep: (a) a time-horizon point on an
    /// ARAS house, or (b) a zone-count point on the scaled home.
    enum Sweep {
        Horizon(HouseSpec, usize),
        Zones(usize),
    }
    let mut points: Vec<Sweep> = Vec::new();
    for kind in [HouseSpec::aras_a(), HouseSpec::aras_b()] {
        for horizon in [10usize, 14, 18, 22, 26] {
            points.push(Sweep::Horizon(kind.clone(), horizon));
        }
    }
    for n_zones in [4usize, 8, 12, 16, 20, 24] {
        points.push(Sweep::Zones(n_zones));
    }
    let day_idx = 10;
    let adm_kind = AdmKind::default_kmeans();
    let memo = EngineWindowMemo(cx.cache);
    // Hard windows inside a sweep point race portfolio attempts through
    // the run's shared slot budget (nested under the point-level fan-out).
    let exec = cx.batch_executor();
    // Every sweep point is an independent solver run; rows come back in
    // submission order. Window solutions flow through the fixture cache,
    // so re-solved spans (e.g. the horizon-10 House-A windows the
    // strategy shootout already committed) are lookups, not solves —
    // wall-clock columns then time the residual solver work, which is
    // exactly the engine's cost model for the suite.
    let rows = cx.par_map(&points, |_, point| match point {
        Sweep::Horizon(kind, horizon) => {
            let horizon = *horizon;
            let fx = cx.fixture(kind, 12);
            let adm = cx.adm(kind, 12, adm_kind, 10);
            let table = reward_table(cx, &fx);
            let cap = AttackerCapability::full(&fx.home);
            let day = &fx.month.days[day_idx];
            let sched = SmtScheduler {
                horizon,
                ..SmtScheduler::default()
            };
            let prefix = smt_prefix(&fx, &adm_tag(&adm_kind, 10), "std", day_idx);
            // Solve windows of exactly `horizon` slots covering `span`
            // minutes, normalizing to time *per window* so the sweep
            // isolates the per-window encoding blow-up (the paper's
            // lookback-time axis).
            let start = Instant::now();
            let (_, stats) = sched.schedule_occupant_memo_exec(
                OccupantId(0),
                &table,
                &adm,
                &cap,
                day,
                span,
                Some((&memo, &prefix)),
                &exec,
            );
            let elapsed = start.elapsed();
            let per_window_us = elapsed.as_micros() as f64 / stats.windows.max(1) as f64;
            if stats.degraded_windows > 0 {
                cx.health.note_degraded(format!(
                    "fig11 horizon={horizon} house {}: {} budget-degraded SMT window(s)",
                    kind.short, stats.degraded_windows
                ));
            }
            vec![
                "horizon".into(),
                horizon.to_string(),
                kind.short.clone(),
                elapsed.as_millis().to_string(),
                format!("{per_window_us:.0}"),
                stats.theory_conflicts.to_string(),
                stats.sat_decisions.to_string(),
                stats.sat_propagations.to_string(),
                stats.sat_learned.to_string(),
                stats.sat_restarts.to_string(),
                stats.sat_gc_clauses.to_string(),
                stats.sat_learnt_live.to_string(),
                stats.float_pivots.to_string(),
                stats.exact_fallbacks.to_string(),
                stats.bin_props.to_string(),
                stats.phase_resets.to_string(),
                stats.portfolio_wins.to_string(),
            ]
        }
        Sweep::Zones(n_zones) => {
            // (b) horizontal scaling: number of zones (lookback 10).
            let n_zones = *n_zones;
            let home = houses::scaled_home(n_zones);
            let model = EnergyModel::standard(home.clone());
            let table = RewardTable::build(&model);
            let house_a = HouseSpec::aras_a();
            let fx = cx.fixture(&house_a, 12);
            let adm = cx.adm(&house_a, 12, adm_kind, 10);
            let cap = AttackerCapability::full(&home);
            let day = &fx.month.days[day_idx];
            let sched = SmtScheduler::default();
            let prefix = smt_prefix(
                &fx,
                &adm_tag(&adm_kind, 10),
                &format!("scaled{n_zones}"),
                day_idx,
            );
            let start = Instant::now();
            let (_, stats) = sched.schedule_occupant_memo_exec(
                OccupantId(0),
                &table,
                &adm,
                &cap,
                day,
                span,
                Some((&memo, &prefix)),
                &exec,
            );
            let elapsed = start.elapsed();
            let per_window_us = elapsed.as_micros() as f64 / stats.windows.max(1) as f64;
            if stats.degraded_windows > 0 {
                cx.health.note_degraded(format!(
                    "fig11 zones={n_zones}: {} budget-degraded SMT window(s)",
                    stats.degraded_windows
                ));
            }
            vec![
                "zones".into(),
                n_zones.to_string(),
                "A".into(),
                elapsed.as_millis().to_string(),
                format!("{per_window_us:.0}"),
                stats.theory_conflicts.to_string(),
                stats.sat_decisions.to_string(),
                stats.sat_propagations.to_string(),
                stats.sat_learned.to_string(),
                stats.sat_restarts.to_string(),
                stats.sat_gc_clauses.to_string(),
                stats.sat_learnt_live.to_string(),
                stats.float_pivots.to_string(),
                stats.exact_fallbacks.to_string(),
                stats.bin_props.to_string(),
                stats.phase_resets.to_string(),
                stats.portfolio_wins.to_string(),
            ]
        }
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// Ablation study of SHATTER's design choices (not a paper exhibit; see
/// DESIGN.md §6): optimization-horizon sweep, trigger-aware scheduling
/// on/off, ADM cluster-radius sweep, and battery-size sweep.
pub fn ablation(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let mut t = Table::new(
        "ablation",
        "Design-choice ablations (House A)",
        &[
            "ablation",
            "setting",
            "attacked_usd",
            "benign_usd",
            "detect",
        ],
    );
    let house_a = HouseSpec::aras_a();
    let fx = cx.fixture(&house_a, days);
    let adm_kind = AdmKind::default_dbscan();
    let adm = cx.adm(&house_a, days, adm_kind, days);
    let cap = AttackerCapability::full(&fx.home);
    let table = reward_table(cx, &fx);
    let benign_costs = benign_day_costs(cx, &fx);

    // Each arm is a month of independent per-day cells, split over the
    // pool; schedules route through the fixture cache keyed by a
    // per-configuration strategy key, so arms that coincide with the
    // default DP configuration (horizon 10, trigger-aware, eps 45) share
    // one synthesis with each other and with fig10/tab5.
    let run = |strategy_key: &str,
               sched: &(dyn Scheduler + Sync),
               adm: &HullAdm,
               tag: &str,
               with_trig: bool|
     -> (f64, f64, f64) {
        let per_day = cx.par_map(&fx.month.days, |d, day| {
            let schedule = day_schedule(cx, &fx, adm, tag, strategy_key, sched, &cap, &table, d);
            let out = impact::evaluate_day_with_schedule(
                &fx.model,
                adm,
                &cap,
                day,
                &schedule,
                with_trig,
                Some(benign_costs[d]),
            );
            (
                out.attacked_cost_usd,
                out.benign_cost_usd,
                out.detection_rate,
            )
        });
        let mut attacked = 0.0;
        let mut benign = 0.0;
        let mut detect = 0.0;
        for (a, b, det) in per_day {
            attacked += a;
            benign += b;
            detect += det;
        }
        (attacked, benign, detect / fx.month.days.len() as f64)
    };
    let tag = adm_tag(&adm_kind, days);

    // (1) optimization horizon: the knob behind the paper's "would create
    // more impact if the optimization window was larger".
    for horizon in [5usize, 10, 30, 120] {
        let sched = shatter_core::WindowDpScheduler {
            horizon,
            ..Default::default()
        };
        let key = if sched == shatter_core::WindowDpScheduler::default() {
            "dp".to_string()
        } else {
            format!("dp@h{horizon}")
        };
        let (a, b, d) = run(&key, &sched, &adm, &tag, true);
        t.push(vec![
            "horizon".into(),
            horizon.to_string(),
            fmt2(a),
            fmt2(b),
            fmt2(d),
        ]);
    }

    // (2) trigger-aware scheduling on/off.
    for aware in [false, true] {
        let sched = shatter_core::WindowDpScheduler {
            trigger_aware: aware,
            ..Default::default()
        };
        let key = if aware { "dp" } else { "dp@trig0" };
        let (a, b, d) = run(key, &sched, &adm, &tag, true);
        t.push(vec![
            "trigger_aware".into(),
            aware.to_string(),
            fmt2(a),
            fmt2(b),
            fmt2(d),
        ]);
    }

    // (3) defender cluster radius: tighter eps = tighter hulls = less
    // attack head-room.
    for eps in [20.0f64, 45.0, 90.0] {
        let kind_eps = AdmKind::Dbscan(DbscanParams {
            eps,
            ..DbscanParams::default()
        });
        let tight = cx.adm(&house_a, days, kind_eps, days);
        let sched = shatter_core::WindowDpScheduler::default();
        let (a, b, d) = run("dp", &sched, &tight, &adm_tag(&kind_eps, days), true);
        t.push(vec![
            "adm_eps".into(),
            format!("{eps}"),
            fmt2(a),
            fmt2(b),
            fmt2(d),
        ]);
    }

    // (4) battery size: how much peak-shaving hides the attack's cost.
    // The battery changes the reward table itself, so these schedules
    // are unique to the arm and synthesized directly (per-day cells
    // still fan out).
    for batt in [0.0f64, 1.5, 6.0] {
        let mut model = fx.model.clone();
        model.pricing.battery_kwh = batt;
        let table_b = RewardTable::build(&model);
        let sched = shatter_core::WindowDpScheduler::default();
        let per_day = cx.par_map(&fx.month.days, |_, day| {
            let out =
                impact::evaluate_day_with_table(&model, &table_b, &adm, &cap, day, &sched, true);
            (out.attacked_cost_usd, out.benign_cost_usd)
        });
        let attacked: f64 = per_day.iter().map(|(a, _)| a).sum();
        let benign: f64 = per_day.iter().map(|(_, b)| b).sum();
        t.push(vec![
            "battery_kwh".into(),
            format!("{batt}"),
            fmt2(attacked),
            fmt2(benign),
            String::new(),
        ]);
    }
    t
}

/// §VI — testbed validation: energy increment and model fit error.
pub fn testbed(_cx: &ScenarioCtx<'_>) -> Table {
    let mut t = Table::new(
        "testbed",
        "Prototype-testbed validation (§VI)",
        &["metric", "value"],
    );
    let out = run_validation(&ValidationConfig::default());
    t.push(vec![
        "benign_fan_kwh".into(),
        format!("{:.6}", out.benign_kwh),
    ]);
    t.push(vec![
        "attacked_fan_kwh".into(),
        format!("{:.6}", out.attacked_kwh),
    ]);
    t.push(vec![
        "energy_increment_pct".into(),
        fmt2(out.increment_pct()),
    ]);
    t.push(vec!["fit_error_pct".into(), fmt3(out.fit_error_pct)]);
    t.push(vec![
        "rewritten_packets".into(),
        out.rewritten_packets.to_string(),
    ]);
    t
}

/// `scaled_homes` — house-size sweep: the DP attack evaluated on
/// generated [`HouseSpec::scaled`] homes (6/10/16 zones, growing
/// occupant counts with generated personas). This is the first workload
/// off the opened house axis: nothing here is ARAS-specific — fixtures,
/// ADM training and schedule memoization all key on the spec signature.
pub fn scaled_homes(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let shapes = [(6usize, 2usize), (10, 3), (16, 4)];
    let mut t = Table::new(
        "scaled_homes",
        "House-size sweep: DP attack impact on scaled homes",
        &[
            "house",
            "zones",
            "occupants",
            "benign_usd",
            "attacked_usd",
            "lift_pct",
            "detect",
        ],
    );
    let adm_kind = AdmKind::default_dbscan();
    let tag = adm_tag(&adm_kind, days);
    let sched = StrategyRegistry::builtin()
        .get("dp")
        .expect("builtin dp")
        .scheduler
        .clone();
    for (n_zones, n_occupants) in shapes {
        let spec = HouseSpec::scaled(n_zones, n_occupants);
        let fx = cx.fixture(&spec, days);
        let adm = cx.adm(&spec, days, adm_kind, days);
        let table = reward_table(cx, &fx);
        let benign_costs = benign_day_costs(cx, &fx);
        let cap = AttackerCapability::full(&fx.home);
        // Per-day cells are independent months of schedule synthesis;
        // split them over the run's slot budget like tab5 does.
        let per_day = cx.par_map(&fx.month.days, |d, day| {
            let schedule = day_schedule(cx, &fx, &adm, &tag, "dp", &*sched, &cap, &table, d);
            let out = impact::evaluate_day_with_schedule(
                &fx.model,
                &adm,
                &cap,
                day,
                &schedule,
                true,
                Some(benign_costs[d]),
            );
            (
                out.attacked_cost_usd,
                out.benign_cost_usd,
                out.detection_rate,
            )
        });
        let mut attacked = 0.0;
        let mut benign = 0.0;
        let mut detect = 0.0;
        for (a, b, det) in &per_day {
            attacked += a;
            benign += b;
            detect += det;
        }
        detect /= per_day.len() as f64;
        t.push(vec![
            spec.short.clone(),
            n_zones.to_string(),
            n_occupants.to_string(),
            fmt2(benign),
            fmt2(attacked),
            fmt2(100.0 * (attacked - benign) / benign),
            fmt2(detect),
        ]);
    }
    t
}

/// `capability_grid` — attacker-capability grid on House A: zone-subset
/// profiles × injection timeslot windows. Each cell's schedules memoize
/// under the capability's [`AttackerCapability::signature`], so cells
/// sharing a capability with other exhibits (the full/all-day corner is
/// exactly tab5's DP arm) are cache lookups.
pub fn capability_grid(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let house_a = HouseSpec::aras_a();
    let fx = cx.fixture(&house_a, days);
    let adm_kind = AdmKind::default_dbscan();
    let adm = cx.adm(&house_a, days, adm_kind, days);
    let tag = adm_tag(&adm_kind, days);
    let table = reward_table(cx, &fx);
    let benign_costs = benign_day_costs(cx, &fx);
    let sched = StrategyRegistry::builtin()
        .get("dp")
        .expect("builtin dp")
        .scheduler
        .clone();
    let zone_profiles: [(&str, &[usize]); 3] = [
        ("all", &[1, 2, 3, 4]),
        ("day-rooms", &[2, 3]),
        ("night-rooms", &[1, 4]),
    ];
    let windows: [(&str, Option<(Minute, Minute)>); 3] = [
        ("all-day", None),
        ("work-hours", Some((540, 1020))),
        ("evening", Some((1020, 1440))),
    ];
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for zi in 0..zone_profiles.len() {
        for wi in 0..windows.len() {
            cells.push((zi, wi));
        }
    }
    let mut t = Table::new(
        "capability_grid",
        "Attacker-capability grid (House A): zone access x timeslot window",
        &[
            "zones",
            "window",
            "cap_sig",
            "attacked_usd",
            "lift_usd",
            "detect",
        ],
    );
    // Each grid cell is a month of schedule synthesis under its own
    // capability; the 9 cells fan out over the pool and reduce in
    // submission order.
    let rows = cx.par_map(&cells, |_, &(zi, wi)| {
        let (_, zones) = zone_profiles[zi];
        let (_, window) = windows[wi];
        let mut cap =
            AttackerCapability::full(&fx.home).with_zone_access(zones.iter().map(|&z| ZoneId(z)));
        if let Some((s, e)) = window {
            cap = cap.with_timeslots(s, e);
        }
        let mut attacked = 0.0;
        let mut benign = 0.0;
        let mut detect = 0.0;
        for (d, day) in fx.month.days.iter().enumerate() {
            let schedule = day_schedule(cx, &fx, &adm, &tag, "dp", &*sched, &cap, &table, d);
            let out = impact::evaluate_day_with_schedule(
                &fx.model,
                &adm,
                &cap,
                day,
                &schedule,
                true,
                Some(benign_costs[d]),
            );
            attacked += out.attacked_cost_usd;
            benign += out.benign_cost_usd;
            detect += out.detection_rate;
        }
        detect /= fx.month.days.len() as f64;
        (cap.signature(), attacked, attacked - benign, detect)
    });
    for (&(zi, wi), (sig, attacked, lift, detect)) in cells.iter().zip(rows) {
        t.push(vec![
            zone_profiles[zi].0.into(),
            windows[wi].0.into(),
            format!("{sig:016x}"),
            fmt2(attacked),
            fmt2(lift),
            fmt2(detect),
        ]);
    }
    t
}

/// `defense_sweep` — the paper's §VII-D closing argument as a scenario:
/// rank every single-asset hardening step (zone sensors, appliance
/// de-voicing) by removed attack impact, then a greedy 3-step hardening
/// plan with its residual impact.
pub fn defense_sweep(cx: &ScenarioCtx<'_>) -> Table {
    let days = cx.days();
    let house_a = HouseSpec::aras_a();
    let fx = cx.fixture(&house_a, days);
    let adm_kind = AdmKind::default_dbscan();
    let train_days = (days * 5 / 6).max(1);
    let adm = cx.adm(&house_a, days, adm_kind, train_days);
    let cap = AttackerCapability::full(&fx.home);
    let sched = shatter_core::WindowDpScheduler::default();
    // Evaluate marginal values over the post-training tail (up to two
    // days): ~70 restricted-capability impact evaluations, so the window
    // is kept short like tab3's.
    let eval_days = &fx.month.days[train_days.min(days - 1)..days.min(train_days + 2)];
    let target_label = |target: &shatter_core::defense::HardeningTarget| -> String {
        match *target {
            shatter_core::defense::HardeningTarget::ZoneSensors(z) => {
                format!("zone:{}", fx.home.zone(z).name)
            }
            shatter_core::defense::HardeningTarget::Appliance(a) => {
                format!("appliance:{}", fx.home.appliance(a).name)
            }
        }
    };
    let mut t = Table::new(
        "defense_sweep",
        "Defense guide (House A): hardening ranked by removed attack impact",
        &["section", "rank", "target", "impact_usd"],
    );
    let ranked = shatter_core::defense::rank_hardening(&fx.model, &adm, &cap, eval_days, &sched);
    for (i, opt) in ranked.iter().enumerate() {
        t.push(vec![
            "rank".into(),
            i.to_string(),
            target_label(&opt.target),
            fmt2(opt.impact_removed_usd),
        ]);
    }
    let (plan, residual) =
        shatter_core::defense::greedy_hardening_plan(&fx.model, &adm, &cap, eval_days, &sched, 3);
    for (i, step) in plan.iter().enumerate() {
        t.push(vec![
            "plan".into(),
            i.to_string(),
            target_label(&step.target),
            fmt2(step.impact_removed_usd),
        ]);
    }
    t.push(vec![
        "residual".into(),
        String::new(),
        "after-plan attack impact".into(),
        fmt2(residual),
    ]);
    t
}
