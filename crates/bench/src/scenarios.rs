//! Registry wiring: every paper exhibit as an engine [`Scenario`].
//!
//! Adding a workload is ~5 lines: write a `fn my_exhibit(cx:
//! &ScenarioCtx) -> Table` in [`crate::exhibits`] and register it here
//! with [`FnScenario::new`].

use shatter_engine::{
    FixtureCache, FnScenario, Registry, RunConfig, RunParams, ScenarioCtx, Table,
};

use crate::exhibits;

/// Builds the registry of all paper exhibits (plus the ablation, the
/// strategy shootout, and the testbed validation), in presentation
/// order.
pub fn builtin_registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(
        FnScenario::new("fig3", "ASHRAE vs SHATTER control cost", exhibits::fig3)
            .describe("Daily control cost of both controllers on both houses (paper Fig. 3)"),
    );
    reg.register(
        FnScenario::new("fig4", "ADM hyperparameter tuning", exhibits::fig4)
            .describe("Cluster-validity indices vs DBSCAN minPts and K-Means k (paper Fig. 4)"),
    );
    reg.register(
        FnScenario::new("fig5", "Progressive F1 vs training days", exhibits::fig5)
            .describe("Detection F1 as the defender trains on more days (paper Fig. 5)"),
    );
    reg.register(
        FnScenario::new("fig6", "ADM cluster hull geometry", exhibits::fig6)
            .describe("Hull vertices and coverage areas for both ADMs (paper Fig. 6)"),
    );
    reg.register(
        FnScenario::new("tab3", "Case-study schedules", exhibits::tab3)
            .describe("Actual vs greedy vs SHATTER over ten evening slots (paper Table III)"),
    );
    reg.register(
        FnScenario::new("tab4", "ADM detection quality", exhibits::tab4)
            .describe("Accuracy/precision/recall/F1 vs attacker knowledge (paper Table IV)"),
    );
    reg.register(
        FnScenario::new("tab5", "Attack impact comparison", exhibits::tab5)
            .describe("Monthly cost of registry-enumerated attack strategies (paper Table V)"),
    );
    reg.register(
        FnScenario::new(
            "strategies",
            "Attack-strategy shootout",
            exhibits::strategies,
        )
        .describe("All registered strategies (incl. SMT) on one day: reward/stealth/detection"),
    );
    reg.register(
        FnScenario::new("fig10", "Appliance-triggering impact", exhibits::fig10)
            .describe("Daily cost without/with appliance triggering (paper Fig. 10)"),
    );
    reg.register(
        FnScenario::new("tab6", "Impact vs accessible zones", exhibits::tab6)
            .describe("Triggering impact as zone access shrinks (paper Table VI)"),
    );
    reg.register(
        FnScenario::new("tab7", "Impact vs accessible appliances", exhibits::tab7)
            .describe("Triggering impact as appliance access shrinks (paper Table VII)"),
    );
    reg.register(
        FnScenario::new("fig11", "SMT scheduler scalability", exhibits::fig11)
            .describe("Solve time vs horizon and vs zone count (paper Fig. 11; timing output)")
            .nondeterministic(),
    );
    reg.register(
        FnScenario::new("testbed", "Prototype-testbed validation", exhibits::testbed)
            .describe("Replay through the simulated testbed with MITM rewriting (paper §VI)"),
    );
    reg.register(
        FnScenario::new("ablation", "Design-choice ablations", exhibits::ablation)
            .describe("Horizon, trigger-awareness, ADM radius and battery sweeps (DESIGN.md §6)"),
    );
    reg.register(
        FnScenario::new("scaled_homes", "House-size sweep", exhibits::scaled_homes)
            .describe("DP attack impact on generated scaled homes (6/10/16 zones, 2-4 occupants)"),
    );
    reg.register(
        FnScenario::new(
            "capability_grid",
            "Attacker-capability grid",
            exhibits::capability_grid,
        )
        .describe("Zone-subset x timeslot-window capability profiles on House A"),
    );
    reg.register(
        FnScenario::new(
            "defense_sweep",
            "Defense hardening sweep",
            exhibits::defense_sweep,
        )
        .describe("Ranked sensor/appliance hardening and a greedy plan (paper §VII-D)"),
    );
    // Small un-journaled fleet so the crash-safe evaluation path is
    // exercised by every full-suite run; `repro --fleet N` registers
    // the journaled, arbitrarily-sized variant on top of this.
    reg.register(crate::fleet::FleetScenario::new("fleet_smoke", 6));
    reg.register(
        FnScenario::new(
            "fleet_scaling",
            "Fleet throughput vs size (cold vs warm store)",
            crate::fleet::fleet_scaling,
        )
        .describe(
            "Measured homes/sec per fleet size, cold vs disk-warm fixture store (timing output)",
        )
        .nondeterministic(),
    );
    reg
}

/// Runs a single exhibit by id against a fresh cache — the convenience
/// path for tests and programmatic use.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_exhibit(id: &str, days: usize, span: usize) -> Table {
    let reg = builtin_registry();
    let scenario = reg
        .get(id)
        .unwrap_or_else(|| panic!("unknown exhibit {id:?}"));
    let cache = FixtureCache::new();
    let params = RunParams {
        days,
        span,
        ..RunParams::default()
    };
    let cfg = RunConfig {
        threads: 1,
        params,
        fail_fast: false,
    };
    let cx = ScenarioCtx {
        cache: &cache,
        params: cfg.params,
        seed: shatter_engine::scenario::scenario_seed(id, params.base_seed),
        pool: shatter_engine::WorkPool::serial(),
        health: shatter_engine::HealthSink::new(),
    };
    scenario.run(&cx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_paper_exhibits() {
        let reg = builtin_registry();
        for id in [
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "tab3",
            "tab4",
            "tab5",
            "strategies",
            "fig10",
            "tab6",
            "tab7",
            "fig11",
            "testbed",
            "ablation",
            "scaled_homes",
            "capability_grid",
            "defense_sweep",
            "fleet_smoke",
            "fleet_scaling",
        ] {
            let s = reg.get(id).unwrap_or_else(|| panic!("missing {id}"));
            assert!(!s.title().is_empty());
            assert!(!s.description().is_empty());
        }
        assert_eq!(reg.len(), 19);
        // Only the timing exhibits are non-deterministic.
        let nondet: Vec<String> = reg
            .all()
            .iter()
            .filter(|s| !s.deterministic())
            .map(|s| s.id().to_string())
            .collect();
        assert_eq!(nondet, ["fig11", "fleet_scaling"]);
    }
}
