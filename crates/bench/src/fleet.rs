//! Crash-safe fleet evaluation: N deterministic generated homes under
//! one `WorkPool` budget, with an optional durable result journal
//! (`shatter-store`) for checkpoint/resume and a per-house robustness
//! policy (effort watchdog, bounded retry with deterministic budget
//! escalation, quarantine).
//!
//! # Determinism contract
//!
//! A fleet's houses are a pure function of `(n_houses, days, span,
//! base_seed)`: house `i` derives its shape and dataset seed from a
//! splitmix64 mix of the index, never from wall time or thread
//! interleaving. The per-house watchdog is the deterministic
//! [`Budget`] (conflicts / pivots / probes — never wall time), and
//! retry attempt `k` re-runs under `budget.escalated(2^k)`, so a house
//! either completes identically everywhere or degrades/quarantines
//! identically everywhere. Journal replay returns the recorded row
//! bytes verbatim; an interrupted-then-resumed run is therefore
//! byte-identical to an uninterrupted one, across thread counts.
//!
//! Throughput (homes/sec), fixture-cache and journal counters stream to
//! stderr only — they never enter the table.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use shatter_adm::AdmKind;
use shatter_core::{impact, AttackerCapability, SmtScheduler, StrategyRegistry};
use shatter_dataset::HouseSpec;
use shatter_engine::{FixtureCache, RunParams, Scenario, ScenarioCtx, Table};
use shatter_faults::FaultKind;
use shatter_smarthome::OccupantId;
use shatter_smt::Budget;
use shatter_store::{BlobStore, Journal};

use crate::common::EngineWindowMemo;
use crate::exhibits::{adm_tag, benign_day_costs, day_schedule, fmt2, reward_table, smt_prefix};

/// Columns of the fleet table; journal payloads are these cells joined
/// with `'\t'`, so a replayed row is the recorded row, byte for byte.
pub const FLEET_COLUMNS: [&str; 11] = [
    "house",
    "zones",
    "occupants",
    "benign_usd",
    "attacked_usd",
    "lift_pct",
    "detect",
    "smt_decisions",
    "smt_degraded",
    "status",
    "attempts",
];

/// Per-house robustness policy: the deterministic effort watchdog and
/// the bounded-retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPolicy {
    /// Watchdog budget installed on every SMT window a house solves: a
    /// runaway house exhausts it and degrades (best-so-far / fallback
    /// rows) instead of hanging the fleet. Effort units only, never
    /// wall time.
    pub house_budget: Budget,
    /// Retries granted to a panicking house before quarantine; attempt
    /// `k` runs under `house_budget.escalated(2^k)`.
    pub max_retries: u32,
}

impl Default for FleetPolicy {
    fn default() -> FleetPolicy {
        FleetPolicy {
            // Generous enough that healthy houses never degrade at
            // exhibit scale, tight enough that a pathological spec is
            // bounded fleet-wide.
            house_budget: Budget {
                max_conflicts: Some(200_000),
                max_pivots: Some(20_000_000),
                max_probes: None,
            },
            max_retries: 1,
        }
    }
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of generated houses to evaluate.
    pub n_houses: usize,
    /// Evaluate only a deterministic strided sample of `K` houses out
    /// of `n_houses` (`None` = exhaustive). Sampled houses keep their
    /// fleet index, so their journal keys — and the config signature —
    /// are identical to the exhaustive run's: a sampled pass pre-warms
    /// the journal the full run later replays.
    pub sample: Option<usize>,
    /// Per-house robustness policy.
    pub policy: FleetPolicy,
}

/// The house indices a fleet run evaluates: all of `0..n_houses`, or a
/// deterministic strided sample of `k` of them (`j * n / k` for `j` in
/// `0..k` — distinct and strictly increasing whenever `k <= n`).
pub fn sampled_indices(n_houses: usize, sample: Option<usize>) -> Vec<usize> {
    match sample {
        Some(k) if k < n_houses => {
            let k = k.max(1);
            (0..k).map(|j| j * n_houses / k).collect()
        }
        _ => (0..n_houses).collect(),
    }
}

/// Counters of one fleet run (stderr/summary only — never table
/// content, so journaled and fresh runs render identically).
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetOutcome {
    /// Houses replayed from the journal (completed work not recomputed).
    pub journal_hits: u64,
    /// Houses actually evaluated this run.
    pub computed: u64,
    /// Houses that completed only after at least one retry.
    pub retried: u64,
    /// Houses quarantined after exhausting their retry budget.
    pub quarantined: u64,
    /// Wall-clock homes/sec of this run.
    pub homes_per_sec: f64,
}

/// splitmix64 — the same mixer `ScenarioCtx::item_seed` uses.
fn splitmix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic house `i` of a fleet: shape in 5–16 zones / 2–4
/// occupants and a per-index dataset seed, both pure functions of
/// `(i, base_seed)` — independent of scenario id, thread count and
/// journal state.
pub fn derive_house(i: usize, base_seed: u64) -> (HouseSpec, u64) {
    let mix = splitmix64(0xF1EE7 ^ (i as u64).wrapping_mul(0x6A09_E667_F3BC_C909));
    let n_zones = 5 + (mix % 12) as usize;
    let n_occupants = 2 + ((mix >> 32) % 3) as usize;
    let spec = HouseSpec::scaled(n_zones, n_occupants);
    let seed = splitmix64(mix ^ 0xD00D_F00D_CAFE_F00D) ^ base_seed;
    (spec, seed)
}

/// Journal key of house `i`: the fleet index plus the fixture's full
/// content address (`HouseFixture::cache_key()` = spec cache tag +
/// days + seed), so a record can never replay into a house with a
/// different spec, horizon or seed.
pub fn house_key(i: usize, params: &RunParams) -> String {
    let (spec, seed) = derive_house(i, params.base_seed);
    format!("h{i:06}/{}/{}/{}", spec.cache_tag(), params.days, seed)
}

/// Configuration signature binding journal records and the manifest to
/// the exact run parameters that produced them.
pub fn config_signature(cfg: &FleetConfig, params: &RunParams) -> u64 {
    shatter_store::fnv1a_bytes(
        format!(
            "fleet-v1|n={}|days={}|span={}|base_seed={}|budget={}|retries={}",
            cfg.n_houses,
            params.days,
            params.span,
            params.base_seed,
            cfg.policy.house_budget.to_spec(),
            cfg.policy.max_retries,
        )
        .as_bytes(),
    )
}

/// Human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One attempt at house `i`: full-month DP impact plus a budgeted SMT
/// slice of day 0 (the watchdog surface). Returns the row cells up to
/// (excluding) `status`/`attempts`, and the degradation notes this
/// attempt earned — the caller commits notes only for the attempt that
/// actually lands in the table.
fn eval_house(cx: &ScenarioCtx<'_>, i: usize, budget: &Budget) -> (Vec<String>, Vec<String>) {
    let (spec, seed) = derive_house(i, cx.params.base_seed);
    let label = format!("{}#{i}", spec.short);
    let mut notes = Vec::new();
    // Fault site "fleet.house": fires inside the retry loop's
    // catch_unwind, so an injected panic exercises retry/quarantine and
    // the other kinds force a degraded row.
    if let Some(kind) = shatter_faults::hit("fleet.house") {
        match kind {
            FaultKind::Panic => shatter_faults::panic_now("fleet.house"),
            FaultKind::Overflow | FaultKind::Budget | FaultKind::Io => {
                notes.push(format!(
                    "house {label}: injected {} at fleet.house",
                    kind.name()
                ));
            }
        }
    }
    let days = cx.days();
    let fx = cx.cache.fixture_with_seed(&spec, days, seed);
    let adm_kind = AdmKind::default_dbscan();
    let adm = cx.cache.adm_with_seed(&spec, days, seed, adm_kind, days);
    let tag = adm_tag(&adm_kind, days);
    let table = reward_table(cx, &fx);
    let benign_costs = benign_day_costs(cx, &fx);
    let cap = AttackerCapability::full(&fx.home);
    let sched = StrategyRegistry::builtin()
        .get("dp")
        .expect("builtin dp")
        .scheduler
        .clone();
    let mut attacked = 0.0;
    let mut benign = 0.0;
    let mut detect = 0.0;
    // Houses are the parallel axis (the fleet's par_map); the month of
    // one house runs serially inside its slot.
    for (d, day) in fx.month.days.iter().enumerate() {
        let schedule = day_schedule(cx, &fx, &adm, &tag, "dp", &*sched, &cap, &table, d);
        let out = impact::evaluate_day_with_schedule(
            &fx.model,
            &adm,
            &cap,
            day,
            &schedule,
            true,
            Some(benign_costs[d]),
        );
        attacked += out.attacked_cost_usd;
        benign += out.benign_cost_usd;
        detect += out.detection_rate;
    }
    detect /= fx.month.days.len() as f64;
    // The SMT slice runs under the watchdog budget: a runaway window
    // degrades deterministically instead of hanging the house. The
    // window memo keys the exact budget values, so escalated retries
    // never replay a lower budget's best-so-far fragments.
    let smt = SmtScheduler {
        budget: Some(*budget),
        ..SmtScheduler::default()
    };
    let memo = EngineWindowMemo(cx.cache);
    let prefix = smt_prefix(&fx, &tag, "fleet", 0);
    let exec = cx.batch_executor();
    let (_, stats) = smt.schedule_occupant_memo_exec(
        OccupantId(0),
        &table,
        &adm,
        &cap,
        &fx.month.days[0],
        cx.span(),
        Some((&memo, &prefix)),
        &exec,
    );
    if stats.degraded_windows > 0 {
        notes.push(format!(
            "house {label}: {} budget-degraded SMT window(s) under {}",
            stats.degraded_windows,
            budget.to_spec()
        ));
    }
    let cells = vec![
        label,
        fx.home.zones().len().to_string(),
        fx.home.occupants().len().to_string(),
        fmt2(benign),
        fmt2(attacked),
        fmt2(100.0 * (attacked - benign) / benign),
        fmt2(detect),
        stats.sat_decisions.to_string(),
        stats.degraded_windows.to_string(),
    ];
    (cells, notes)
}

/// Outcome of the retry loop around one house.
struct HouseResult {
    cells: Vec<String>,
    attempts: u32,
    quarantined: bool,
}

/// Runs house `i` under the policy: attempt `k` gets the watchdog
/// budget escalated by `2^k`; a panicking attempt is caught and
/// retried; after `max_retries` failures the house is quarantined as a
/// placeholder row so one pathological spec cannot stall the fleet.
fn run_house(cx: &ScenarioCtx<'_>, i: usize, policy: &FleetPolicy) -> HouseResult {
    let mut last_cause = String::new();
    for attempt in 0..=policy.max_retries {
        let budget = policy.house_budget.escalated(1u64 << attempt.min(32));
        match catch_unwind(AssertUnwindSafe(|| eval_house(cx, i, &budget))) {
            Ok((mut cells, notes)) => {
                // Notes of the attempt that lands in the table are the
                // ones the scenario's health reflects; a failed earlier
                // attempt's partial notes never leak.
                let status = if notes.is_empty() { "ok" } else { "degraded" };
                for note in notes {
                    cx.health.note_degraded(note);
                }
                cells.push(status.to_string());
                cells.push(attempt.to_string());
                return HouseResult {
                    cells,
                    attempts: attempt,
                    quarantined: false,
                };
            }
            Err(payload) => last_cause = panic_message(payload.as_ref()),
        }
    }
    let (spec, _) = derive_house(i, cx.params.base_seed);
    let label = format!("{}#{i}", spec.short);
    cx.health.note_degraded(format!(
        "house {label}: quarantined after {} attempt(s): {last_cause}",
        policy.max_retries + 1
    ));
    let mut cells = vec![label, String::new(), String::new()];
    cells.resize(FLEET_COLUMNS.len() - 2, String::new());
    cells.push("quarantined".to_string());
    cells.push(policy.max_retries.to_string());
    HouseResult {
        cells,
        attempts: policy.max_retries,
        quarantined: true,
    }
}

/// Decodes a journal payload back into row cells; `None` (recompute) on
/// any shape mismatch.
fn decode_row(payload: &[u8]) -> Option<Vec<String>> {
    let text = std::str::from_utf8(payload).ok()?;
    let cells: Vec<String> = text.split('\t').map(str::to_string).collect();
    if cells.len() == FLEET_COLUMNS.len() {
        Some(cells)
    } else {
        None
    }
}

/// Evaluates the fleet: houses fan out over the run's shared slot
/// budget, completed houses stream to the journal (when present) and to
/// the stderr progress line, and journaled houses are replayed verbatim
/// instead of recomputed.
pub fn run_fleet(
    cx: &ScenarioCtx<'_>,
    cfg: &FleetConfig,
    journal: Option<&Journal>,
) -> (Table, FleetOutcome) {
    let start = Instant::now();
    let cache_before = cx.cache.stats();
    let done = AtomicU64::new(0);
    let replayed = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let quarantined = AtomicU64::new(0);
    let indices = sampled_indices(cfg.n_houses, cfg.sample);
    let total = indices.len();
    let rows = cx.par_map(&indices, |_, &i| {
        let key = house_key(i, &cx.params);
        let cells = match journal.and_then(|j| j.get(&key)).and_then(|p| decode_row(&p)) {
            Some(cells) => {
                replayed.fetch_add(1, Ordering::Relaxed);
                cells
            }
            None => {
                let result = run_house(cx, i, &cfg.policy);
                if result.quarantined {
                    quarantined.fetch_add(1, Ordering::Relaxed);
                } else if result.attempts > 0 {
                    retried.fetch_add(1, Ordering::Relaxed);
                }
                // Completed (ok/degraded) houses are durable; a
                // quarantined house stays out of the journal so a
                // resume re-runs it instead of trusting a placeholder.
                if !result.quarantined {
                    if let Some(j) = journal {
                        // The write sits outside the per-house
                        // catch_unwind: an injected store.write panic
                        // is a genuine mid-fleet crash (Failed
                        // scenario, nonzero exit), which is exactly
                        // what the chaos-resume smoke rehearses.
                        if let Err(e) = j.put(&key, result.cells.join("\t").as_bytes()) {
                            cx.health
                                .note_degraded(format!("journal write failed for {key}: {e}"));
                        }
                    }
                }
                result.cells
            }
        };
        let n_done = done.fetch_add(1, Ordering::Relaxed) + 1;
        let stride = (total / 16).max(1) as u64;
        if n_done.is_multiple_of(stride) || n_done == total as u64 {
            let dt = start.elapsed().as_secs_f64().max(1e-9);
            let cs = cx.cache.stats();
            eprintln!(
                "fleet: {n_done}/{} homes ({:.1} homes/s) cache {}h/{}m journal {} replayed, {} retried, {} quarantined",
                total,
                n_done as f64 / dt,
                cs.hits - cache_before.hits,
                cs.misses - cache_before.misses,
                replayed.load(Ordering::Relaxed),
                retried.load(Ordering::Relaxed),
                quarantined.load(Ordering::Relaxed),
            );
        }
        cells
    });
    let mut t = Table::new(
        "fleet",
        "Fleet evaluation: DP impact + budgeted SMT slice per generated home",
        &FLEET_COLUMNS,
    );
    for row in rows {
        t.push(row);
    }
    let n_retried = retried.load(Ordering::Relaxed);
    let n_quarantined = quarantined.load(Ordering::Relaxed);
    cx.health.add_retried(n_retried);
    cx.health.add_quarantined(n_quarantined);
    let n_replayed = replayed.load(Ordering::Relaxed);
    (
        t,
        FleetOutcome {
            journal_hits: n_replayed,
            computed: total as u64 - n_replayed,
            retried: n_retried,
            quarantined: n_quarantined,
            homes_per_sec: total as f64 / start.elapsed().as_secs_f64().max(1e-9),
        },
    )
}

/// The fleet as an engine [`Scenario`], optionally journaled. The table
/// id stays `"fleet"` whatever the registry id is, so resumed and clean
/// runs render identically.
pub struct FleetScenario {
    id: String,
    description: String,
    cfg: FleetConfig,
    journal_dir: Option<PathBuf>,
}

impl FleetScenario {
    /// A fleet of `n_houses` homes under the default policy, no journal.
    pub fn new(id: &str, n_houses: usize) -> FleetScenario {
        FleetScenario {
            id: id.to_string(),
            description: format!(
                "Crash-safe evaluation of {n_houses} generated homes (watchdog + retry/quarantine)"
            ),
            cfg: FleetConfig {
                n_houses,
                sample: None,
                policy: FleetPolicy::default(),
            },
            journal_dir: None,
        }
    }

    /// Evaluates only a deterministic strided sample of `k` houses (see
    /// [`sampled_indices`]); journal keys stay those of the exhaustive
    /// run.
    pub fn with_sample(mut self, k: usize) -> FleetScenario {
        self.cfg.sample = Some(k);
        self
    }

    /// Overrides the per-house policy.
    pub fn with_policy(mut self, policy: FleetPolicy) -> FleetScenario {
        self.cfg.policy = policy;
        self
    }

    /// Journals every completed house under `dir` and replays whatever
    /// valid records are already there — the `--fleet`/`--resume` path.
    pub fn with_journal(mut self, dir: PathBuf) -> FleetScenario {
        self.journal_dir = Some(dir);
        self
    }

    /// This scenario's fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }
}

impl Scenario for FleetScenario {
    fn id(&self) -> &str {
        &self.id
    }

    fn title(&self) -> &str {
        "Fleet evaluation (crash-safe)"
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn run(&self, cx: &ScenarioCtx<'_>) -> Table {
        let journal = self.journal_dir.as_ref().map(|dir| {
            let sig = config_signature(&self.cfg, &cx.params);
            let j = Journal::open(dir, sig)
                .unwrap_or_else(|e| panic!("opening fleet journal {}: {e}", dir.display()));
            j.write_manifest(&manifest_entries(&self.cfg, &cx.params, sig))
                .unwrap_or_else(|e| panic!("writing fleet manifest {}: {e}", dir.display()));
            let js = j.stats();
            if js.loaded > 0 || js.discarded > 0 {
                eprintln!(
                    "fleet journal {}: {} valid record(s) loaded, {} damaged/stale discarded",
                    dir.display(),
                    js.loaded,
                    js.discarded
                );
            }
            j
        });
        let (table, out) = run_fleet(cx, &self.cfg, journal.as_ref());
        let js = journal.as_ref().map(|j| j.stats()).unwrap_or_default();
        eprintln!(
            "fleet: {} homes at {:.1} homes/s ({} replayed from journal, {} computed, \
             {} retried, {} quarantined, {} journal record(s) written)",
            sampled_indices(self.cfg.n_houses, self.cfg.sample).len(),
            out.homes_per_sec,
            out.journal_hits,
            out.computed,
            out.retried,
            out.quarantined,
            js.writes,
        );
        table
    }
}

/// The pinned fleet-scaling exhibit: measured homes/sec at several
/// fleet sizes, cold (empty blob store) versus warm (a second run over
/// the store the cold leg just filled). Each leg gets a private
/// [`FixtureCache`] over the same on-disk store and a fresh
/// [`HealthSink`], so the warm leg's speedup comes purely from the disk
/// tier — exactly what a second `repro --fleet N --store DIR` pays.
/// Timing columns make this exhibit nondeterministic by construction;
/// the `disk_hits` column is the deterministic witness that the warm
/// leg actually replayed fixtures instead of recomputing them.
pub fn fleet_scaling(cx: &ScenarioCtx<'_>) -> Table {
    let sizes = [2usize, 4, 8];
    // Clamp the horizon so the largest fleet stays exhibit-scale.
    let params = RunParams {
        days: cx.params.days.min(4),
        ..cx.params
    };
    let root = std::env::temp_dir().join(format!(
        "shatter-fleet-scaling-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut t = Table::new(
        "fleet_scaling",
        "Fleet throughput vs size: cold vs disk-warm fixture store",
        &[
            "fleet",
            "cold_s",
            "cold_homes_s",
            "warm_s",
            "warm_homes_s",
            "warmup_x",
            "disk_hits",
        ],
    );
    for &n in &sizes {
        let store_dir = root.join(format!("n{n}"));
        let cfg = FleetConfig {
            n_houses: n,
            sample: None,
            policy: FleetPolicy::default(),
        };
        let mut wall = [0.0f64; 2];
        let mut disk_hits = 0;
        for (leg, slot) in wall.iter_mut().enumerate() {
            let store = BlobStore::open(&store_dir, shatter_engine::disk_schema_sig())
                .unwrap_or_else(|e| panic!("opening scaling store {}: {e}", store_dir.display()));
            let cache = FixtureCache::new().with_disk(store);
            // Both legs run serially on a private context: the curve
            // measures the disk tier, not thread-count luck.
            let inner = ScenarioCtx {
                cache: &cache,
                params,
                seed: cx.seed,
                pool: shatter_engine::WorkPool::serial(),
                health: shatter_engine::HealthSink::new(),
            };
            let start = Instant::now();
            let _ = run_fleet(&inner, &cfg, None);
            *slot = start.elapsed().as_secs_f64().max(1e-9);
            if leg == 1 {
                disk_hits = cache.stats().disk_hits;
            }
        }
        t.push(vec![
            n.to_string(),
            format!("{:.3}", wall[0]),
            format!("{:.1}", n as f64 / wall[0]),
            format!("{:.3}", wall[1]),
            format!("{:.1}", n as f64 / wall[1]),
            format!("{:.2}", wall[0] / wall[1]),
            disk_hits.to_string(),
        ]);
    }
    std::fs::remove_dir_all(&root).ok();
    t
}

/// Manifest entries persisted next to the journal records so `repro
/// --resume <dir>` reconstructs the exact run configuration.
pub fn manifest_entries(
    cfg: &FleetConfig,
    params: &RunParams,
    config_sig: u64,
) -> Vec<(String, String)> {
    let mut entries = vec![
        ("version".into(), "1".into()),
        ("fleet".into(), cfg.n_houses.to_string()),
        ("days".into(), params.days.to_string()),
        ("span".into(), params.span.to_string()),
        ("seed".into(), params.base_seed.to_string()),
        ("house_budget".into(), cfg.policy.house_budget.to_spec()),
        ("retries".into(), cfg.policy.max_retries.to_string()),
        ("config_sig".into(), format!("{config_sig:016x}")),
    ];
    // A sampled run records its stride so a later `--resume` can
    // reproduce it; the entry is absent on exhaustive runs, keeping
    // their manifests byte-identical to pre-sampling versions.
    if let Some(k) = cfg.sample {
        entries.push(("sample".into(), k.to_string()));
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn house_derivation_is_deterministic_and_in_range() {
        for i in 0..64 {
            let (spec_a, seed_a) = derive_house(i, 0);
            let (spec_b, seed_b) = derive_house(i, 0);
            assert_eq!(spec_a.signature(), spec_b.signature());
            assert_eq!(seed_a, seed_b);
            let n_zones = spec_a.home.n_zones();
            assert!((5..=16).contains(&n_zones), "zones {n_zones} out of range");
            // base_seed regenerates the month, not the shape.
            let (spec_c, seed_c) = derive_house(i, 7);
            assert_eq!(spec_a.signature(), spec_c.signature());
            assert_ne!(seed_a, seed_c);
        }
        // Neighbouring indices land on distinct seeds.
        assert_ne!(derive_house(0, 0).1, derive_house(1, 0).1);
    }

    #[test]
    fn house_keys_are_unique_and_stable() {
        let params = RunParams {
            days: 3,
            span: 20,
            base_seed: 0,
        };
        let keys: Vec<String> = (0..32).map(|i| house_key(i, &params)).collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), keys.len(), "journal keys must not collide");
        assert_eq!(keys[0], house_key(0, &params));
        // The key embeds days and seed: changing either re-addresses.
        let other = RunParams { days: 4, ..params };
        assert_ne!(house_key(0, &params), house_key(0, &other));
    }

    #[test]
    fn config_signature_covers_every_knob() {
        let params = RunParams {
            days: 3,
            span: 20,
            base_seed: 0,
        };
        let cfg = FleetConfig {
            n_houses: 8,
            sample: None,
            policy: FleetPolicy::default(),
        };
        let base = config_signature(&cfg, &params);
        let mut other = cfg;
        other.n_houses = 9;
        assert_ne!(base, config_signature(&other, &params));
        let mut other = cfg;
        other.policy.max_retries = 2;
        assert_ne!(base, config_signature(&other, &params));
        let mut other = cfg;
        other.policy.house_budget = other.policy.house_budget.escalated(2);
        assert_ne!(base, config_signature(&other, &params));
        let days = RunParams { days: 4, ..params };
        assert_ne!(base, config_signature(&cfg, &days));
        let span = RunParams { span: 30, ..params };
        assert_ne!(base, config_signature(&cfg, &span));
        let seed = RunParams {
            base_seed: 1,
            ..params
        };
        assert_ne!(base, config_signature(&cfg, &seed));
        assert_eq!(base, config_signature(&cfg, &params));
    }

    #[test]
    fn sampled_indices_are_strided_distinct_and_journal_compatible() {
        // Exhaustive when sample is absent or covers the fleet.
        assert_eq!(sampled_indices(4, None), vec![0, 1, 2, 3]);
        assert_eq!(sampled_indices(4, Some(4)), vec![0, 1, 2, 3]);
        assert_eq!(sampled_indices(4, Some(99)), vec![0, 1, 2, 3]);
        // Strided: k evenly spread indices, always including house 0.
        assert_eq!(sampled_indices(24, Some(3)), vec![0, 8, 16]);
        assert_eq!(sampled_indices(10, Some(4)), vec![0, 2, 5, 7]);
        for n in [1usize, 7, 24, 100] {
            for k in 1..=n {
                let idx = sampled_indices(n, Some(k));
                assert_eq!(idx.len(), k);
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
                assert!(idx.iter().all(|&i| i < n));
            }
        }
        // The sample never changes the config signature: sampled and
        // exhaustive runs share one journal.
        let params = RunParams {
            days: 3,
            span: 20,
            base_seed: 0,
        };
        let full = FleetConfig {
            n_houses: 24,
            sample: None,
            policy: FleetPolicy::default(),
        };
        let sampled = FleetConfig {
            sample: Some(6),
            ..full
        };
        assert_eq!(
            config_signature(&full, &params),
            config_signature(&sampled, &params)
        );
        // But the manifest records the stride for `--resume`.
        let sig = config_signature(&sampled, &params);
        let entries = manifest_entries(&sampled, &params, sig);
        assert!(entries.contains(&("sample".into(), "6".into())));
        let entries = manifest_entries(&full, &params, sig);
        assert!(!entries.iter().any(|(k, _)| k == "sample"));
    }

    #[test]
    fn decode_rejects_wrong_shapes() {
        assert_eq!(decode_row(b"only\tthree\tcells"), None);
        let good: Vec<u8> = vec!["c"; FLEET_COLUMNS.len()].join("\t").into_bytes();
        assert_eq!(
            decode_row(&good).map(|c| c.len()),
            Some(FLEET_COLUMNS.len())
        );
        assert_eq!(decode_row(&[0xFF, 0xFE]), None, "non-UTF8 is damage");
    }
}
