//! Reproduction harness for every table and figure in the SHATTER
//! paper's evaluation (§V–§VII), built on the `shatter-engine` scenario
//! substrate.
//!
//! Each exhibit lives in [`exhibits`] as a `fn(&ScenarioCtx) -> Table`
//! and is registered as a [`shatter_engine::Scenario`] by
//! [`scenarios::builtin_registry`]; the `repro` binary is a thin CLI
//! over that registry (`--list`, `--only`, `--threads`, `--json`,
//! `--baseline`).

#![forbid(unsafe_code)]

pub mod common;
pub mod exhibits;
pub mod fleet;
pub mod scenarios;

pub use common::{write_csv, Table};
pub use scenarios::{builtin_registry, run_exhibit};
