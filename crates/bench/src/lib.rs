//! Reproduction harness for every table and figure in the SHATTER paper's
//! evaluation (§V–§VII), plus shared fixtures for the Criterion benches.
//!
//! Each `fig_*`/`tab_*` function regenerates one exhibit and returns it as
//! a [`Table`]; the `repro` binary renders them to stdout and CSV files
//! under `results/`.

#![forbid(unsafe_code)]

pub mod common;
pub mod exhibits;

pub use common::{write_csv, Table};
