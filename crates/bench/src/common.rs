//! Shared fixtures: canonical datasets, trained ADMs, and a tiny table
//! type the exhibits return.

use std::fmt::Write as _;
use std::path::Path;

use shatter_adm::{AdmKind, HullAdm};
use shatter_dataset::{synthesize, Dataset, HouseKind, SynthConfig};
use shatter_hvac::EnergyModel;
use shatter_smarthome::{houses, Home};

/// Seed of the canonical House-A month.
pub const HOUSE_A_SEED: u64 = 11;
/// Seed of the canonical House-B month.
pub const HOUSE_B_SEED: u64 = 22;

/// A rendered exhibit: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Exhibit identifier, e.g. `"tab5"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Writes a table's CSV under `dir/<id>.csv`.
pub fn write_csv(table: &Table, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", table.id));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// The canonical evaluation fixture for one house.
pub struct HouseFixture {
    /// The home.
    pub home: Home,
    /// Canonical month of behaviour.
    pub month: Dataset,
    /// Energy/cost model.
    pub model: EnergyModel,
}

impl HouseFixture {
    /// Builds the fixture for a house, optionally with fewer days (quick
    /// mode).
    pub fn new(kind: HouseKind, days: usize) -> HouseFixture {
        let (home, seed) = match kind {
            HouseKind::A => (houses::aras_house_a(), HOUSE_A_SEED),
            HouseKind::B => (houses::aras_house_b(), HOUSE_B_SEED),
        };
        let month = synthesize(&SynthConfig::new(kind, days, seed));
        let model = EnergyModel::standard(home.clone());
        HouseFixture { home, month, model }
    }

    /// Trains an ADM on the first `days` days of the month (defender view).
    pub fn adm(&self, kind: AdmKind, days: usize) -> HullAdm {
        HullAdm::train(&self.month.prefix_days(days), kind)
    }
}

/// Dataset label in the paper's HAO1/HBO2 convention.
pub fn dataset_label(kind: HouseKind, occupant: usize) -> String {
    format!("{}O{}", kind.label(), occupant + 1)
}
