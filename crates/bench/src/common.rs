//! Shared fixture/table types, now provided by `shatter-engine` and
//! re-exported here for continuity, plus small labeling helpers.

pub use shatter_engine::{
    write_csv, FixtureCache, HouseFixture, Table, HOUSE_A_SEED, HOUSE_B_SEED,
};

use shatter_dataset::HouseKind;

/// Dataset label in the paper's HAO1/HBO2 convention.
pub fn dataset_label(kind: HouseKind, occupant: usize) -> String {
    format!("{}O{}", kind.label(), occupant + 1)
}
