//! Shared fixture/table types, now provided by `shatter-engine` and
//! re-exported here for continuity, plus small labeling helpers and the
//! engine↔core memo adapter.

pub use shatter_engine::{
    write_csv, FixtureCache, HouseFixture, Table, HOUSE_A_SEED, HOUSE_B_SEED,
};

use shatter_core::{WindowMemo, WindowSolution};
use shatter_dataset::HouseSpec;

/// Dataset label in the paper's HAO1/HBO2 convention (generalized to any
/// spec label: `"S6O3"` for occupant 3 of the 6-zone scaled home).
pub fn dataset_label(spec: &HouseSpec, occupant: usize) -> String {
    format!("{}O{}", spec.label, occupant + 1)
}

/// Adapter exposing the engine's [`FixtureCache::memo_blob`] to the
/// core schedulers' [`WindowMemo`] hook, so SMT window solutions are
/// shared across exhibits (the span sweep of fig11 re-solves the
/// windows the strategy shootout already committed) and, when the cache
/// has a disk tier, across runs.
pub struct EngineWindowMemo<'a>(pub &'a FixtureCache);

impl WindowMemo for EngineWindowMemo<'_> {
    fn window(&self, key: &str, compute: &mut dyn FnMut() -> WindowSolution) -> WindowSolution {
        (*self.0.memo_blob(key, compute)).clone()
    }
}
