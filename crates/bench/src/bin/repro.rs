//! `repro` — regenerates the SHATTER paper's evaluation through the
//! scenario engine's registry, fixture cache and parallel runner.
//!
//! Usage:
//!
//! ```text
//! repro [--list] [--only ID[,ID...]] [--threads N] [--serial]
//!       [--days N] [--span N] [--seed N]
//!       [--json] [--no-text] [--out DIR] [--no-csv]
//!       [--baseline PATH] [--gate-against PATH]
//!       [--inject PLAN] [--budget SPEC] [--portfolio N]
//!       [--fleet N] [--sample K] [--resume DIR] [--journal DIR]
//!       [--house-budget SPEC] [--fleet-retries N]
//!       [--store DIR] [--cache-mb N]
//!       [--keep-going] [--fail-fast]
//!       [exhibit...]
//! repro                 # full suite, parallel, text + CSV
//! repro --only tab5,fig10 --threads 4 --json
//! repro --baseline BENCH_engine.json --days 6 --span 20
//! repro --baseline ci.json --gate-against BENCH_engine.json  # perf gate
//! repro --inject 'fig3/scenario.run/panic' fig3 tab5         # chaos run
//! repro --fleet 100 --threads 8           # crash-safe fleet, journaled
//! repro --resume results/fleet-journal    # continue an interrupted fleet
//! repro --store results/store --fleet 24  # persist fixtures across runs
//! ```
//!
//! `--store DIR` (env `SHATTER_STORE`) puts a content-addressed disk
//! tier under the fixture cache: datasets, episodes, trained ADMs,
//! reward tables and window solutions computed by one run are replayed
//! by the next, so a warm run produces byte-identical tables several
//! times faster. `--cache-mb N` (env `SHATTER_CACHE_MB`) bounds the
//! in-RAM tier; eviction is deterministic (insertion order, never
//! wall-clock) and evicted entries refault through the disk tier — a
//! perf knob, never a correctness event. `--sample K` evaluates a
//! deterministic strided K-of-N subset of a `--fleet N` run whose
//! journal records stay verbatim-compatible with the exhaustive run.
//!
//! `--fleet N` evaluates N deterministically generated homes under one
//! shared work-pool budget, journaling every completed house to
//! `--journal DIR` (default `<out>/fleet-journal`) through the durable
//! `shatter-store` record format. A killed run — power loss, `kill -9`,
//! injected crash — is continued with `--resume DIR`: the run
//! configuration is reconstructed from the journal's manifest, valid
//! records are replayed verbatim (never recomputed) and only
//! missing/failed houses run; the final tables are byte-identical to an
//! uninterrupted run. `--house-budget` sets the per-house deterministic
//! effort watchdog (same syntax as `--budget`) and `--fleet-retries`
//! bounds retries before a crashing house is quarantined.
//!
//! Setting `SHATTER_EXACT_SIMPLEX=1` (or `true`) runs every SMT window
//! through the forced-exact rational simplex instead of the certified
//! float fast path — schedules and exhibit verdicts are byte-identical
//! either way; only the `float_piv`/`fb` effort columns change.
//!
//! Dependability: a panicking scenario is isolated to a `FAILED` row and
//! the rest of the suite still runs (`--fail-fast` stops instead); the
//! exit code is 1 when any scenario failed. `--inject` installs a
//! deterministic fault plan (`SHATTER_FAULTS` syntax:
//! `scenario/site/kind[@hit]`, comma-separated) and `--budget` caps
//! solver effort per SMT window (`SHATTER_BUDGET` syntax:
//! `conflicts=N,pivots=N,probes=N`) with anytime degradation.
//!
//! `--portfolio N` (`SHATTER_PORTFOLIO`) races N diversified solver
//! configurations on hard SMT windows, first finisher wins with a
//! deterministic tie-break — tables stay byte-identical to a serial
//! `--portfolio 0` run; only wall-clock and effort columns change.

use std::path::PathBuf;

use shatter_bench::fleet::{FleetPolicy, FleetScenario};
use shatter_bench::scenarios::builtin_registry;
use shatter_engine::baseline::measure;
use shatter_engine::runner::run_scenarios;
use shatter_engine::{
    CsvReporter, FixtureCache, JsonLinesReporter, Reporter, RunConfig, RunParams, TextReporter,
};
use shatter_smt::Budget;

struct Options {
    list: bool,
    wanted: Vec<String>,
    threads: usize,
    days: usize,
    span: usize,
    seed: u64,
    json: bool,
    text: bool,
    csv: bool,
    out: PathBuf,
    baseline: Option<PathBuf>,
    gate_against: Option<PathBuf>,
    inject: Option<String>,
    budget: Option<String>,
    portfolio: Option<usize>,
    fail_fast: bool,
    fleet: Option<usize>,
    sample: Option<usize>,
    resume: Option<PathBuf>,
    journal: Option<PathBuf>,
    house_budget: Option<String>,
    fleet_retries: Option<u32>,
    store: Option<PathBuf>,
    cache_mb: Option<u64>,
}

/// Fraction by which the measured serial suite wall-clock may exceed the
/// committed baseline before `--gate-against` fails the run. Tightened
/// from 30% after PR 4: the committed artifact now reflects the CDCL
/// rewrite, so the suite wall is solver-bound and stable enough to hold
/// a 20% band even on shared runners.
const GATE_SLACK: f64 = 0.20;

/// Extracts a numeric field from a baseline JSON document (our own
/// `Baseline::to_json` output — a flat `"field": value` scan suffices).
fn json_f64_field(text: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Parses the command line, collecting *every* problem instead of dying
/// on the first: a caller with several typos sees them all in one round
/// trip before the nonzero usage exit.
fn parse_args(known_ids: &[String]) -> Result<Options, Vec<String>> {
    let mut opts = Options {
        list: false,
        wanted: Vec::new(),
        threads: 0,
        days: 30,
        span: 60,
        seed: 0,
        json: false,
        text: true,
        csv: true,
        out: PathBuf::from("results"),
        baseline: None,
        gate_against: None,
        inject: None,
        budget: None,
        portfolio: None,
        fail_fast: false,
        fleet: None,
        sample: None,
        resume: None,
        journal: None,
        house_budget: None,
        fleet_retries: None,
        store: std::env::var_os("SHATTER_STORE").map(PathBuf::from),
        cache_mb: std::env::var("SHATTER_CACHE_MB")
            .ok()
            .and_then(|v| v.parse().ok()),
    };
    let mut errors: Vec<String> = Vec::new();
    fn next_num(
        args: &mut dyn Iterator<Item = String>,
        what: &str,
        errors: &mut Vec<String>,
    ) -> usize {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            errors.push(format!("{what} needs a number"));
            0
        })
    }
    fn next_value(
        args: &mut dyn Iterator<Item = String>,
        what: &str,
        needs: &str,
        errors: &mut Vec<String>,
    ) -> Option<String> {
        let v = args.next();
        if v.is_none() {
            errors.push(format!("{what} needs {needs}"));
        }
        v
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => opts.list = true,
            "--only" => {
                if let Some(ids) = next_value(&mut args, "--only", "ids", &mut errors) {
                    opts.wanted
                        .extend(ids.split(',').map(|s| s.trim().to_string()));
                }
            }
            "--threads" => opts.threads = next_num(&mut args, "--threads", &mut errors),
            "--serial" => opts.threads = 1,
            "--days" => opts.days = next_num(&mut args, "--days", &mut errors),
            "--span" => opts.span = next_num(&mut args, "--span", &mut errors),
            // --seed offsets every dataset seed (XORed into the canonical
            // per-house seeds), regenerating the synthetic months.
            "--seed" => opts.seed = next_num(&mut args, "--seed", &mut errors) as u64,
            "--json" => opts.json = true,
            "--no-text" => opts.text = false,
            "--no-csv" => opts.csv = false,
            "--out" => {
                if let Some(p) = next_value(&mut args, "--out", "a path", &mut errors) {
                    opts.out = PathBuf::from(p);
                }
            }
            "--baseline" => {
                opts.baseline =
                    next_value(&mut args, "--baseline", "a path", &mut errors).map(PathBuf::from);
            }
            "--gate-against" => {
                opts.gate_against = next_value(&mut args, "--gate-against", "a path", &mut errors)
                    .map(PathBuf::from);
            }
            "--inject" => {
                if let Some(plan) = next_value(&mut args, "--inject", "a fault plan", &mut errors) {
                    if let Err(e) = shatter_faults::parse_plan(&plan) {
                        errors.push(format!("--inject: {e}"));
                    }
                    opts.inject = Some(plan);
                }
            }
            "--budget" => {
                if let Some(spec) = next_value(&mut args, "--budget", "a budget spec", &mut errors)
                {
                    if let Err(e) = Budget::parse(&spec) {
                        errors.push(format!("--budget: {e}"));
                    }
                    opts.budget = Some(spec);
                }
            }
            "--portfolio" => opts.portfolio = Some(next_num(&mut args, "--portfolio", &mut errors)),
            "--fleet" => opts.fleet = Some(next_num(&mut args, "--fleet", &mut errors)),
            "--sample" => opts.sample = Some(next_num(&mut args, "--sample", &mut errors)),
            "--store" => {
                opts.store =
                    next_value(&mut args, "--store", "a dir", &mut errors).map(PathBuf::from);
            }
            "--cache-mb" => {
                opts.cache_mb = Some(next_num(&mut args, "--cache-mb", &mut errors) as u64);
            }
            "--resume" => {
                opts.resume = next_value(&mut args, "--resume", "a journal dir", &mut errors)
                    .map(PathBuf::from);
            }
            "--journal" => {
                opts.journal =
                    next_value(&mut args, "--journal", "a dir", &mut errors).map(PathBuf::from);
            }
            "--house-budget" => {
                if let Some(spec) =
                    next_value(&mut args, "--house-budget", "a budget spec", &mut errors)
                {
                    if let Err(e) = Budget::parse(&spec) {
                        errors.push(format!("--house-budget: {e}"));
                    }
                    opts.house_budget = Some(spec);
                }
            }
            "--fleet-retries" => {
                opts.fleet_retries =
                    Some(next_num(&mut args, "--fleet-retries", &mut errors) as u32);
            }
            "--keep-going" => opts.fail_fast = false,
            "--fail-fast" => opts.fail_fast = true,
            "all" => opts.wanted.extend(known_ids.iter().cloned()),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--list] [--only ID[,ID...]] [--threads N] [--serial]\n\
                     \x20            [--days N] [--span N] [--seed N] [--json] [--no-text]\n\
                     \x20            [--out DIR] [--no-csv] [--baseline PATH]\n\
                     \x20            [--inject PLAN] [--budget SPEC] [--portfolio N]\n\
                     \x20            [--fleet N] [--sample K] [--resume DIR] [--journal DIR]\n\
                     \x20            [--house-budget SPEC] [--fleet-retries N]\n\
                     \x20            [--store DIR] [--cache-mb N]\n\
                     \x20            [--keep-going] [--fail-fast] [exhibit...]"
                );
                println!("exhibits: {}", known_ids.join(" "));
                std::process::exit(0);
            }
            other if known_ids.iter().any(|id| id == other) => {
                opts.wanted.push(other.to_string());
            }
            other => errors.push(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if errors.is_empty() {
        Ok(opts)
    } else {
        Err(errors)
    }
}

fn main() {
    let mut registry = builtin_registry();
    let ids = registry.ids();
    let mut opts = match parse_args(&ids) {
        Ok(opts) => opts,
        Err(errors) => {
            for e in &errors {
                eprintln!("repro: {e}");
            }
            std::process::exit(2);
        }
    };

    if let Some(plan) = &opts.inject {
        // Validated during parsing; installing can only re-succeed.
        shatter_faults::install_str(plan).unwrap_or_else(|e| die(&format!("--inject: {e}")));
    }
    if let Some(spec) = &opts.budget {
        // SmtScheduler::default reads SHATTER_BUDGET, so exporting the
        // (already-validated) spec reaches every window the run solves.
        std::env::set_var("SHATTER_BUDGET", spec);
    }
    if let Some(n) = opts.portfolio {
        // Same route as --budget: SmtScheduler::default reads
        // SHATTER_PORTFOLIO, so every scheduler the exhibits build
        // races hard windows across n diversified configurations.
        std::env::set_var("SHATTER_PORTFOLIO", n.to_string());
    }

    // Crash-safe fleet wiring. --resume reconstructs the interrupted
    // run's configuration from the journal's manifest — the manifest
    // wins over any CLI params, so replayed records address the exact
    // same houses — and --fleet registers the journaled fleet scenario.
    if opts.resume.is_some() && opts.fleet.is_some() {
        die("--resume reconstructs the fleet from the journal manifest; drop --fleet");
    }
    if let Some(dir) = opts.resume.clone() {
        let entries = shatter_store::read_manifest(&dir).unwrap_or_else(|e| {
            die(&format!(
                "--resume: reading {}: {e}",
                dir.join(shatter_store::MANIFEST_NAME).display()
            ))
        });
        let field = |key: &str| -> String {
            shatter_store::manifest_value(&entries, key)
                .unwrap_or_else(|| die(&format!("--resume: manifest has no {key:?} entry")))
                .to_string()
        };
        let num = |key: &str| -> usize {
            field(key)
                .parse()
                .unwrap_or_else(|_| die(&format!("--resume: bad {key:?} in manifest")))
        };
        opts.fleet = Some(num("fleet"));
        opts.days = num("days");
        opts.span = num("span");
        opts.seed = field("seed")
            .parse()
            .unwrap_or_else(|_| die("--resume: bad \"seed\" in manifest"));
        opts.house_budget = Some(field("house_budget"));
        opts.fleet_retries = Some(num("retries") as u32);
        // Present only when the interrupted run was sampled; exhaustive
        // manifests predating the entry resume unchanged.
        opts.sample = shatter_store::manifest_value(&entries, "sample").map(|v| {
            v.parse()
                .unwrap_or_else(|_| die("--resume: bad \"sample\" in manifest"))
        });
        opts.journal = Some(dir);
    }
    if let Some(k) = opts.sample {
        match opts.fleet {
            None => die("--sample K only applies to --fleet N runs"),
            Some(n) if k == 0 || k > n => {
                die(&format!("--sample {k} must be in 1..={n} (the fleet size)"))
            }
            Some(_) => {}
        }
    }
    if let Some(n) = opts.fleet {
        let mut policy = FleetPolicy::default();
        if let Some(spec) = &opts.house_budget {
            policy.house_budget =
                Budget::parse(spec).unwrap_or_else(|e| die(&format!("--house-budget: {e}")));
        }
        if let Some(r) = opts.fleet_retries {
            policy.max_retries = r;
        }
        let dir = opts
            .journal
            .clone()
            .unwrap_or_else(|| opts.out.join("fleet-journal"));
        let mut scenario = FleetScenario::new("fleet", n)
            .with_policy(policy)
            .with_journal(dir);
        if let Some(k) = opts.sample {
            scenario = scenario.with_sample(k);
        }
        registry.register(scenario);
        if opts.wanted.is_empty() {
            opts.wanted.push("fleet".to_string());
        }
    }

    if opts.list {
        println!("{:<12} {:<38} description", "id", "title");
        for s in registry.all() {
            println!("{:<12} {:<38} {}", s.id(), s.title(), s.description());
        }
        return;
    }

    let scenarios = if opts.wanted.is_empty() {
        registry.all()
    } else {
        registry.select(&opts.wanted).unwrap_or_else(|bad| {
            for id in &bad {
                eprintln!("repro: unknown exhibit {id:?}");
            }
            eprintln!("repro: known exhibits: {} (try --list)", ids.join(" "));
            std::process::exit(2);
        })
    };

    let cfg = RunConfig {
        threads: opts.threads,
        params: RunParams {
            days: opts.days,
            span: opts.span,
            base_seed: opts.seed,
        },
        fail_fast: opts.fail_fast,
    };

    if let Some(path) = &opts.baseline {
        eprintln!(
            "measuring baseline over {} scenarios (days={}, span={}) ...",
            scenarios.len(),
            opts.days,
            opts.span
        );
        let baseline = measure(&scenarios, &cfg);
        if let Err(e) = std::fs::write(path, baseline.to_json()) {
            die(&format!("writing {}: {e}", path.display()));
        }
        eprintln!(
            "serial+uncached {:.2}s -> parallel+cached {:.2}s ({:.2}x, {} threads); wrote {}",
            baseline.serial_uncached_wall.as_secs_f64(),
            baseline.parallel_cached_wall.as_secs_f64(),
            baseline.speedup(),
            baseline.threads,
            path.display()
        );
        // Perf gate: the fresh serial-uncached suite wall-clock may not
        // regress more than GATE_SLACK over the committed artifact's.
        if let Some(gate) = &opts.gate_against {
            let committed = std::fs::read_to_string(gate)
                .unwrap_or_else(|e| die(&format!("reading {}: {e}", gate.display())));
            let committed_serial = json_f64_field(&committed, "serial_uncached_s")
                .unwrap_or_else(|| die(&format!("{}: no serial_uncached_s", gate.display())));
            let measured = baseline.serial_uncached_wall.as_secs_f64();
            let limit = committed_serial * (1.0 + GATE_SLACK);
            if measured > limit {
                eprintln!(
                    "perf gate FAILED: serial suite {measured:.2}s exceeds {limit:.2}s \
                     (committed {committed_serial:.2}s + {:.0}% slack) from {}",
                    GATE_SLACK * 100.0,
                    gate.display()
                );
                std::process::exit(1);
            }
            eprintln!(
                "perf gate ok: serial suite {measured:.2}s within {limit:.2}s \
                 (committed {committed_serial:.2}s + {:.0}% slack)",
                GATE_SLACK * 100.0
            );
        }
        return;
    }
    if opts.gate_against.is_some() {
        die("--gate-against requires --baseline");
    }

    eprintln!(
        "SHATTER scenario engine — {} scenario(s), days={}, span={}, threads={}",
        scenarios.len(),
        opts.days,
        opts.span,
        cfg.effective_threads()
    );

    let mut cache = FixtureCache::new();
    if let Some(dir) = &opts.store {
        let store = shatter_store::BlobStore::open(dir, shatter_engine::disk_schema_sig())
            .unwrap_or_else(|e| die(&format!("--store: opening {}: {e}", dir.display())));
        cache = cache.with_disk(store);
    }
    if let Some(mb) = opts.cache_mb {
        cache = cache.with_memory_budget(mb * 1024 * 1024);
    }
    let outcome = run_scenarios(&scenarios, &cache, &cfg);

    let mut reporters: Vec<Box<dyn Reporter>> = Vec::new();
    if opts.text {
        reporters.push(Box::new(TextReporter::new(std::io::stdout())));
    }
    if opts.json {
        reporters.push(Box::new(JsonLinesReporter::new(std::io::stdout())));
    }
    if opts.csv {
        reporters.push(Box::new(CsvReporter::new(&opts.out)));
    }
    for r in &mut reporters {
        for report in &outcome.reports {
            if let Err(e) = r.scenario(report) {
                die(&format!("reporter error: {e}"));
            }
        }
        if let Err(e) = r.finish(&outcome) {
            die(&format!("reporter error: {e}"));
        }
    }

    // A failed scenario never aborts the suite (unless --fail-fast), but
    // it must fail the invocation.
    if outcome.any_failed() {
        let failed: Vec<&str> = outcome.failures().iter().map(|r| r.id.as_str()).collect();
        eprintln!(
            "repro: {} scenario(s) FAILED: {}",
            failed.len(),
            failed.join(" ")
        );
        std::process::exit(1);
    }
}
