//! `repro` — regenerates every table and figure of the SHATTER paper's
//! evaluation (see `DESIGN.md` §4 and `EXPERIMENTS.md`).
//!
//! Usage:
//!
//! ```text
//! repro [--days N] [--span N] [--out DIR] [exhibit...]
//! repro all          # everything (default)
//! repro tab5 fig10   # selected exhibits
//! ```
//!
//! Exhibits: fig3 fig4 fig5 fig6 tab3 tab4 tab5 fig10 tab6 tab7 fig11
//! testbed. Each prints an aligned table and writes `results/<id>.csv`.

use std::path::PathBuf;
use std::time::Instant;

use shatter_bench::exhibits;
use shatter_bench::{write_csv, Table};

struct Options {
    days: usize,
    span: usize,
    out: PathBuf,
    wanted: Vec<String>,
}

const ALL: [&str; 13] = [
    "fig3", "fig4", "fig5", "fig6", "tab3", "tab4", "tab5", "fig10", "tab6", "tab7", "fig11",
    "testbed", "ablation",
];

fn parse_args() -> Options {
    let mut opts = Options {
        days: 30,
        span: 60,
        out: PathBuf::from("results"),
        wanted: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--days" => {
                opts.days = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--days needs a number"));
            }
            "--span" => {
                opts.span = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--span needs a number"));
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "all" => opts.wanted.extend(ALL.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!("usage: repro [--days N] [--span N] [--out DIR] [exhibit...]");
                println!("exhibits: {}", ALL.join(" "));
                std::process::exit(0);
            }
            other if ALL.contains(&other) => opts.wanted.push(other.to_string()),
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    if opts.wanted.is_empty() {
        opts.wanted.extend(ALL.iter().map(|s| s.to_string()));
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    println!(
        "SHATTER reproduction harness — days={}, span={}, out={}",
        opts.days,
        opts.span,
        opts.out.display()
    );
    for id in &opts.wanted {
        let start = Instant::now();
        let table: Table = match id.as_str() {
            "fig3" => exhibits::fig3(opts.days),
            "fig4" => exhibits::fig4(opts.days),
            "fig5" => exhibits::fig5(opts.days),
            "fig6" => exhibits::fig6(opts.days),
            "tab3" => exhibits::tab3(),
            "tab4" => exhibits::tab4(opts.days),
            "tab5" => exhibits::tab5(opts.days),
            "fig10" => exhibits::fig10(opts.days),
            "tab6" => exhibits::tab6(opts.days),
            "tab7" => exhibits::tab7(opts.days),
            "fig11" => exhibits::fig11(opts.span),
            "testbed" => exhibits::testbed(),
            "ablation" => exhibits::ablation(opts.days),
            other => die(&format!("unknown exhibit {other}")),
        };
        println!("{}", table.render());
        match write_csv(&table, &opts.out) {
            Ok(path) => println!(
                "[{id}] wrote {} in {:.1}s\n",
                path.display(),
                start.elapsed().as_secs_f64()
            ),
            Err(e) => eprintln!("[{id}] csv write failed: {e}"),
        }
    }
}
