//! Criterion microbench of the persistent blob store — the disk tier
//! under the fixture cache.
//!
//! `codec/*` isolates the wire codec: serialize/deserialize of a
//! realistic [`WindowSolution`] and of a full 1440-row [`RewardTable`]
//! (the largest blob the memo tier persists per fixture). `blob_io/*`
//! measures the store round trip itself — `put` is a checksummed
//! tmp+rename write, `get` a lazy-validated read — at both payload
//! scales, so regressions in either the codec or the record format show
//! up as $/op, not as a mystery warm-run slowdown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use shatter_core::{RewardTable, WindowSolution};
use shatter_dataset::HouseSpec;
use shatter_engine::disk_schema_sig;
use shatter_hvac::EnergyModel;
use shatter_smarthome::ZoneId;
use shatter_store::{Blob, BlobStore};

fn sample_window_solution() -> WindowSolution {
    WindowSolution {
        zones: Some((0..8).map(ZoneId).collect()),
        theory_conflicts: 421,
        sat_decisions: 9_310,
        sat_propagations: 88_412,
        sat_learned: 512,
        float_pivots: 14_890,
        objective: Some(123_456),
        ..WindowSolution::default()
    }
}

fn sample_reward_table() -> RewardTable {
    let spec = HouseSpec::aras_a();
    let model = EnergyModel::standard(spec.home.build());
    RewardTable::build(&model)
}

fn bench_codec(c: &mut Criterion) {
    let sol = sample_window_solution();
    let table = sample_reward_table();
    let sol_bytes = sol.to_blob();
    let table_bytes = table.to_blob();

    let mut g = c.benchmark_group("codec");
    g.bench_function("window_solution/encode", |b| {
        b.iter(|| black_box(&sol).to_blob())
    });
    g.bench_function("window_solution/decode", |b| {
        b.iter(|| WindowSolution::from_blob(black_box(&sol_bytes)).expect("valid blob"))
    });
    g.bench_function("reward_table/encode", |b| {
        b.iter(|| black_box(&table).to_blob())
    });
    g.bench_function("reward_table/decode", |b| {
        b.iter(|| RewardTable::from_blob(black_box(&table_bytes)).expect("valid blob"))
    });
    g.finish();
}

fn bench_blob_io(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("shatter-bench-store-io-{}", std::process::id()));
    let store = BlobStore::open(&dir, disk_schema_sig()).expect("open bench store");
    let sol_bytes = sample_window_solution().to_blob();
    let table_bytes = sample_reward_table().to_blob();

    let mut g = c.benchmark_group("blob_io");
    for (label, payload) in [
        ("window_solution", &sol_bytes),
        ("reward_table", &table_bytes),
    ] {
        g.bench_with_input(BenchmarkId::new("put", label), payload, |b, payload| {
            let mut n = 0u64;
            b.iter(|| {
                // A fresh key per iteration keeps this a write, not an
                // overwrite of a hot inode.
                n += 1;
                store.put(&format!("bench/{label}/{n}"), payload).unwrap();
            });
        });
        let key = format!("bench/{label}/warm");
        store.put(&key, payload).unwrap();
        g.bench_with_input(BenchmarkId::new("get", label), &key, |b, key| {
            b.iter(|| store.get(black_box(key)).expect("warm blob present"));
        });
    }
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_codec, bench_blob_io);
criterion_main!(benches);
