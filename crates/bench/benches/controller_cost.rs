//! Criterion bench behind paper Fig. 3: daily control-cost evaluation of
//! the ASHRAE baseline vs the activity-aware DCHVAC controller.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use shatter_bench::common::HouseFixture;
use shatter_dataset::HouseSpec;
use shatter_hvac::{AshraeController, DchvacController};

fn bench_controllers(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 2);
    let day = &fx.month.days[0];
    let mut group = c.benchmark_group("controller_day_cost");
    group.sample_size(10);
    group.bench_function("dchvac", |b| {
        b.iter(|| black_box(fx.model.day_cost(&DchvacController, black_box(day))))
    });
    group.bench_function("ashrae", |b| {
        let ctl = AshraeController::default();
        b.iter(|| black_box(fx.model.day_cost(&ctl, black_box(day))))
    });
    group.finish();
}

criterion_group!(benches, bench_controllers);
criterion_main!(benches);
