//! Criterion microbench of the CDCL search kernels the PR 4 rewrite
//! targets: the decide+propagate inner loop (order-heap decisions over a
//! propagation-heavy instance) and a full clause-database GC cycle under
//! a tight learnt budget.
//!
//! `decide_propagate/N` solves an N-pigeon pigeonhole instance — almost
//! all of its work is the decide/propagate/analyze loop, so the wall
//! tracks the order heap and the two-watched-literal kernel.
//! `gc_cycle` solves the same instance with the reduction budget pinned
//! low enough that the reducer runs many times per solve, timing the
//! compaction + watch-rebuild + reason-remap path.
//! `assumption_chain` re-probes one instance under alternating
//! assumptions, the shape the OMT binary search pays per window.
//! `minimize` times the analyze+ccmin loop on the conflict-dense
//! pigeonhole shape and reports the minimized-literal count (the
//! recursive self-subsumption pass must actually shrink clauses, not
//! just burn cycles).
//! `binary_propagation` probes a pure implication-cascade instance, so
//! the wall tracks the binary adjacency layer (len-2 clauses propagate
//! from compact `(other, clause)` lists before any long-watch work).
//! `push_pop_restore` opens and closes assertion frames around an
//! unsatisfiable subproblem, timing the incremental order-heap repair
//! the pop path performs instead of a full rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use shatter_smt::sat::{Lit, SatSolver, SatVerdict};

fn pigeonhole(pigeons: usize) -> SatSolver {
    let mut s = SatSolver::new();
    add_pigeonhole(&mut s, pigeons);
    s
}

/// Adds an N-pigeon pigeonhole subproblem over fresh variables (so it
/// can also be asserted inside a push frame of a larger instance).
fn add_pigeonhole(s: &mut SatSolver, pigeons: usize) {
    let holes = pigeons - 1;
    let base: Vec<usize> = (0..pigeons * holes).map(|_| s.new_var()).collect();
    let var = |i: usize, j: usize| base[i * holes + j];
    for i in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|j| Lit::pos(var(i, j))).collect();
        s.add_clause(&clause);
    }
    for j in 0..holes {
        for a in 0..pigeons {
            for b in (a + 1)..pigeons {
                s.add_clause(&[Lit::neg(var(a, j)), Lit::neg(var(b, j))]);
            }
        }
    }
}

/// A satisfiable padded instance with a guard selector: probing it under
/// alternating guard assumptions mimics the OMT loop's probe chain.
fn guarded_chain(n_chains: usize) -> (SatSolver, Lit) {
    let mut s = SatSolver::new();
    let guard = Lit::pos(s.new_var());
    for _ in 0..n_chains {
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // guard -> (a -> b -> c), plus a free disjunction.
        s.add_clause(&[guard.negated(), Lit::neg(a), Lit::pos(b)]);
        s.add_clause(&[guard.negated(), Lit::neg(b), Lit::pos(c)]);
        s.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
    }
    (s, guard)
}

fn bench_decide_propagate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_core/decide_propagate");
    group.sample_size(10);
    for n in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(), SatVerdict::Unsat);
                black_box(s.stats)
            })
        });
    }
    group.finish();
}

fn bench_gc_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_core/gc_cycle");
    group.sample_size(10);
    group.bench_function("pigeonhole_7_budget_8", |b| {
        b.iter(|| {
            let mut s = pigeonhole(7);
            s.set_gc_budget(8);
            assert_eq!(s.solve(), SatVerdict::Unsat);
            assert!(s.stats.gc_clauses > 0, "GC must actually run");
            black_box(s.stats)
        })
    });
    group.finish();
}

fn bench_assumption_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_core/assumption_chain");
    group.sample_size(10);
    group.bench_function("guarded_probes_x20", |b| {
        let (mut s, guard) = guarded_chain(200);
        b.iter(|| {
            for i in 0..20 {
                let a = if i % 2 == 0 { guard } else { guard.negated() };
                let v = s.solve_under(&[a]);
                assert!(matches!(v, SatVerdict::Sat(_)));
            }
            black_box(s.stats)
        })
    });
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_core/minimize");
    group.sample_size(10);
    for n in [6usize, 7] {
        // Surface the clause-shrink ratio once per size so the bench
        // log shows what the ccmin pass buys, not just its cost.
        let mut probe = pigeonhole(n);
        assert_eq!(probe.solve(), SatVerdict::Unsat);
        eprintln!(
            "sat_core/minimize: pigeonhole {n}: {} literals minimized over {} learnts",
            probe.stats.minimized, probe.stats.learned
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(), SatVerdict::Unsat);
                assert!(s.stats.minimized > 0, "ccmin removed nothing");
                black_box(s.stats.minimized)
            })
        });
    }
    group.finish();
}

/// K disjoint binary implication chains hanging off one root literal:
/// assuming the root enqueues K·L implied literals purely through the
/// binary adjacency layer.
fn binary_cascade(chains: usize, len: usize) -> (SatSolver, Lit) {
    let mut s = SatSolver::new();
    let root = Lit::pos(s.new_var());
    for _ in 0..chains {
        let mut prev = root;
        for _ in 0..len {
            let next = Lit::pos(s.new_var());
            s.add_clause(&[prev.negated(), next]);
            prev = next;
        }
    }
    (s, root)
}

fn bench_binary_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_core/binary_propagation");
    group.sample_size(10);
    group.bench_function("cascade_64x256_probes_x20", |b| {
        let (mut s, root) = binary_cascade(64, 256);
        b.iter(|| {
            for i in 0..20 {
                let a = if i % 2 == 0 { root } else { root.negated() };
                assert!(matches!(s.solve_under(&[a]), SatVerdict::Sat(_)));
            }
            assert!(s.stats.bin_props > 0, "binary layer never propagated");
            black_box(s.stats.bin_props)
        })
    });
    group.finish();
}

fn bench_push_pop_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_core/push_pop_restore");
    group.sample_size(10);
    group.bench_function("guarded500_ph5_frames_x20", |b| {
        // A large ambient heap (1501 vars) makes the pop-time repair
        // cost visible; each frame's refuted subproblem reorders
        // activities before the pop restores the outer state.
        let (mut s, guard) = guarded_chain(500);
        assert!(matches!(s.solve_under(&[guard]), SatVerdict::Sat(_)));
        b.iter(|| {
            for _ in 0..20 {
                s.push();
                add_pigeonhole(&mut s, 5);
                assert_eq!(s.solve(), SatVerdict::Unsat);
                s.pop();
            }
            black_box(s.stats.conflicts)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decide_propagate,
    bench_gc_cycle,
    bench_assumption_chain,
    bench_minimization,
    bench_binary_propagation,
    bench_push_pop_restore
);
criterion_main!(benches);
