//! Criterion microbench of the simplex pivot loop itself — the inner
//! kernel the two-phase numeric pipeline targets.
//!
//! `pivot_loop/{float_first,exact_only}/N` solves the same pivot-heavy
//! chain instance under each [`NumericMode`]; the pivot sequences are
//! identical by construction, so the spread is purely the cost of exact
//! rational comparisons versus certified `f64` ones.
//!
//! `row_alloc` isolates the tableau row arena: `arena_warm_restart`
//! re-solves shifted bound sets on one carried tableau (pivots recycle
//! released row buffers from the free list), while `fresh_tableau`
//! rebuilds the solver every call so each pivot row is a cold `Vec`
//! allocation — the shape the arena replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use shatter_smt::simplex::{BoundConstraint, BoundKind, DeltaRat, Simplex, SimplexResult};
use shatter_smt::{NumericMode, Rat};

fn lower(expr: Vec<(i128, usize)>, bound: i128, id: usize) -> BoundConstraint {
    BoundConstraint {
        expr: expr.into_iter().map(|(c, v)| (Rat::new(c, 1), v)).collect(),
        bound: DeltaRat::standard(Rat::new(bound, 1)),
        kind: BoundKind::Lower,
        id,
    }
}

fn upper(expr: Vec<(i128, usize)>, bound: i128, id: usize) -> BoundConstraint {
    BoundConstraint {
        expr: expr.into_iter().map(|(c, v)| (Rat::new(c, 1), v)).collect(),
        bound: DeltaRat::standard(Rat::new(bound, 1)),
        kind: BoundKind::Upper,
        id,
    }
}

/// A feasible chain instance whose pair-sum slacks all start below their
/// lower bounds, so the Bland loop pivots each of the `n` slack columns
/// against a variable column before reaching feasibility.
fn chain_bounds(n: usize, shift: i128) -> Vec<BoundConstraint> {
    let mut bounds = Vec::with_capacity(2 * n + 1);
    for i in 0..n {
        let want = 5 + shift + (i as i128 % 3);
        bounds.push(lower(vec![(1, i), (1, i + 1)], want, i));
    }
    for i in 0..=n {
        bounds.push(upper(vec![(1, i)], 6, n + i));
    }
    bounds
}

fn solve(s: &mut Simplex, bounds: &[BoundConstraint]) {
    match s.check_assignment(bounds) {
        SimplexResult::Feasible(m) => {
            black_box(m);
        }
        SimplexResult::Infeasible(_) => unreachable!("chain instance is feasible"),
    }
}

fn bench_pivot_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivot_loop");
    for n in [16usize, 64] {
        let bounds = chain_bounds(n, 0);
        for (name, mode) in [
            ("float_first", NumericMode::FloatFirst),
            ("exact_only", NumericMode::ExactOnly),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &bounds, |b, bounds| {
                b.iter(|| {
                    let mut s = Simplex::new();
                    s.set_numeric_mode(mode);
                    solve(&mut s, bounds);
                    black_box(s.stats())
                })
            });
        }
    }
    group.finish();
}

fn bench_row_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_alloc");
    let n = 32usize;
    group.bench_function("arena_warm_restart", |b| {
        let mut s = Simplex::new();
        let mut shift = 0i128;
        b.iter(|| {
            // Shifting the bounds forces fresh pivots every call; the
            // rows they rewrite come back out of the arena free list.
            shift = (shift + 1) % 4;
            solve(&mut s, &chain_bounds(n, shift));
        })
    });
    group.bench_function("fresh_tableau", |b| {
        let mut shift = 0i128;
        b.iter(|| {
            shift = (shift + 1) % 4;
            let mut s = Simplex::new();
            solve(&mut s, &chain_bounds(n, shift));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pivot_loop, bench_row_alloc);
criterion_main!(benches);
