//! Criterion bench for the `smtlite` substrate itself: CDCL SAT on a
//! pigeonhole family and OMT maximization on a box LP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use shatter_smt::ast::{Formula, LinExpr};
use shatter_smt::sat::{Lit, SatSolver};
use shatter_smt::Solver;

fn pigeonhole(pigeons: usize) -> SatSolver {
    let holes = pigeons - 1;
    let mut s = SatSolver::new();
    let var = |i: usize, j: usize| i * holes + j;
    for _ in 0..pigeons * holes {
        s.new_var();
    }
    for i in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|j| Lit::pos(var(i, j))).collect();
        s.add_clause(&clause);
    }
    for j in 0..holes {
        for a in 0..pigeons {
            for b in (a + 1)..pigeons {
                s.add_clause(&[Lit::neg(var(a, j)), Lit::neg(var(b, j))]);
            }
        }
    }
    s
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl_pigeonhole");
    group.sample_size(10);
    for n in [5usize, 6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                black_box(s.solve())
            })
        });
    }
    group.finish();
}

fn bench_omt(c: &mut Criterion) {
    let mut group = c.benchmark_group("omt_box_lp");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = Solver::new();
                let mut obj = LinExpr::constant(0);
                for i in 0..n {
                    let x = s.new_real();
                    s.assert_formula(LinExpr::var(x).ge(0));
                    s.assert_formula(LinExpr::var(x).le((i as i64 % 7) + 1));
                    obj = obj.plus(&LinExpr::var(x));
                }
                black_box(s.maximize(&obj, 0.0, 200.0, 1e-3))
            })
        });
    }
    group.finish();
}

fn bench_theory_conflicts(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpllt_conflict_loop");
    group.sample_size(10);
    group.bench_function("chained_choices", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let x = s.new_real();
            // Ten Boolean choices, each forcing incompatible bounds unless
            // the right polarity is picked.
            for i in 0..10 {
                let p = s.new_bool();
                s.assert_formula(Formula::implies(
                    Formula::Bool(p),
                    LinExpr::var(x).ge(i as i64),
                ));
                s.assert_formula(Formula::implies(
                    Formula::not(Formula::Bool(p)),
                    LinExpr::var(x).le(-(i as i64) - 1),
                ));
            }
            black_box(s.check())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sat, bench_omt, bench_theory_conflicts);
criterion_main!(benches);
