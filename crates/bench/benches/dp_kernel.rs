//! Criterion microbench of the DP schedule-synthesis kernel — the hot
//! path of every month-scale exhibit (tab5/tab6/tab7/fig10/ablation).
//!
//! `full_day` measures `WindowDpScheduler::schedule` end to end (both
//! occupants, stay profiles warm after the first iteration, exactly like
//! a suite run); `single_occupant` isolates one DP sweep; `cold_profiles`
//! retrains nothing but clones the ADM each iteration so the per-zone
//! [`StayProfile`] build cost is included — the difference between the
//! two quantifies what the lookup tables save.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use shatter_adm::AdmKind;
use shatter_bench::common::HouseFixture;
use shatter_core::{AttackerCapability, RewardTable, Scheduler, WindowDpScheduler};
use shatter_dataset::HouseSpec;
use shatter_smarthome::OccupantId;

fn bench_dp_kernel(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 12);
    let adm = fx.adm(AdmKind::default_kmeans(), 10);
    let table = RewardTable::build(&fx.model);
    let cap = AttackerCapability::full(&fx.home);
    let day = &fx.month.days[10];
    let sched = WindowDpScheduler::default();

    let mut group = c.benchmark_group("dp_kernel");
    group.sample_size(20);
    group.bench_function("full_day", |b| {
        b.iter(|| black_box(sched.schedule(&table, &adm, &cap, day)))
    });
    group.bench_function("single_occupant", |b| {
        b.iter(|| black_box(sched.schedule_occupant_zones(OccupantId(0), &table, &adm, &cap, day)))
    });
    group.bench_function("cold_profiles", |b| {
        b.iter(|| {
            let cold = adm.clone();
            black_box(sched.schedule_occupant_zones(OccupantId(0), &table, &cold, &cap, day))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dp_kernel);
criterion_main!(benches);
