//! Criterion bench behind paper Figs. 4–6: ADM training (clustering +
//! hull linearization) for both back-ends.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use shatter_adm::{AdmKind, HullAdm};
use shatter_bench::common::HouseFixture;
use shatter_dataset::episodes::extract_episodes;
use shatter_dataset::HouseSpec;

fn bench_adm_training(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 15);
    let episodes = extract_episodes(&fx.month);
    let mut group = c.benchmark_group("adm_training");
    group.sample_size(10);
    group.bench_function("dbscan_train", |b| {
        b.iter(|| {
            black_box(HullAdm::train_from_episodes(
                black_box(&episodes),
                AdmKind::default_dbscan(),
            ))
        })
    });
    group.bench_function("kmeans_train", |b| {
        b.iter(|| {
            black_box(HullAdm::train_from_episodes(
                black_box(&episodes),
                AdmKind::default_kmeans(),
            ))
        })
    });
    group.finish();
}

fn bench_adm_query(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 15);
    let adm = fx.adm(AdmKind::default_dbscan(), 15);
    let mut group = c.benchmark_group("adm_query");
    group.bench_function("within", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for t in (0..1440).step_by(20) {
                if adm.within(
                    shatter_smarthome::OccupantId(0),
                    shatter_smarthome::ZoneId(1),
                    t as f64,
                    30.0,
                ) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_adm_training, bench_adm_query);
criterion_main!(benches);
