//! Criterion microbench of single-window OMT latency — the unit of work
//! the incremental `shatter-smt` refactor targets (one solver carried
//! across probes and windows instead of a clone per binary-search probe).
//!
//! `single_window/N` solves exactly one window of span `N` minutes;
//! `window_chain` solves six consecutive 10-minute windows through one
//! carried solver, which is the shape `strategies`/`fig11` pay per day.
//! `window_chain_fresh` is the same chain on the fresh-solver-per-window
//! reference path, so the reuse win stays visible in the report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use shatter_adm::AdmKind;
use shatter_bench::common::HouseFixture;
use shatter_core::{AttackerCapability, RewardTable, SmtScheduler};
use shatter_dataset::HouseSpec;
use shatter_smarthome::OccupantId;

fn bench_omt_window(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 12);
    let adm = fx.adm(AdmKind::default_kmeans(), 10);
    let table = RewardTable::build(&fx.model);
    let cap = AttackerCapability::full(&fx.home);
    let day = &fx.month.days[10];

    let mut group = c.benchmark_group("omt_window");
    group.sample_size(10);
    for span in [10usize, 14] {
        group.bench_with_input(BenchmarkId::new("single_window", span), &span, |b, &n| {
            let sched = SmtScheduler {
                horizon: n,
                ..SmtScheduler::default()
            };
            b.iter(|| black_box(sched.schedule_occupant(OccupantId(0), &table, &adm, &cap, day, n)))
        });
    }
    group.bench_function("window_chain", |b| {
        let sched = SmtScheduler::default();
        b.iter(|| black_box(sched.schedule_occupant(OccupantId(0), &table, &adm, &cap, day, 60)))
    });
    group.bench_function("window_chain_fresh", |b| {
        let sched = SmtScheduler {
            reuse_solver: false,
            ..SmtScheduler::default()
        };
        b.iter(|| black_box(sched.schedule_occupant(OccupantId(0), &table, &adm, &cap, day, 60)))
    });
    group.finish();
}

criterion_group!(benches, bench_omt_window);
criterion_main!(benches);
