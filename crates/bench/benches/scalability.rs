//! Criterion bench behind paper Fig. 11: SMT attack-schedule synthesis
//! time vs optimization horizon (a) and zone count (b), plus the DP
//! scheduler for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use shatter_adm::AdmKind;
use shatter_bench::common::HouseFixture;
use shatter_core::{AttackerCapability, RewardTable, Scheduler, SmtScheduler, WindowDpScheduler};
use shatter_dataset::HouseSpec;
use shatter_hvac::EnergyModel;
use shatter_smarthome::{houses, OccupantId};

fn bench_horizon(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 12);
    let adm = fx.adm(AdmKind::default_kmeans(), 10);
    let table = RewardTable::build(&fx.model);
    let cap = AttackerCapability::full(&fx.home);
    let day = &fx.month.days[10];
    let mut group = c.benchmark_group("smt_horizon");
    group.sample_size(10);
    for horizon in [10usize, 14, 18] {
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, &h| {
            let sched = SmtScheduler {
                horizon: h,
                ..SmtScheduler::default()
            };
            b.iter(|| {
                black_box(sched.schedule_occupant(OccupantId(0), &table, &adm, &cap, day, 36))
            })
        });
    }
    group.finish();
}

fn bench_zones(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 12);
    let adm = fx.adm(AdmKind::default_kmeans(), 10);
    let day = &fx.month.days[10];
    let mut group = c.benchmark_group("smt_zones");
    group.sample_size(10);
    for n_zones in [4usize, 12, 24] {
        let home = houses::scaled_home(n_zones);
        let model = EnergyModel::standard(home.clone());
        let table = RewardTable::build(&model);
        let cap = AttackerCapability::full(&home);
        group.bench_with_input(BenchmarkId::from_parameter(n_zones), &n_zones, |b, _| {
            let sched = SmtScheduler::default();
            b.iter(|| {
                black_box(sched.schedule_occupant(OccupantId(0), &table, &adm, &cap, day, 30))
            })
        });
    }
    group.finish();
}

fn bench_dp_full_day(c: &mut Criterion) {
    let fx = HouseFixture::new(&HouseSpec::aras_a(), 12);
    let adm = fx.adm(AdmKind::default_kmeans(), 10);
    let table = RewardTable::build(&fx.model);
    let cap = AttackerCapability::full(&fx.home);
    let day = &fx.month.days[10];
    let mut group = c.benchmark_group("dp_scheduler");
    group.sample_size(10);
    group.bench_function("full_day", |b| {
        let sched = WindowDpScheduler::default();
        b.iter(|| black_box(sched.schedule(&table, &adm, &cap, day)))
    });
    group.finish();
}

criterion_group!(benches, bench_horizon, bench_zones, bench_dp_full_day);
criterion_main!(benches);
