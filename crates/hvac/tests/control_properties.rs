//! Property-based tests on the control model: monotonicity and physical
//! sanity of the DCHVAC equations under arbitrary occupant states.

use proptest::prelude::*;

use shatter_dataset::{MinuteRecord, OccupantState};
use shatter_hvac::{
    AshraeController, Controller, ControllerParams, DchvacController, EnergyModel, OutdoorModel,
};
use shatter_smarthome::{houses, Activity, ZoneId};

fn arb_record() -> impl Strategy<Value = MinuteRecord> {
    let occ = (0usize..5, 0usize..27).prop_map(|(z, a)| OccupantState {
        zone: ZoneId(z),
        activity: Activity::ALL[a],
    });
    (
        prop::collection::vec(occ, 2..=2),
        prop::collection::vec(any::<bool>(), 13..=13),
    )
        .prop_map(|(occupants, appliances)| MinuteRecord {
            occupants,
            appliances,
        })
}

proptest! {
    /// Airflow is always within [0, max_zone_cfm] per zone and zero for
    /// unconditioned zones, for both controllers.
    #[test]
    fn airflow_bounds(rec in arb_record(), minute in 0u32..1440) {
        let home = houses::aras_house_a();
        let p = ControllerParams::default();
        let w = OutdoorModel::default();
        for ctl in [&DchvacController as &dyn Controller, &AshraeController::default()] {
            let d = ctl.control(&home, &rec, minute, &p, &w);
            for z in home.zones() {
                let q = d.zone_cfm[z.id.index()];
                prop_assert!((0.0..=p.max_zone_cfm).contains(&q));
                if !z.conditioned {
                    prop_assert_eq!(q, 0.0);
                }
                let f = d.fresh_fraction[z.id.index()];
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    /// Adding an occupant to a conditioned zone never reduces that zone's
    /// airflow under the demand-controlled policy.
    #[test]
    fn extra_occupant_monotonicity(rec in arb_record(), minute in 0u32..1440, act_i in 0usize..27) {
        let home = houses::aras_house_a();
        let p = ControllerParams::default();
        let w = OutdoorModel::default();
        // Base: occupant 0 pinned outside (so the variant strictly adds a
        // person to the livingroom).
        let mut base_rec = rec.clone();
        base_rec.occupants[0] = OccupantState {
            zone: ZoneId(0),
            activity: Activity::GoingOut,
        };
        let base = DchvacController.control(&home, &base_rec, minute, &p, &w);
        let mut more = base_rec.clone();
        more.occupants[0] = OccupantState {
            zone: ZoneId(2),
            activity: Activity::ALL[act_i],
        };
        let after = DchvacController.control(&home, &more, minute, &p, &w);
        prop_assert!(after.zone_cfm[2] >= base.zone_cfm[2] - 1e-9);
    }

    /// Energy accounting is non-negative and appliance energy matches the
    /// sum of running appliance wattages exactly.
    #[test]
    fn energy_accounting(rec in arb_record(), minute in 0u32..1440) {
        let home = houses::aras_house_a();
        let model = EnergyModel::standard(home.clone());
        let e = model.minute_energy(&DchvacController, &rec, minute);
        prop_assert!(e.hvac_kwh >= 0.0);
        let expect_w: f64 = rec
            .appliances
            .iter()
            .zip(home.appliances())
            .filter(|(&on, _)| on)
            .map(|(_, a)| a.power_watts)
            .sum();
        prop_assert!((e.appliance_kwh - expect_w / 60_000.0).abs() < 1e-12);
    }

    /// The ASHRAE baseline never ventilates a conditioned zone below its
    /// 62.1 floor.
    #[test]
    fn ashrae_respects_ventilation_floor(rec in arb_record(), minute in 0u32..1440) {
        let home = houses::aras_house_a();
        let p = ControllerParams::default();
        let w = OutdoorModel::default();
        let ctl = AshraeController::default();
        let d = ctl.control(&home, &rec, minute, &p, &w);
        for z in home.indoor_zones() {
            let occupancy = rec
                .occupants
                .iter()
                .filter(|o| o.zone == z.id)
                .count() as f64;
            let floor = ctl.cfm_per_person * occupancy
                + ctl.cfm_per_ft2 * z.volume_ft3 / ctl.ceiling_ft;
            let q = d.zone_cfm[z.id.index()];
            prop_assert!(
                q >= floor.min(p.max_zone_cfm) - 1e-9,
                "zone {} q {} < floor {}",
                z.name,
                q,
                floor
            );
        }
    }

    /// Marginal occupant cost rates are finite, non-negative, and zero
    /// only outside or for zero-load activity.
    #[test]
    fn cost_rates_sane(z in 0usize..5, a in 0usize..27, minute in 0u32..1440) {
        let model = EnergyModel::standard(houses::aras_house_a());
        let rate = model.occupant_cost_rate(
            shatter_smarthome::OccupantId(0),
            ZoneId(z),
            Activity::ALL[a],
            minute,
        );
        prop_assert!(rate.is_finite() && rate >= 0.0);
        if z == 0 {
            prop_assert_eq!(rate, 0.0);
        }
    }
}
