use shatter_dataset::{DayTrace, MinuteRecord};
use shatter_smarthome::{
    activity_pollutant_cfm, co2_emission_cfm, heat_radiation_watts, Activity, ApplianceId, Home,
    Minute, OccupantId, ZoneId,
};

use crate::controller::{cooling_cfm, ventilation_cfm, Controller, CFM_DT_TO_WATTS};
use crate::params::{ControllerParams, OutdoorModel, Pricing};

/// Energy drawn during one sampling slot (Eq. 3 split into its two terms).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MinuteEnergy {
    /// AHU thermal-equivalent electrical energy, kWh.
    pub hvac_kwh: f64,
    /// Appliance electrical energy, kWh.
    pub appliance_kwh: f64,
}

impl MinuteEnergy {
    /// Total energy for the slot.
    pub fn total_kwh(&self) -> f64 {
        self.hvac_kwh + self.appliance_kwh
    }
}

/// A day's energy/cost accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DayCost {
    /// Per-minute energy breakdown (1440 entries).
    pub minutes: Vec<MinuteEnergy>,
    /// Total HVAC cost in dollars (after battery peak-shaving).
    pub hvac_usd: f64,
    /// Total appliance cost in dollars.
    pub appliance_usd: f64,
}

impl DayCost {
    /// Total daily cost in dollars.
    pub fn total_usd(&self) -> f64 {
        self.hvac_usd + self.appliance_usd
    }

    /// Total daily energy in kWh.
    pub fn total_kwh(&self) -> f64 {
        self.minutes.iter().map(MinuteEnergy::total_kwh).sum()
    }
}

/// The home's energy/cost model: combines a [`Home`], controller
/// parameters, outdoor weather, and pricing into Eq. 3 / Eq. 4 evaluations.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    home: Home,
    /// Control-loop parameters.
    pub params: ControllerParams,
    /// Outdoor weather model.
    pub outdoor: OutdoorModel,
    /// Tariff and battery model.
    pub pricing: Pricing,
}

impl EnergyModel {
    /// Builds a model with the standard evaluation parameters.
    pub fn standard(home: Home) -> Self {
        EnergyModel {
            home,
            params: ControllerParams::default(),
            outdoor: OutdoorModel::default(),
            pricing: Pricing::default(),
        }
    }

    /// Builds a model with explicit parameters.
    pub fn new(
        home: Home,
        params: ControllerParams,
        outdoor: OutdoorModel,
        pricing: Pricing,
    ) -> Self {
        EnergyModel {
            home,
            params,
            outdoor,
            pricing,
        }
    }

    /// The modelled home.
    pub fn home(&self) -> &Home {
        &self.home
    }

    /// Energy drawn during one slot under a controller's decision (Eq. 3).
    ///
    /// The AHU conditions each zone's supply air from the mixed-air
    /// temperature `P^TM` (fresh fraction × outdoor + return fraction ×
    /// zone setpoint) down to the supply temperature.
    pub fn minute_energy(
        &self,
        controller: &dyn Controller,
        record: &MinuteRecord,
        minute: Minute,
    ) -> MinuteEnergy {
        let decision = controller.control(&self.home, record, minute, &self.params, &self.outdoor);
        let t_out = self.outdoor.temp_at(minute);
        let dt_min = self.params.sample_minutes;
        let mut hvac_w = 0.0;
        for z in self.home.zones() {
            let q = decision.zone_cfm[z.id.index()];
            if q <= 0.0 {
                continue;
            }
            let f = decision.fresh_fraction[z.id.index()];
            let t_mix = f * t_out + (1.0 - f) * self.params.zone_setpoint_f;
            let dt = (t_mix - self.params.supply_temp_f).max(0.0);
            hvac_w += q * dt * CFM_DT_TO_WATTS;
        }
        let appl_w: f64 = record
            .appliances
            .iter()
            .zip(self.home.appliances())
            .filter(|(&on, _)| on)
            .map(|(_, a)| a.power_watts)
            .sum();
        MinuteEnergy {
            hvac_kwh: hvac_w * dt_min / 60_000.0,
            appliance_kwh: appl_w * dt_min / 60_000.0,
        }
    }

    /// Full-day energy and cost under a controller (Eq. 3 + Eq. 4).
    pub fn day_cost(&self, controller: &dyn Controller, day: &DayTrace) -> DayCost {
        let mut out = DayCost {
            minutes: Vec::with_capacity(day.minutes.len()),
            ..DayCost::default()
        };
        let mut peak_kwh = 0.0;
        for (m, rec) in day.minutes.iter().enumerate() {
            let minute = m as Minute;
            let e = self.minute_energy(controller, rec, minute);
            if self.pricing.is_peak(minute) {
                peak_kwh += e.total_kwh();
            }
            let price = self.pricing.price_at(minute, peak_kwh);
            out.hvac_usd += e.hvac_kwh * price;
            out.appliance_usd += e.appliance_kwh * price;
            out.minutes.push(e);
        }
        out
    }

    /// Cost of every day in a dataset, in order.
    pub fn dataset_costs(&self, controller: &dyn Controller, days: &[DayTrace]) -> Vec<DayCost> {
        days.iter().map(|d| self.day_cost(controller, d)).collect()
    }

    /// Marginal HVAC cost rate ($/min, battery ignored) of one occupant
    /// performing `activity` in `zone` at `minute` under the
    /// activity-aware controller — the per-slot reward the attack
    /// scheduler maximizes (paper Eq. 17).
    pub fn occupant_cost_rate(
        &self,
        occupant: OccupantId,
        zone: ZoneId,
        activity: Activity,
        minute: Minute,
    ) -> f64 {
        if !self.home.zones()[zone.index()].conditioned {
            return 0.0;
        }
        let profile = self.home.occupants()[occupant.index()].metabolic_profile();
        let co2 = co2_emission_cfm(profile, activity) + activity_pollutant_cfm(activity);
        let heat = heat_radiation_watts(profile, activity);
        let vent = ventilation_cfm(co2, &self.params);
        let cool = cooling_cfm(heat, &self.params);
        let q = vent.max(cool).min(self.params.max_zone_cfm);
        let f = if q > 0.0 { (vent / q).min(1.0) } else { 0.0 };
        let t_out = self.outdoor.temp_at(minute);
        let t_mix = f * t_out + (1.0 - f) * self.params.zone_setpoint_f;
        let dt = (t_mix - self.params.supply_temp_f).max(0.0);
        let hvac_w = q * dt * CFM_DT_TO_WATTS;
        let kwh = hvac_w * self.params.sample_minutes / 60_000.0;
        kwh * self.pricing.price_at(minute, f64::INFINITY)
    }

    /// Marginal cost rate ($/min, battery ignored) of an appliance being
    /// on at `minute`: electrical draw plus the extra cooling airflow its
    /// heat forces.
    pub fn appliance_cost_rate(&self, appliance: ApplianceId, minute: Minute) -> f64 {
        let a = &self.home.appliances()[appliance.index()];
        let cool = cooling_cfm(a.heat_watts(), &self.params).min(self.params.max_zone_cfm);
        let t_out = self.outdoor.temp_at(minute);
        // Cooling air for appliance heat is pure return air (no CO₂ demand).
        let t_mix = self.params.zone_setpoint_f.min(t_out);
        let dt = (t_mix - self.params.supply_temp_f).max(0.0);
        let hvac_w = cool * dt * CFM_DT_TO_WATTS;
        let kwh = (hvac_w + a.power_watts) * self.params.sample_minutes / 60_000.0;
        kwh * self.pricing.price_at(minute, f64::INFINITY)
    }

    /// The most expensive activity an occupant can "perform" in a zone at a
    /// minute, with its cost rate — used by attack schedulers to pick the
    /// reported activity.
    pub fn best_activity_for(
        &self,
        occupant: OccupantId,
        zone: ZoneId,
        minute: Minute,
        plausible: &[Activity],
    ) -> Option<(Activity, f64)> {
        plausible
            .iter()
            .map(|&a| (a, self.occupant_cost_rate(occupant, zone, a, minute)))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AshraeController, DchvacController};
    use shatter_dataset::{synthesize, HouseSpec, OccupantState, SynthConfig};
    use shatter_smarthome::houses;

    fn model() -> EnergyModel {
        EnergyModel::standard(houses::aras_house_a())
    }

    #[test]
    fn hand_computed_minute_energy() {
        let m = model();
        // One occupant sleeping in the bedroom, nothing else.
        let rec = MinuteRecord {
            occupants: vec![
                OccupantState {
                    zone: ZoneId(1),
                    activity: Activity::Sleeping,
                },
                OccupantState {
                    zone: ZoneId(0),
                    activity: Activity::GoingOut,
                },
            ],
            appliances: vec![false; 13],
        };
        // Loads: co2 = 0.011 * 0.95 = 0.01045 cfm; heat = 63 * 0.95 = 59.85 W.
        // vent = 0.01045e6 / 380 = 27.5 CFM; cool = 59.85/(0.3167*17) = 11.1 CFM.
        // q = 27.5 (vent-dominated, fully fresh air).
        let e = m.minute_energy(&DchvacController, &rec, 0);
        let t_out = m.outdoor.temp_at(0);
        let expected_w = 27.5 * (t_out - 55.0) * 0.3167;
        assert!(
            (e.hvac_kwh - expected_w / 60_000.0).abs() < 1e-6,
            "got {} expected {}",
            e.hvac_kwh,
            expected_w / 60_000.0
        );
        assert_eq!(e.appliance_kwh, 0.0);
    }

    #[test]
    fn ashrae_costs_roughly_double_dchvac() {
        // Paper Fig. 3: proposed controller is ~48–53% cheaper.
        for (kind, seed) in [(HouseSpec::aras_a(), 3u64), (HouseSpec::aras_b(), 4)] {
            let home = kind.home.build();
            let m = EnergyModel::standard(home);
            let data = synthesize(&SynthConfig::new(kind.clone(), 5, seed));
            let dchvac: f64 = m
                .dataset_costs(&DchvacController, &data.days)
                .iter()
                .map(DayCost::total_usd)
                .sum();
            let ashrae: f64 = m
                .dataset_costs(&AshraeController::default(), &data.days)
                .iter()
                .map(DayCost::total_usd)
                .sum();
            let savings = 1.0 - dchvac / ashrae;
            assert!(
                (0.30..0.70).contains(&savings),
                "{kind:?}: savings {savings} (dchvac {dchvac}, ashrae {ashrae})"
            );
        }
    }

    #[test]
    fn benign_daily_cost_in_paper_range() {
        // Paper Fig. 3/10: single-digit dollars per day for House A.
        let m = model();
        let data = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 5, 9));
        for d in m.dataset_costs(&DchvacController, &data.days) {
            let usd = d.total_usd();
            assert!((1.0..15.0).contains(&usd), "daily cost {usd}");
        }
    }

    #[test]
    fn kitchen_is_most_rewarding_zone() {
        // The case study quotes the kitchen as the highest-cost zone for
        // both HVAC control and appliance triggering.
        let m = model();
        let busy = Activity::PreparingDinner;
        let kitchen = m.occupant_cost_rate(OccupantId(0), ZoneId(3), busy, 1100);
        for (z, act) in [
            (ZoneId(1), Activity::Sleeping),
            (ZoneId(2), Activity::WatchingTv),
        ] {
            let other = m.occupant_cost_rate(OccupantId(0), z, act, 1100);
            assert!(kitchen > other);
        }
    }

    #[test]
    fn outside_zone_costs_nothing() {
        let m = model();
        assert_eq!(
            m.occupant_cost_rate(OccupantId(0), ZoneId(0), Activity::GoingOut, 600),
            0.0
        );
    }

    #[test]
    fn appliance_rate_scales_with_power() {
        let m = model();
        let home = houses::aras_house_a();
        let dryer = home
            .appliances()
            .iter()
            .position(|a| a.name == "Dryer")
            .unwrap();
        let tv = home
            .appliances()
            .iter()
            .position(|a| a.name == "Television")
            .unwrap();
        assert!(
            m.appliance_cost_rate(ApplianceId(dryer), 600)
                > m.appliance_cost_rate(ApplianceId(tv), 600)
        );
    }

    #[test]
    fn day_cost_consistent_with_minutes() {
        let m = model();
        let data = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 1, 2));
        let dc = m.day_cost(&DchvacController, &data.days[0]);
        assert_eq!(dc.minutes.len(), 1440);
        // Costs bounded by kWh × max price.
        let max_cost = dc.total_kwh() * m.pricing.peak_usd_per_kwh;
        let min_cost = dc.total_kwh() * m.pricing.offpeak_usd_per_kwh;
        let total = dc.total_usd();
        assert!(total <= max_cost + 1e-9 && total >= min_cost - 1e-9);
    }

    #[test]
    fn battery_reduces_peak_cost() {
        let home = houses::aras_house_a();
        let data = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 1, 2));
        let mut cheap = EnergyModel::standard(home.clone());
        cheap.pricing.battery_kwh = 5.0;
        let mut none = EnergyModel::standard(home);
        none.pricing.battery_kwh = 0.0;
        let with_batt = cheap.day_cost(&DchvacController, &data.days[0]).total_usd();
        let without = none.day_cost(&DchvacController, &data.days[0]).total_usd();
        assert!(with_batt < without);
    }
}
