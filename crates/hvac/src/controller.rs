use shatter_dataset::MinuteRecord;
use shatter_smarthome::{
    activity_pollutant_cfm, co2_emission_cfm, heat_radiation_watts, Home, Minute, ZoneId,
};

use crate::params::{ControllerParams, OutdoorModel};

/// CFM × ΔT(°F) → watts conversion factor (the paper's 0.3167 constant:
/// 1.08 BTU/h per CFM·°F ≈ 0.3167 W).
pub(crate) const CFM_DT_TO_WATTS: f64 = 0.3167;

/// Per-minute actuation decided by a controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// Total supply airflow per zone (CFM), indexed by zone id.
    pub zone_cfm: Vec<f64>,
    /// Fresh (outside) air fraction of each zone's supply airflow in
    /// `[0, 1]`; the rest is recirculated return air.
    pub fresh_fraction: Vec<f64>,
}

impl ControlDecision {
    /// Airflow for one zone.
    pub fn cfm(&self, zone: ZoneId) -> f64 {
        self.zone_cfm[zone.index()]
    }

    /// Total supply airflow across zones.
    pub fn total_cfm(&self) -> f64 {
        self.zone_cfm.iter().sum()
    }
}

/// A demand-controlled HVAC controller: maps the current home state to an
/// airflow decision.
///
/// Implementations receive the (possibly attacker-falsified) sensor view of
/// the home: per-occupant zone/activity and appliance on/off states.
pub trait Controller {
    /// Computes the actuation for one sampling slot.
    fn control(
        &self,
        home: &Home,
        record: &MinuteRecord,
        minute: Minute,
        params: &ControllerParams,
        outdoor: &OutdoorModel,
    ) -> ControlDecision;
}

/// Per-zone thermal and CO₂ loads as seen through the sensors.
#[derive(Debug, Clone, Default)]
pub(crate) struct ZoneLoads {
    /// Occupant CO₂ generation, ft³/min.
    pub co2_cfm: f64,
    /// Occupant metabolic + appliance sensible heat, watts.
    pub heat_watts: f64,
    /// Occupant head-count.
    pub occupancy: usize,
}

pub(crate) fn zone_loads(home: &Home, record: &MinuteRecord) -> Vec<ZoneLoads> {
    let mut loads = vec![ZoneLoads::default(); home.zones().len()];
    for (o, os) in record.occupants.iter().enumerate() {
        let zl = &mut loads[os.zone.index()];
        let profile = home.occupants()[o].metabolic_profile();
        zl.co2_cfm += co2_emission_cfm(profile, os.activity) + activity_pollutant_cfm(os.activity);
        zl.heat_watts += heat_radiation_watts(profile, os.activity);
        zl.occupancy += 1;
    }
    for (d, &on) in record.appliances.iter().enumerate() {
        if on {
            let a = &home.appliances()[d];
            loads[a.zone.index()].heat_watts += a.heat_watts();
        }
    }
    loads
}

/// Computes the fresh airflow needed to hold the CO₂ setpoint at steady
/// state (Eq. 1): generation is diluted by fresh air at the outdoor
/// concentration, `E × 10⁶ = Q_vent × (C_set − C_out)`.
pub(crate) fn ventilation_cfm(co2_gen_cfm: f64, params: &ControllerParams) -> f64 {
    let delta_ppm = params.co2_setpoint_ppm - params.outdoor_co2_ppm;
    if delta_ppm <= 0.0 {
        return 0.0;
    }
    co2_gen_cfm * 1.0e6 / delta_ppm
}

/// Computes the supply airflow needed to remove a sensible heat load at the
/// zone setpoint (Eq. 2): `Q × (T_set − T_supply) × 0.3167 = heat_watts`.
pub(crate) fn cooling_cfm(heat_watts: f64, params: &ControllerParams) -> f64 {
    let dt = params.zone_setpoint_f - params.supply_temp_f;
    if dt <= 0.0 {
        return 0.0;
    }
    heat_watts / (CFM_DT_TO_WATTS * dt)
}

/// The paper's activity-aware demand-controlled HVAC controller.
///
/// For each zone it sizes airflow as the maximum of the ventilation
/// requirement (Eq. 1) and the cooling requirement (Eq. 2), using the
/// occupants' *actual activities* (metabolic rates) and the *actual
/// appliance states* (dynamic load modelling) — the three efficiency levers
/// of paper §II.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DchvacController;

impl Controller for DchvacController {
    fn control(
        &self,
        home: &Home,
        record: &MinuteRecord,
        _minute: Minute,
        params: &ControllerParams,
        _outdoor: &OutdoorModel,
    ) -> ControlDecision {
        let loads = zone_loads(home, record);
        let mut zone_cfm = vec![0.0; home.zones().len()];
        let mut fresh_fraction = vec![0.0; home.zones().len()];
        for z in home.zones() {
            if !z.conditioned {
                continue;
            }
            let zl = &loads[z.id.index()];
            let vent = ventilation_cfm(zl.co2_cfm, params);
            let cool = cooling_cfm(zl.heat_watts, params);
            let q = vent.max(cool).min(params.max_zone_cfm);
            zone_cfm[z.id.index()] = q;
            fresh_fraction[z.id.index()] = if q > 0.0 { (vent / q).min(1.0) } else { 0.0 };
        }
        ControlDecision {
            zone_cfm,
            fresh_fraction,
        }
    }
}

/// ASHRAE-style baseline controller (the BIoTA world model).
///
/// Differences from [`DchvacController`], per paper §II:
///
/// 1. occupants are modelled at a fixed average metabolic rate instead of
///    their actual activity,
/// 2. appliance load is a fixed historical average per zone at every
///    control cycle instead of the live appliance states,
/// 3. ventilation never drops below the ASHRAE 62.1 floor
///    (per-person + per-area minimum), even for empty zones.
#[derive(Debug, Clone, PartialEq)]
pub struct AshraeController {
    /// Average metabolic rate assumed for every occupant (MET).
    pub average_met: f64,
    /// Duty factor applied to each zone's installed appliance wattage to
    /// form the fixed average load.
    pub appliance_duty: f64,
    /// Minimum outdoor air per person (CFM).
    pub cfm_per_person: f64,
    /// Minimum outdoor air per square foot of floor area (CFM/ft²),
    /// applied to `volume / ceiling_height`.
    pub cfm_per_ft2: f64,
    /// Assumed ceiling height (ft) for converting volume to floor area.
    pub ceiling_ft: f64,
}

impl Default for AshraeController {
    fn default() -> Self {
        AshraeController {
            average_met: 1.6,
            appliance_duty: 0.15,
            cfm_per_person: 7.5,
            cfm_per_ft2: 0.09,
            ceiling_ft: 8.0,
        }
    }
}

impl Controller for AshraeController {
    fn control(
        &self,
        home: &Home,
        record: &MinuteRecord,
        _minute: Minute,
        params: &ControllerParams,
        _outdoor: &OutdoorModel,
    ) -> ControlDecision {
        let loads = zone_loads(home, record);
        let mut zone_cfm = vec![0.0; home.zones().len()];
        let mut fresh_fraction = vec![0.0; home.zones().len()];
        for z in home.zones() {
            if !z.conditioned {
                continue;
            }
            let occupancy = loads[z.id.index()].occupancy as f64;
            // (1) average-rate occupant loads.
            let co2 = occupancy * 0.011 * self.average_met;
            let heat_occ = occupancy * 63.0 * self.average_met;
            // (2) fixed average appliance load, on or off.
            let installed: f64 = home.appliances_in(z.id).map(|a| a.heat_watts()).sum();
            let heat = heat_occ + installed * self.appliance_duty;
            // (3) ASHRAE 62.1 ventilation floor.
            let floor_area = z.volume_ft3 / self.ceiling_ft;
            let vent_floor = self.cfm_per_person * occupancy + self.cfm_per_ft2 * floor_area;
            let vent = super::controller::ventilation_cfm(co2, params).max(vent_floor);
            let cool = cooling_cfm(heat, params);
            let q = vent.max(cool).min(params.max_zone_cfm);
            zone_cfm[z.id.index()] = q;
            fresh_fraction[z.id.index()] = if q > 0.0 { (vent / q).min(1.0) } else { 0.0 };
        }
        ControlDecision {
            zone_cfm,
            fresh_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shatter_dataset::OccupantState;
    use shatter_smarthome::{houses, Activity};

    fn record(home: &Home, states: Vec<OccupantState>) -> MinuteRecord {
        MinuteRecord {
            occupants: states,
            appliances: vec![false; home.appliances().len()],
        }
    }

    fn everyone_out(home: &Home) -> MinuteRecord {
        record(
            home,
            vec![
                OccupantState {
                    zone: ZoneId(0),
                    activity: Activity::GoingOut,
                };
                home.occupants().len()
            ],
        )
    }

    #[test]
    fn empty_home_needs_no_airflow_under_dchvac() {
        let home = houses::aras_house_a();
        let d = DchvacController.control(
            &home,
            &everyone_out(&home),
            600,
            &ControllerParams::default(),
            &OutdoorModel::default(),
        );
        assert_eq!(d.total_cfm(), 0.0);
    }

    #[test]
    fn ashrae_ventilates_empty_home() {
        let home = houses::aras_house_a();
        let d = AshraeController::default().control(
            &home,
            &everyone_out(&home),
            600,
            &ControllerParams::default(),
            &OutdoorModel::default(),
        );
        assert!(d.total_cfm() > 0.0, "62.1 floor applies to empty zones");
    }

    #[test]
    fn more_intense_activity_needs_more_air() {
        let home = houses::aras_house_a();
        let p = ControllerParams::default();
        let w = OutdoorModel::default();
        let mk = |act: Activity| {
            record(
                &home,
                vec![
                    OccupantState {
                        zone: ZoneId(2),
                        activity: act,
                    },
                    OccupantState {
                        zone: ZoneId(0),
                        activity: Activity::GoingOut,
                    },
                ],
            )
        };
        let calm = DchvacController.control(&home, &mk(Activity::ReadingBook), 600, &p, &w);
        let busy = DchvacController.control(&home, &mk(Activity::Cleaning), 600, &p, &w);
        assert!(busy.cfm(ZoneId(2)) > calm.cfm(ZoneId(2)));
    }

    #[test]
    fn appliance_heat_raises_cooling_airflow() {
        let home = houses::aras_house_a();
        let p = ControllerParams::default();
        let w = OutdoorModel::default();
        let mut rec = record(
            &home,
            vec![
                OccupantState {
                    zone: ZoneId(4),
                    activity: Activity::Shaving,
                },
                OccupantState {
                    zone: ZoneId(0),
                    activity: Activity::GoingOut,
                },
            ],
        );
        let base = DchvacController.control(&home, &rec, 1100, &p, &w);
        // Turn on the hair dryer (1800 W × 0.6 heat fraction).
        let dryer = home
            .appliances()
            .iter()
            .position(|a| a.name == "Hair Dryer")
            .unwrap();
        rec.appliances[dryer] = true;
        let with_dryer = DchvacController.control(&home, &rec, 1100, &p, &w);
        assert!(with_dryer.cfm(ZoneId(4)) > base.cfm(ZoneId(4)));
    }

    #[test]
    fn airflow_clamped_to_vav_limit() {
        let home = houses::aras_house_a();
        let p = ControllerParams::default();
        let w = OutdoorModel::default();
        // Absurd load: 2 occupants cleaning + all kitchen appliances on.
        let mut rec = record(
            &home,
            vec![
                OccupantState {
                    zone: ZoneId(3),
                    activity: Activity::Cleaning,
                },
                OccupantState {
                    zone: ZoneId(3),
                    activity: Activity::Cleaning,
                },
            ],
        );
        for (i, a) in home.appliances().iter().enumerate() {
            if a.zone == ZoneId(3) {
                rec.appliances[i] = true;
            }
        }
        let d = DchvacController.control(&home, &rec, 600, &p, &w);
        assert!(d.cfm(ZoneId(3)) <= p.max_zone_cfm);
    }

    #[test]
    fn fresh_fraction_bounded() {
        let home = houses::aras_house_a();
        let p = ControllerParams::default();
        let w = OutdoorModel::default();
        let rec = record(
            &home,
            vec![
                OccupantState {
                    zone: ZoneId(1),
                    activity: Activity::Sleeping,
                },
                OccupantState {
                    zone: ZoneId(1),
                    activity: Activity::Sleeping,
                },
            ],
        );
        for c in [
            &DchvacController as &dyn Controller,
            &AshraeController::default(),
        ] {
            let d = c.control(&home, &rec, 200, &p, &w);
            for f in &d.fresh_fraction {
                assert!((0.0..=1.0).contains(f));
            }
        }
    }
}
