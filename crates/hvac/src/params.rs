use shatter_smarthome::Minute;

/// Fixed control-loop parameters (paper Table II "Variable/Fixed
/// Parameters").
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerParams {
    /// Zone CO₂ setpoint `P^CS` in ppm.
    pub co2_setpoint_ppm: f64,
    /// Outdoor CO₂ concentration `P^OC` in ppm.
    pub outdoor_co2_ppm: f64,
    /// Supply-air temperature `P^TSP` in °F (constant cold-deck).
    pub supply_temp_f: f64,
    /// Zone temperature setpoint `P^TS` in °F.
    pub zone_setpoint_f: f64,
    /// Per-zone maximum supply airflow in CFM (VAV box limit).
    pub max_zone_cfm: f64,
    /// Controller sampling period `Δt` in minutes.
    pub sample_minutes: f64,
}

impl Default for ControllerParams {
    fn default() -> Self {
        ControllerParams {
            co2_setpoint_ppm: 800.0,
            outdoor_co2_ppm: 420.0,
            supply_temp_f: 55.0,
            zone_setpoint_f: 72.0,
            max_zone_cfm: 900.0,
            sample_minutes: 1.0,
        }
    }
}

/// Diurnal outdoor-weather model: a sinusoid peaking mid-afternoon.
///
/// The paper assumes a cooling-dominated climate (the attack goal is to
/// force *more* supply air); the default peaks at 93 °F around 15:00.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutdoorModel {
    /// Daily mean outdoor temperature in °F.
    pub mean_temp_f: f64,
    /// Half peak-to-trough amplitude in °F.
    pub amplitude_f: f64,
    /// Minute of day at which temperature peaks.
    pub peak_minute: f64,
}

impl Default for OutdoorModel {
    fn default() -> Self {
        OutdoorModel {
            mean_temp_f: 84.0,
            amplitude_f: 9.0,
            peak_minute: 900.0, // 15:00
        }
    }
}

impl OutdoorModel {
    /// Outdoor temperature `P^OT_t` at a minute of day.
    pub fn temp_at(&self, minute: Minute) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (minute as f64 - self.peak_minute) / 1440.0;
        self.mean_temp_f + self.amplitude_f * phase.cos()
    }
}

/// Time-of-use energy pricing with battery peak-shaving (paper Eq. 4).
///
/// The home battery is charged during off-peak hours (assumed full at the
/// start of each peak window) and discharges during peak hours, so the
/// first [`Pricing::battery_kwh`] of peak consumption each day is billed at
/// the off-peak rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// Off-peak rate `P^COP` in $/kWh.
    pub offpeak_usd_per_kwh: f64,
    /// Peak rate `P^CP` in $/kWh.
    pub peak_usd_per_kwh: f64,
    /// First minute of the peak window (inclusive).
    pub peak_start: Minute,
    /// Last minute of the peak window (exclusive).
    pub peak_end: Minute,
    /// Battery storage `P^BS` in kWh.
    pub battery_kwh: f64,
}

impl Default for Pricing {
    fn default() -> Self {
        // PG&E residential TOU shape: peak 16:00–21:00.
        Pricing {
            offpeak_usd_per_kwh: 0.31,
            peak_usd_per_kwh: 0.42,
            peak_start: 960,
            peak_end: 1260,
            battery_kwh: 1.5,
        }
    }
}

impl Pricing {
    /// Whether a minute falls in the peak window.
    pub fn is_peak(&self, minute: Minute) -> bool {
        (self.peak_start..self.peak_end).contains(&minute)
    }

    /// Price in $/kWh for consumption at `minute`, given the cumulative
    /// peak-window energy (kWh) already drawn today. Peak consumption up to
    /// the battery capacity is served at the off-peak rate (Eq. 4).
    pub fn price_at(&self, minute: Minute, peak_kwh_so_far: f64) -> f64 {
        if self.is_peak(minute) && peak_kwh_so_far > self.battery_kwh {
            self.peak_usd_per_kwh
        } else {
            self.offpeak_usd_per_kwh
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outdoor_peaks_at_configured_minute() {
        let w = OutdoorModel::default();
        let at_peak = w.temp_at(900);
        assert!(at_peak > w.temp_at(300));
        assert!((at_peak - (w.mean_temp_f + w.amplitude_f)).abs() < 1e-9);
    }

    #[test]
    fn outdoor_always_above_supply_temp() {
        let w = OutdoorModel::default();
        let p = ControllerParams::default();
        for m in 0..1440u32 {
            assert!(w.temp_at(m) > p.supply_temp_f);
        }
    }

    #[test]
    fn pricing_peak_window() {
        let p = Pricing::default();
        assert!(!p.is_peak(959));
        assert!(p.is_peak(960));
        assert!(p.is_peak(1259));
        assert!(!p.is_peak(1260));
    }

    #[test]
    fn battery_shaves_initial_peak_energy() {
        let p = Pricing::default();
        assert_eq!(p.price_at(1000, 0.0), p.offpeak_usd_per_kwh);
        assert_eq!(p.price_at(1000, 2.0), p.peak_usd_per_kwh);
        assert_eq!(p.price_at(100, 99.0), p.offpeak_usd_per_kwh);
    }
}
