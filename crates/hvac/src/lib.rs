//! Demand-controlled HVAC (DCHVAC) substrate for SHATTER.
//!
//! Implements the paper's control model (§IV-A):
//!
//! - **Ventilation constraint (Eq. 1)** — fresh airflow sized so occupant
//!   CO₂ generation is diluted to the zone setpoint,
//! - **Temperature constraint (Eq. 2)** — supply airflow sized so delivered
//!   cooling (`Q × ΔT × 0.3167` watts) matches occupant metabolic heat plus
//!   appliance heat (`P^PC_d × P^HRF_d`),
//! - **Energy (Eq. 3)** — AHU thermal power against mixed (return + fresh)
//!   air plus appliance electrical load,
//! - **Cost (Eq. 4)** — PG&E-style peak/off-peak pricing with a home
//!   battery that shifts the first `P^BS` peak kWh to the off-peak rate.
//!
//! Two controllers are provided: the paper's activity-aware
//! [`DchvacController`] and the [`AshraeController`] baseline
//! (average-occupant metabolic rate, fixed average appliance load,
//! floor-area minimum ventilation), whose cost gap reproduces paper Fig. 3.
//!
//! # Examples
//!
//! ```
//! use shatter_dataset::{synthesize, HouseSpec, SynthConfig};
//! use shatter_hvac::{DchvacController, EnergyModel};
//! use shatter_smarthome::houses;
//!
//! let home = houses::aras_house_a();
//! let data = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 1, 7));
//! let model = EnergyModel::standard(home);
//! let cost = model.day_cost(&DchvacController, &data.days[0]);
//! assert!(cost.total_usd() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod energy;
mod params;

pub use controller::{AshraeController, ControlDecision, Controller, DchvacController};
pub use energy::{DayCost, EnergyModel, MinuteEnergy};
pub use params::{ControllerParams, OutdoorModel, Pricing};
