//! The workspace's single FNV-1a 64-bit implementation.
//!
//! Every content address in the system — journal record file names,
//! blob addresses, fixture cache keys, memo shard selection, fleet
//! config signatures, scenario seeds — ultimately routes through this
//! hash. It used to be duplicated in four crates; the pin tests below
//! freeze the exact values so consolidating (or any future edit) can
//! never silently re-address existing on-disk records.

/// FNV-1a offset basis (64-bit).
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a hash of a byte string.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a hash of a string's UTF-8 bytes.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a 64-bit test vectors plus workspace-specific
    /// strings. These values are load-bearing: they address records
    /// already on disk in users' journal/store directories. If this
    /// test fails, the hash changed and every existing cache key,
    /// record address and config signature just moved — do not
    /// "fix" the expected values, fix the hash.
    #[test]
    fn pinned_hash_values() {
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_bytes(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a_str("chongo was here!\n"), 0x46810940eff5f915);
        // Workspace-shaped keys (journal record + memo prefix idioms).
        assert_eq!(fnv1a_str("house/000007"), 0xeef9_2ce6_6265_0729);
        assert_eq!(fnv1a_str("smtw/h5/30/0/db/rt/0"), 0x6cf8_0a73_d6f9_142a);
    }

    #[test]
    fn str_and_bytes_agree() {
        assert_eq!(fnv1a_str("fleet-v1"), fnv1a_bytes(b"fleet-v1"));
    }
}
