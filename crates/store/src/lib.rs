//! `shatter-store` — a durable, content-addressed result journal for
//! crash-safe fleet evaluation.
//!
//! A [`Journal`] is a directory of independent per-record files. Each
//! record is keyed by a caller-chosen content address (fleet runs use
//! `HouseFixture::cache_key()`-derived keys) and written via the only
//! crash-safe primitive POSIX gives us: write to a unique temp file in
//! the same directory, then `rename` onto the final name. A `kill -9`
//! at any instant therefore leaves either no record or a complete one —
//! except for hardware-level torn writes, which the per-record FNV-1a
//! checksum catches on open. Damaged or foreign records are counted,
//! deleted and recomputed; they are never trusted.
//!
//! Record file format (`r{fnv1a(key):016x}.rec`):
//!
//! ```text
//! SHATTERJ1 {config_sig:016x} {payload_len} {payload_fnv:016x}\n
//! {key}\n
//! {payload bytes}
//! ```
//!
//! `config_sig` binds every record to the run configuration that
//! produced it (fleet size, days, span, seed, budget ...), so a journal
//! can never replay rows into a run with different parameters. The
//! companion [`write_manifest`]/[`read_manifest`] pair persists those
//! parameters in human-readable `key=value` form (also via tmp+rename)
//! so `repro --resume <dir>` can reconstruct the exact original
//! configuration from the directory alone.
//!
//! Writes consult the `store.write` fault-injection site
//! (`shatter-faults`): an injected `io` fault simulates a torn write
//! (truncated record bytes at the final path — exactly what the
//! checksum must catch), an injected `panic` simulates a process crash
//! mid-fleet.
//!
//! The same record format, reused with magic `SHATTERB1` and lazy
//! per-read validation, backs the [`BlobStore`] — the disk tier under
//! the engine's `FixtureCache` (see [`blob`]). Typed payloads travel
//! through the explicit [`wire`] codec via the [`Blob`] trait, and
//! every content address in the workspace uses the single FNV-1a
//! implementation in [`fnv`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use shatter_faults::FaultKind;

pub mod blob;
pub mod fnv;
pub mod wire;

pub use blob::{Blob, BlobStats, BlobStore};
pub use fnv::{fnv1a_bytes, fnv1a_str};

/// Magic tag opening every journal record file; the trailing `1` is
/// the format version.
const MAGIC: &str = "SHATTERJ1";

/// Name of the run-manifest file inside a journal directory.
pub const MANIFEST_NAME: &str = "manifest.txt";

/// Counters describing a journal's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Valid records loaded when the journal was opened.
    pub loaded: u64,
    /// Damaged / foreign / stale records discarded (and deleted) on open.
    pub discarded: u64,
    /// `get` calls served from the journal since open.
    pub hits: u64,
    /// Records durably written since open.
    pub writes: u64,
    /// Writes torn by an injected `io` fault (the bytes hit the final
    /// path truncated, to be discarded by the next open).
    pub torn: u64,
}

/// An open append-only journal of `key -> payload` records under one
/// configuration signature. Internally synchronized: parallel fleet
/// workers share one journal through `&Journal`.
pub struct Journal {
    dir: PathBuf,
    config_sig: u64,
    records: Mutex<HashMap<String, Vec<u8>>>,
    loaded: u64,
    discarded: u64,
    hits: AtomicU64,
    writes: AtomicU64,
    torn: AtomicU64,
    tmp_counter: AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) the journal at `dir`, validating every
    /// existing record against the format, its checksum and
    /// `config_sig`. Damaged, foreign or differently-configured records
    /// are deleted and counted in [`JournalStats::discarded`]; stale
    /// temp files from a crashed writer are removed silently.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or scanning the directory.
    pub fn open(dir: &Path, config_sig: u64) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let mut records = HashMap::new();
        let mut loaded = 0u64;
        let mut discarded = 0u64;
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        // Deterministic scan order (discard counts must not depend on
        // directory iteration order).
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".tmp") {
                // A writer died between create and rename; the final
                // name was never linked, so this is pure garbage.
                fs::remove_file(&path).ok();
                continue;
            }
            if !name.starts_with('r') || !name.ends_with(".rec") {
                continue;
            }
            match parse_record(&path, MAGIC, config_sig, record_file_name) {
                Some((key, payload)) => {
                    records.insert(key, payload);
                    loaded += 1;
                }
                None => {
                    discarded += 1;
                    fs::remove_file(&path).ok();
                }
            }
        }
        Ok(Journal {
            dir: dir.to_path_buf(),
            config_sig,
            records: Mutex::new(records),
            loaded,
            discarded,
            hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// Directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Configuration signature the journal is bound to.
    pub fn config_sig(&self) -> u64 {
        self.config_sig
    }

    /// Number of records currently held (loaded + written).
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload recorded for `key`, if a valid record survived.
    /// Counts a journal hit when found.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let found = self
            .records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Durably records `payload` under `key`: full bytes to a unique
    /// temp file, `sync_all`, then an atomic rename onto
    /// `r{fnv1a(key):016x}.rec`. Re-putting a key overwrites its record.
    ///
    /// Fault site `store.write` (consulted before any bytes move):
    /// `panic` unwinds here (a reproducible mid-fleet crash), `io`
    /// simulates a torn write — truncated record bytes are placed at the
    /// *final* path, which the next [`Journal::open`] must discard. The
    /// torn record is not served by this journal instance either.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write, sync or rename.
    pub fn put(&self, key: &str, payload: &[u8]) -> io::Result<()> {
        let bytes = encode_record(MAGIC, self.config_sig, key, payload);
        let final_path = self.dir.join(record_file_name(key));
        match shatter_faults::hit("store.write") {
            Some(FaultKind::Panic) => shatter_faults::panic_now("store.write"),
            Some(FaultKind::Io) => {
                // Torn write: half the record lands at the final path
                // with no rename barrier — the worst case a real crash
                // plus reordered writeback can produce.
                let torn = &bytes[..bytes.len() / 2];
                fs::write(&final_path, torn)?;
                self.torn.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            // The journal has no solver budget to exhaust; the other
            // kinds just skip the write (a lost record, recomputed on
            // resume).
            Some(FaultKind::Overflow) | Some(FaultKind::Budget) => return Ok(()),
            None => {}
        }
        let tmp = self.dir.join(format!(
            "w{}-{:x}.tmp",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_string(), payload.to_vec());
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes the run manifest (`key=value` lines) into the journal
    /// directory via tmp+rename.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or rename.
    pub fn write_manifest(&self, entries: &[(String, String)]) -> io::Result<()> {
        let mut body = String::new();
        for (k, v) in entries {
            body.push_str(&format!("{k}={v}\n"));
        }
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(MANIFEST_NAME))
    }

    /// Current counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            loaded: self.loaded,
            discarded: self.discarded,
            hits: self.hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
        }
    }
}

/// File name addressing `key`'s record.
fn record_file_name(key: &str) -> String {
    format!("r{:016x}.rec", fnv1a_bytes(key.as_bytes()))
}

/// Serializes one record (shared by [`Journal`] and [`BlobStore`];
/// the magic distinguishes the two on disk).
pub(crate) fn encode_record(magic: &str, config_sig: u64, key: &str, payload: &[u8]) -> Vec<u8> {
    let mut bytes = format!(
        "{magic} {config_sig:016x} {} {:016x}\n{key}\n",
        payload.len(),
        fnv1a_bytes(payload)
    )
    .into_bytes();
    bytes.extend_from_slice(payload);
    bytes
}

/// Validates and decodes one record file; `None` means damaged /
/// foreign / differently-configured (caller discards).
pub(crate) fn parse_record(
    path: &Path,
    magic: &str,
    config_sig: u64,
    file_name_for: fn(&str) -> String,
) -> Option<(String, Vec<u8>)> {
    let bytes = fs::read(path).ok()?;
    let header_end = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..header_end]).ok()?;
    let mut parts = header.split(' ');
    if parts.next()? != magic {
        return None;
    }
    let sig = u64::from_str_radix(parts.next()?, 16).ok()?;
    if sig != config_sig {
        return None;
    }
    let payload_len: usize = parts.next()?.parse().ok()?;
    let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    let rest = &bytes[header_end + 1..];
    let key_end = rest.iter().position(|&b| b == b'\n')?;
    let key = std::str::from_utf8(&rest[..key_end]).ok()?.to_string();
    let payload = &rest[key_end + 1..];
    // Exact length: a truncated *or* over-long payload is damage.
    if payload.len() != payload_len || fnv1a_bytes(payload) != checksum {
        return None;
    }
    // The file must sit at its key's content address (a copied or
    // renamed record is foreign).
    if path.file_name().and_then(|n| n.to_str()) != Some(file_name_for(&key).as_str()) {
        return None;
    }
    Some((key, payload.to_vec()))
}

/// Reads a journal directory's manifest back as ordered `(key, value)`
/// pairs.
///
/// # Errors
///
/// Returns the underlying I/O error (e.g. no manifest — not a resumable
/// journal).
pub fn read_manifest(dir: &Path) -> io::Result<Vec<(String, String)>> {
    let body = fs::read_to_string(dir.join(MANIFEST_NAME))?;
    Ok(body
        .lines()
        .filter_map(|line| {
            let (k, v) = line.split_once('=')?;
            Some((k.to_string(), v.to_string()))
        })
        .collect())
}

/// Convenience over [`read_manifest`] output: the value at `key`.
pub fn manifest_value<'a>(entries: &'a [(String, String)], key: &str) -> Option<&'a str> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shatter-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let j = Journal::open(&dir, 7).unwrap();
            j.put("house/a", b"1\t2\t3").unwrap();
            j.put("house/b", b"x").unwrap();
            assert_eq!(j.stats().writes, 2);
            assert_eq!(j.get("house/a").as_deref(), Some(b"1\t2\t3".as_slice()));
            assert_eq!(j.stats().hits, 1);
        }
        let j = Journal::open(&dir, 7).unwrap();
        assert_eq!(j.stats().loaded, 2);
        assert_eq!(j.stats().discarded, 0);
        assert_eq!(j.get("house/b").as_deref(), Some(b"x".as_slice()));
        assert_eq!(j.get("house/missing"), None);
        assert_eq!(j.stats().hits, 1, "a miss is not a hit");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reput_overwrites() {
        let dir = tmp_dir("overwrite");
        let j = Journal::open(&dir, 1).unwrap();
        j.put("k", b"old").unwrap();
        j.put("k", b"new").unwrap();
        assert_eq!(j.len(), 1);
        let j2 = Journal::open(&dir, 1).unwrap();
        assert_eq!(j2.get("k").as_deref(), Some(b"new".as_slice()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_record_is_discarded_on_open() {
        let dir = tmp_dir("truncate");
        {
            let j = Journal::open(&dir, 3).unwrap();
            j.put("keep", b"payload-that-survives").unwrap();
            j.put("torn", b"payload-that-gets-torn").unwrap();
        }
        // Tear the second record mid-payload, as a crashed writeback
        // would.
        let torn_path = dir.join(record_file_name("torn"));
        let bytes = fs::read(&torn_path).unwrap();
        fs::write(&torn_path, &bytes[..bytes.len() - 7]).unwrap();
        let j = Journal::open(&dir, 3).unwrap();
        let stats = j.stats();
        assert_eq!((stats.loaded, stats.discarded), (1, 1));
        assert_eq!(
            j.get("keep").as_deref(),
            Some(b"payload-that-survives".as_slice())
        );
        assert_eq!(j.get("torn"), None);
        assert!(!torn_path.exists(), "damaged record must be deleted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_checksum_byte_is_discarded_on_open() {
        let dir = tmp_dir("checksum");
        {
            let j = Journal::open(&dir, 3).unwrap();
            j.put("bitrot", b"payload").unwrap();
        }
        let path = dir.join(record_file_name("bitrot"));
        let mut bytes = fs::read(&path).unwrap();
        // Flip one byte inside the checksum field of the header.
        let cksum_pos = MAGIC.len() + 1 + 16 + 1 + 1 + 1 + 3;
        bytes[cksum_pos] = if bytes[cksum_pos] == b'0' { b'1' } else { b'0' };
        fs::write(&path, &bytes).unwrap();
        let j = Journal::open(&dir, 3).unwrap();
        assert_eq!(j.stats().discarded, 1);
        assert_eq!(j.get("bitrot"), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_config_sig_is_discarded() {
        let dir = tmp_dir("config-sig");
        {
            let j = Journal::open(&dir, 1).unwrap();
            j.put("k", b"v").unwrap();
        }
        let j = Journal::open(&dir, 2).unwrap();
        assert_eq!(j.stats().loaded, 0);
        assert_eq!(j.stats().discarded, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_files_are_cleaned_up() {
        let dir = tmp_dir("stale-tmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("w123-0.tmp"), b"half a reco").unwrap();
        let j = Journal::open(&dir, 1).unwrap();
        let stats = j.stats();
        assert_eq!((stats.loaded, stats.discarded), (0, 0));
        assert!(!dir.join("w123-0.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = tmp_dir("manifest");
        let j = Journal::open(&dir, 9).unwrap();
        j.write_manifest(&[
            ("fleet".into(), "8".into()),
            ("days".into(), "3".into()),
            ("config_sig".into(), format!("{:016x}", 9u64)),
        ])
        .unwrap();
        let entries = read_manifest(&dir).unwrap();
        assert_eq!(manifest_value(&entries, "fleet"), Some("8"));
        assert_eq!(manifest_value(&entries, "days"), Some("3"));
        assert_eq!(manifest_value(&entries, "missing"), None);
        assert!(read_manifest(&tmp_dir("manifest-none")).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_io_fault_tears_the_write() {
        shatter_faults::install_str("store-io-test/store.write/io").unwrap();
        let dir = tmp_dir("io-fault");
        let j = Journal::open(&dir, 5).unwrap();
        shatter_faults::with_scenario("store-io-test", || {
            j.put("victim", b"this payload will be torn").unwrap();
            j.put("clean", b"this one lands intact").unwrap();
        });
        let stats = j.stats();
        assert_eq!((stats.torn, stats.writes), (1, 1));
        // The torn record was never trusted in memory either.
        assert_eq!(j.get("victim"), None);
        let j2 = Journal::open(&dir, 5).unwrap();
        assert_eq!(j2.stats().discarded, 1, "torn record discarded on open");
        assert_eq!(j2.stats().loaded, 1);
        assert_eq!(
            j2.get("clean").as_deref(),
            Some(b"this one lands intact".as_slice())
        );
        fs::remove_dir_all(&dir).ok();
    }
}
