//! Content-addressed blob store: the disk tier under `FixtureCache`.
//!
//! A [`BlobStore`] reuses the journal's record format (magic
//! `SHATTERB1`, FNV-checksummed header, tmp+`rename` writes, torn
//! records discarded) but with lazy per-`get` validation instead of a
//! load-everything open: blobs are large (serialized month datasets,
//! reward tables) and a warm run only touches the ones its keys ask
//! for. A damaged, foreign or stale blob is deleted, counted in
//! [`BlobStats::discarded`] and reported as a miss — the caller
//! recomputes; cached bytes are never trusted past their checksum.
//!
//! Reads consult the `store.read` fault-injection site: an injected
//! `io` fault makes the stored blob unreadable (exercising the
//! discard-and-recompute path), `panic` simulates a crash inside the
//! read. Writes consult `store.write` with the same semantics as the
//! journal (`io` = torn write at the final path).
//!
//! Typed payloads implement [`Blob`]: a version-tagged envelope over
//! the [`crate::wire`] codec. `from_blob` rejects wrong tags and
//! trailing bytes, so type confusion between keys decodes to `None`
//! (a miss), never to a wrong value.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use shatter_faults::FaultKind;

use crate::fnv::fnv1a_str;
use crate::wire::{Reader, Writer};
use crate::{encode_record, parse_record};

/// Magic tag opening every blob file; trailing `1` is the format
/// version. Distinct from the journal's `SHATTERJ1` so the two record
/// kinds can never masquerade as each other.
pub(crate) const BLOB_MAGIC: &str = "SHATTERB1";

/// A type that can round-trip through the blob store.
///
/// Implementations live next to the type they serialize (private
/// fields stay private); the envelope written by [`Blob::to_blob`]
/// leads with [`Blob::TAG`], which must change whenever the encoding
/// changes — a stale-format blob then decodes to `None` and is simply
/// recomputed.
pub trait Blob: Sized {
    /// Type-and-version tag, e.g. `"dataset/1"`.
    const TAG: &'static str;

    /// Appends the payload encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one payload; `None` on any damage or version skew.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;

    /// Serializes as a tagged envelope.
    fn to_blob(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(Self::TAG);
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Deserializes a tagged envelope; rejects wrong tags and
    /// trailing bytes.
    fn from_blob(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.str()? != Self::TAG {
            return None;
        }
        let v = Self::decode(&mut r)?;
        r.finished().then_some(v)
    }
}

/// `Vec<f64>` travels bit-exactly (benign day-cost curves).
impl Blob for Vec<f64> {
    const TAG: &'static str = "vec-f64/1";

    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for &v in self {
            w.f64(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.f64()?);
        }
        Some(out)
    }
}

/// Counters describing a blob store's life since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlobStats {
    /// `get` calls issued.
    pub gets: u64,
    /// `get` calls served by a valid on-disk blob.
    pub hits: u64,
    /// Blobs durably written.
    pub writes: u64,
    /// Damaged / foreign / stale blobs deleted on read.
    pub discarded: u64,
    /// Writes torn by an injected `io` fault.
    pub torn: u64,
}

/// An open content-addressed blob directory bound to one schema
/// signature. Internally synchronized; share through `&BlobStore`.
pub struct BlobStore {
    dir: PathBuf,
    schema_sig: u64,
    gets: AtomicU64,
    hits: AtomicU64,
    writes: AtomicU64,
    discarded: AtomicU64,
    torn: AtomicU64,
    tmp_counter: AtomicU64,
}

impl BlobStore {
    /// Opens (creating if needed) the store at `dir`. Stale temp files
    /// from a crashed writer are removed; record files are *not* read
    /// here — each is validated lazily on its first [`BlobStore::get`].
    ///
    /// `schema_sig` binds every blob to the serialization schema that
    /// produced it; bump the schema string it hashes whenever an
    /// encoding changes incompatibly.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or scanning the directory.
    pub fn open(dir: &Path, schema_sig: u64) -> io::Result<BlobStore> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == "tmp") {
                fs::remove_file(&path).ok();
            }
        }
        Ok(BlobStore {
            dir: dir.to_path_buf(),
            schema_sig,
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Schema signature the store is bound to.
    pub fn schema_sig(&self) -> u64 {
        self.schema_sig
    }

    /// The payload stored for `key`, if a valid blob exists on disk.
    ///
    /// Fault site `store.read`: `panic` unwinds here; `io` makes the
    /// stored blob unreadable — it is deleted and counted discarded,
    /// exactly like real corruption, so the caller recomputes. Any
    /// blob failing validation (checksum, schema signature, stored
    /// key, content address) is likewise deleted, counted and
    /// reported as a miss.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(blob_file_name(key));
        match shatter_faults::hit("store.read") {
            Some(FaultKind::Panic) => shatter_faults::panic_now("store.read"),
            Some(FaultKind::Io) => {
                // Unreadable media: the blob is as good as corrupt.
                if path.exists() {
                    fs::remove_file(&path).ok();
                    self.discarded.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
            // No budget/overflow to model in a read; treat as a miss.
            Some(FaultKind::Overflow) | Some(FaultKind::Budget) => return None,
            None => {}
        }
        if !path.exists() {
            return None;
        }
        match parse_record(&path, BLOB_MAGIC, self.schema_sig, blob_file_name) {
            Some((stored_key, payload)) if stored_key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            // Valid record, wrong key: an FNV address collision or a
            // renamed file — either way not our data.
            Some(_) | None => {
                fs::remove_file(&path).ok();
                self.discarded.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Deletes `key`'s blob (if any) and counts it discarded. Callers
    /// use this when bytes that passed the store's checksum fail a
    /// higher-level validation (typed decode, shape checks) — the blob
    /// is damage either way and must not be served again.
    pub fn discard(&self, key: &str) {
        fs::remove_file(self.dir.join(blob_file_name(key))).ok();
        self.discarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Typed read: [`BlobStore::get`] + [`Blob::from_blob`]. A blob
    /// whose bytes survive the checksum but fail typed decoding
    /// (version skew, type confusion) is deleted and counted
    /// discarded.
    pub fn get_blob<T: Blob>(&self, key: &str) -> Option<T> {
        self.get_blob_sized(key).map(|(v, _)| v)
    }

    /// Like [`BlobStore::get_blob`] but also returns the serialized
    /// size, which callers charge against their RAM budget.
    pub fn get_blob_sized<T: Blob>(&self, key: &str) -> Option<(T, usize)> {
        let bytes = self.get(key)?;
        match T::from_blob(&bytes) {
            Some(v) => Some((v, bytes.len())),
            None => {
                self.discard(key);
                self.hits.fetch_sub(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Durably stores `payload` under `key` (tmp file, `sync_all`,
    /// atomic rename). Re-putting a key overwrites its blob.
    ///
    /// Fault site `store.write`: same semantics as the journal —
    /// `panic` unwinds, `io` tears the write at the final path (the
    /// next `get` discards it), other kinds skip the write.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write, sync or rename.
    pub fn put(&self, key: &str, payload: &[u8]) -> io::Result<()> {
        let bytes = encode_record(BLOB_MAGIC, self.schema_sig, key, payload);
        let final_path = self.dir.join(blob_file_name(key));
        match shatter_faults::hit("store.write") {
            Some(FaultKind::Panic) => shatter_faults::panic_now("store.write"),
            Some(FaultKind::Io) => {
                let torn = &bytes[..bytes.len() / 2];
                fs::write(&final_path, torn)?;
                self.torn.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Some(FaultKind::Overflow) | Some(FaultKind::Budget) => return Ok(()),
            None => {}
        }
        let tmp = self.dir.join(format!(
            "b{}-{:x}.tmp",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Typed write: [`Blob::to_blob`] + [`BlobStore::put`], returning
    /// the serialized size (callers charge it against the RAM
    /// budget). I/O errors are swallowed — a failed persist degrades
    /// to in-memory-only caching, never to a wrong result.
    pub fn put_blob<T: Blob>(&self, key: &str, value: &T) -> usize {
        let bytes = value.to_blob();
        self.put(key, &bytes).ok();
        bytes.len()
    }

    /// Current counters.
    pub fn stats(&self) -> BlobStats {
        BlobStats {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
        }
    }
}

/// File name addressing `key`'s blob.
fn blob_file_name(key: &str) -> String {
    format!("b{:016x}.blob", fnv1a_str(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shatter-blob-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let s = BlobStore::open(&dir, 11).unwrap();
            s.put("fixture/h5/30/0", b"month-bytes").unwrap();
            assert_eq!(s.stats().writes, 1);
        }
        let s = BlobStore::open(&dir, 11).unwrap();
        assert_eq!(
            s.get("fixture/h5/30/0").as_deref(),
            Some(b"month-bytes".as_slice())
        );
        assert_eq!(s.get("fixture/other"), None);
        let st = s.stats();
        assert_eq!((st.gets, st.hits, st.discarded), (2, 1, 0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_blob_is_deleted_and_missed() {
        let dir = tmp_dir("corrupt");
        let s = BlobStore::open(&dir, 1).unwrap();
        s.put("k", b"precious-bytes").unwrap();
        let path = dir.join(blob_file_name("k"));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.get("k"), None, "flipped byte must not be served");
        assert!(!path.exists(), "corrupt blob must be deleted");
        assert_eq!(s.stats().discarded, 1);
        // The slot is clean for a re-put.
        s.put("k", b"recomputed").unwrap();
        assert_eq!(s.get("k").as_deref(), Some(b"recomputed".as_slice()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_sig_is_discarded_lazily() {
        let dir = tmp_dir("schema");
        {
            let s = BlobStore::open(&dir, 1).unwrap();
            s.put("k", b"v").unwrap();
        }
        let s = BlobStore::open(&dir, 2).unwrap();
        assert_eq!(s.get("k"), None);
        assert_eq!(s.stats().discarded, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_record_is_foreign_to_the_blob_store() {
        let dir = tmp_dir("magic");
        {
            let j = crate::Journal::open(&dir, 1).unwrap();
            j.put("k", b"journal-payload").unwrap();
        }
        // Same directory, same key, same sig — but journal records are
        // addressed r{hash}.rec while blobs live at b{hash}.blob, and
        // the magics differ; the blob store simply misses.
        let s = BlobStore::open(&dir, 1).unwrap();
        assert_eq!(s.get("k"), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_read_fault_discards_instead_of_trusting() {
        shatter_faults::install_str("blob-read-test/store.read/io").unwrap();
        let dir = tmp_dir("read-fault");
        let s = BlobStore::open(&dir, 5).unwrap();
        s.put("k", b"doomed").unwrap();
        shatter_faults::with_scenario("blob-read-test", || {
            assert_eq!(s.get("k"), None, "fault read must miss");
            // Rule was one-shot: the blob is gone, so this is a real miss.
            assert_eq!(s.get("k"), None);
        });
        assert_eq!(s.stats().discarded, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn typed_envelope_rejects_type_confusion() {
        let dir = tmp_dir("typed");
        let s = BlobStore::open(&dir, 3).unwrap();
        // Includes -0.0 and a NaN payload: both must round-trip
        // bit-exactly through the envelope.
        let costs: Vec<f64> = vec![1.5, -0.0, f64::from_bits(0x7ff8_0000_0000_0001)];
        let got = {
            s.put_blob("benign/h5", &costs);
            s.get_blob::<Vec<f64>>("benign/h5").unwrap()
        };
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&costs));
        // Raw bytes under another key do not decode as Vec<f64>.
        s.put("other", b"not-an-envelope").unwrap();
        assert_eq!(s.get_blob::<Vec<f64>>("other"), None);
        assert_eq!(s.stats().discarded, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_files_are_cleaned_on_open() {
        let dir = tmp_dir("tmp-clean");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("b99-0.tmp"), b"half a blo").unwrap();
        let _s = BlobStore::open(&dir, 1).unwrap();
        assert!(!dir.join("b99-0.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
