//! Hand-rolled little-endian wire codec for blob payloads.
//!
//! The vendored `serde` is a marker-only shim (no real serialization),
//! so persisted intermediates are encoded with this explicit codec
//! instead. Design rules:
//!
//! - everything is little-endian and fixed-width (`usize` travels as
//!   `u64`), so bytes are identical across hosts;
//! - `f64` travels as its IEEE-754 bit pattern (`to_bits`), so a
//!   decode → re-encode round trip is the identity and warm-run tables
//!   are byte-identical to cold-run ones — including NaN payloads;
//! - every `Reader` accessor is total: damage yields `None`, never a
//!   panic, because blob bytes come from disk and are untrusted even
//!   after the store's checksum (type confusion, version skew).

/// Append-only encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` (LE, two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an `Option<i64>` as presence byte + value.
    pub fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.i64(x);
            }
            None => self.bool(false),
        }
    }
}

/// Cursor-based decoder; every accessor returns `None` on truncation
/// or malformed input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// New reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed (trailing garbage is
    /// treated as damage by [`crate::Blob::from_blob`]).
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads an `i64` (LE).
    pub fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a `usize` (stored as `u64`); fails if it overflows the
    /// host's `usize`.
    pub fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Reads a collection length, bounded by the bytes that actually
    /// remain (every element of this codec occupies ≥ 1 byte), so a
    /// corrupt length can't trigger a huge allocation before the
    /// decode fails.
    pub fn seq_len(&mut self) -> Option<usize> {
        let n = self.usize()?;
        (n <= self.buf.len() - self.pos).then_some(n)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (strictly 0 or 1; anything else is damage).
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    /// Reads an `Option<i64>`.
    pub fn opt_i64(&mut self) -> Option<Option<i64>> {
        if self.bool()? {
            Some(Some(self.i64()?))
        } else {
            Some(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u32(123_456);
        w.u64(u64::MAX);
        w.i64(-42);
        w.usize(99);
        w.f64(-0.125);
        w.f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN payload
        w.bool(true);
        w.str("occupant/3");
        w.opt_i64(Some(-7));
        w.opt_i64(None);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8(), Some(0xab));
        assert_eq!(r.u32(), Some(123_456));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.i64(), Some(-42));
        assert_eq!(r.usize(), Some(99));
        assert_eq!(r.f64(), Some(-0.125));
        assert_eq!(r.f64().map(f64::to_bits), Some(0x7ff8_dead_beef_0001));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.str(), Some("occupant/3"));
        assert_eq!(r.opt_i64(), Some(Some(-7)));
        assert_eq!(r.opt_i64(), Some(None));
        assert!(r.finished());
        assert_eq!(r.u8(), None, "reads past the end are None, not panic");
    }

    #[test]
    fn truncation_is_none_everywhere() {
        let mut w = Writer::new();
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert_eq!(r.str(), None, "cut at {cut}");
        }
    }

    #[test]
    fn non_canonical_bool_is_damage() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), None);
    }
}
