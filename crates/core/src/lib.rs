//! SHATTER attack analytics: stealthy FDI attack-schedule synthesis and
//! impact evaluation for activity-driven smart-home control systems.
//!
//! This crate is the paper's primary contribution (§III–§IV). Given a home,
//! its activity-aware DCHVAC controller, a trained clustering-based ADM and
//! an attacker capability profile, SHATTER synthesizes *attack schedules* —
//! falsified per-occupant zone/activity timelines plus real-time appliance
//! triggering decisions — that maximize the home's energy cost while
//! evading both the ADM (every falsified stay episode lies inside a
//! learned cluster hull) and the occupants (appliances are only triggered
//! where nobody would notice).
//!
//! The pieces:
//!
//! - [`AttackerCapability`]: the paper's `Z^A`/`T^A`/`O^A`/`D^A`
//!   accessibility sets (§III-B.4),
//! - [`RewardTable`]: per-(occupant, zone, minute) marginal-cost rewards
//!   derived from the control model (Eq. 17's objective),
//! - [`WindowDpScheduler`]: the window-horizon dynamic optimizer (the
//!   paper's sub-optimal schedule generation with horizon `I`),
//! - [`GreedyScheduler`]: the paper's Algorithm 2 baseline,
//! - [`SmtScheduler`]: the formal window encoding solved with
//!   `shatter-smt` (the Z3 role; subject of the Fig. 11 scalability study),
//! - [`trigger`]: the revised appliance-triggering decision (Algorithm 1),
//! - [`biota`]: the BIoTA rule-constrained baseline attack,
//! - [`impact`]: end-to-end attack-impact evaluation (Tables V–VII,
//!   Fig. 10).
//!
//! # Examples
//!
//! ```
//! use shatter_adm::{AdmKind, HullAdm};
//! use shatter_core::{impact, AttackerCapability, WindowDpScheduler};
//! use shatter_dataset::{synthesize, HouseSpec, SynthConfig};
//! use shatter_hvac::EnergyModel;
//! use shatter_smarthome::houses;
//!
//! let home = houses::aras_house_a();
//! let data = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 10, 1));
//! let (train, test) = data.split_at_day(8);
//! let adm = HullAdm::train(&train, AdmKind::default_dbscan());
//! let model = EnergyModel::standard(home.clone());
//! let cap = AttackerCapability::full(&home);
//! let outcome = impact::evaluate_day(
//!     &model, &adm, &cap, &test.days[0], &WindowDpScheduler::default(), true,
//! );
//! assert!(outcome.attacked_cost_usd >= outcome.benign_cost_usd - 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biota;
mod capability;
pub mod defense;
mod dp;
mod greedy;
pub mod impact;
mod persist;
pub mod realtime;
mod reward;
mod schedule;
mod smt_sched;
pub mod strategy;
pub mod trigger;

pub use biota::BiotaScheduler;
pub use capability::AttackerCapability;
pub use dp::WindowDpScheduler;
pub use greedy::GreedyScheduler;
pub use reward::{plausible_activities, RewardTable};
pub use schedule::{
    schedule_day_batched, AttackSchedule, BatchExecutor, ScheduleError, Scheduler, SerialExecutor,
    WindowMemo, WindowSolution,
};
pub use shatter_smt::Budget;
pub use smt_sched::{SmtScheduler, SmtStats};
pub use strategy::{SharedScheduler, StrategyEntry, StrategyRegistry};
