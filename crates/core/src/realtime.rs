//! Real-time attack execution (paper §IV-C "Real-time Attack").
//!
//! The attack schedule is *pre-computed* — in practice from predicted
//! occupant behaviour — but the measurements the attacker must overwrite
//! are produced by the occupants' *actual* behaviour, which deviates from
//! any prediction. The paper's real-time stage therefore makes per-slot
//! decisions: the falsification "can be carried out at a time-instance if
//! the attacker has access to both the actual occupant zone and the zone
//! from the attack schedule"; otherwise the genuine measurement passes
//! through.
//!
//! [`execute_realtime`] runs that policy minute by minute, with one
//! safeguard the paper leaves implicit: a planned relocation is only
//! committed when the reported episode it closes is ADM-consistent (the
//! attacker can check this online — it knows the ADM), so prediction error
//! degrades the attack's *value*, not its *stealth*.

use shatter_adm::HullAdm;
use shatter_dataset::DayTrace;
use shatter_smarthome::{Minute, OccupantId, ZoneId, MINUTES_PER_DAY};

use crate::schedule::AttackSchedule;
use crate::{AttackerCapability, RewardTable};

/// Result of executing a planned schedule against live behaviour.
#[derive(Debug, Clone)]
pub struct RealtimeOutcome {
    /// The schedule as actually injected (may fall back to genuine
    /// measurements wherever the plan was unexecutable).
    pub executed: AttackSchedule,
    /// Slots where the plan wanted a lie the attacker could not commit
    /// (capability or stealth blocked it).
    pub blocked_slots: usize,
    /// Slots where a lie was injected.
    pub injected_slots: usize,
}

/// Executes `planned` against the `actual` day under `cap`, keeping every
/// *closed* reported episode ADM-consistent.
pub fn execute_realtime(
    planned: &AttackSchedule,
    adm: &HullAdm,
    cap: &AttackerCapability,
    actual: &DayTrace,
    table: &RewardTable,
) -> RealtimeOutcome {
    let n_occupants = planned.n_occupants();
    let mut zones: Vec<Vec<ZoneId>> = vec![Vec::with_capacity(MINUTES_PER_DAY); n_occupants];
    let mut blocked = 0usize;
    let mut injected = 0usize;

    #[allow(clippy::needless_range_loop)]
    for o in 0..n_occupants {
        let occupant = OccupantId(o);
        // Current reported stay: (zone, arrival).
        let mut cur: Option<(ZoneId, u32)> = None;
        for t in 0..MINUTES_PER_DAY {
            let actual_zone = actual.minutes[t].occupants[o].zone;
            let wanted = planned.zones[o][t];
            let reported = {
                let can = cap.can_relocate(occupant, actual_zone, wanted, t as Minute);
                // Committing `wanted` may close the current stay; only do
                // so stealthily.
                let closes_ok = match cur {
                    Some((z, a)) if z != wanted => {
                        let stay = t as u32 - a;
                        // Closing is fine when the closed episode is
                        // in-cluster, or when it exactly mirrored actual
                        // behaviour so far.
                        adm.in_range_stay(occupant, z, a as f64, stay as f64)
                            || (a..t as u32)
                                .all(|u| actual.minutes[u as usize].occupants[o].zone == z)
                    }
                    _ => true,
                };
                if can && closes_ok {
                    wanted
                } else {
                    blocked += usize::from(wanted != actual_zone);
                    actual_zone
                }
            };
            if reported != actual_zone {
                injected += 1;
            }
            match cur {
                Some((z, _)) if z == reported => {}
                _ => cur = Some((reported, t as u32)),
            }
            zones[o].push(reported);
        }
    }

    let activities = zones
        .iter()
        .enumerate()
        .map(|(o, row)| {
            row.iter()
                .enumerate()
                .map(|(t, &z)| {
                    let reported_real = actual.minutes[t].occupants[o].zone == z;
                    if reported_real {
                        actual.minutes[t].occupants[o].activity
                    } else {
                        table.best_activity(OccupantId(o), z, t as Minute)
                    }
                })
                .collect()
        })
        .collect();

    RealtimeOutcome {
        executed: AttackSchedule { zones, activities },
        blocked_slots: blocked,
        injected_slots: injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biota::detection_rate;
    use crate::{Scheduler, WindowDpScheduler};
    use shatter_adm::AdmKind;
    use shatter_dataset::{synthesize, HouseSpec, SynthConfig};
    use shatter_hvac::EnergyModel;
    use shatter_smarthome::houses;

    fn setup() -> (
        shatter_dataset::Dataset,
        HullAdm,
        RewardTable,
        AttackerCapability,
    ) {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 14, 17));
        let adm = HullAdm::train(&ds.prefix_days(12), AdmKind::default_kmeans());
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        let cap = AttackerCapability::full(&houses::aras_house_a());
        (ds, adm, table, cap)
    }

    #[test]
    fn prescient_plan_executes_verbatim() {
        // A plan computed on the actual day is fully executable.
        let (ds, adm, table, cap) = setup();
        let day = &ds.days[12];
        let planned = WindowDpScheduler::default().schedule(&table, &adm, &cap, day);
        let out = execute_realtime(&planned, &adm, &cap, day, &table);
        assert_eq!(out.executed.zones, planned.zones);
        assert_eq!(out.blocked_slots, 0);
    }

    #[test]
    fn mispredicted_plan_degrades_value_not_stealth() {
        // Plan on day 12 (the "prediction"), execute against day 13.
        let (ds, adm, table, cap) = setup();
        let predicted = &ds.days[12];
        let actual = &ds.days[13];
        let planned = WindowDpScheduler::default().schedule(&table, &adm, &cap, predicted);
        let out = execute_realtime(&planned, &adm, &cap, actual, &table);
        // Value: executed reward lands in the prescient attack's
        // neighbourhood (the prescient window-DP is itself sub-optimal, so
        // an executed mis-prediction can occasionally edge past it — but
        // not by much, and it never beats it systematically).
        let prescient = WindowDpScheduler::default().schedule(&table, &adm, &cap, actual);
        assert!(
            out.executed.reward(&table) <= prescient.reward(&table) * 1.15,
            "executed {} vs prescient {}",
            out.executed.reward(&table),
            prescient.reward(&table)
        );
        // Stealth: the ADM flags (almost) nothing.
        let d = detection_rate(&adm, &out.executed, actual);
        assert!(d <= 0.10, "realtime detection {d}");
    }

    #[test]
    fn blocked_slots_appear_under_restricted_capability() {
        let (ds, adm, table, cap) = setup();
        let predicted = &ds.days[12];
        let actual = &ds.days[13];
        let planned = WindowDpScheduler::default().schedule(&table, &adm, &cap, predicted);
        let restricted = cap.clone().with_zone_access([ZoneId(2), ZoneId(3)]);
        let out = execute_realtime(&planned, &adm, &restricted, actual, &table);
        // Every injection in the executed schedule honours the capability.
        out.executed
            .validate(&adm, &restricted, actual)
            .map_err(|e| format!("{e}"))
            .ok(); // stealth may be imperfect; capability must hold:
        for t in 0..MINUTES_PER_DAY {
            for o in 0..2 {
                let az = actual.minutes[t].occupants[o].zone;
                let rz = out.executed.zones[o][t];
                assert!(restricted.can_relocate(OccupantId(o), az, rz, t as Minute));
            }
        }
        assert!(out.blocked_slots > 0 || out.injected_slots == 0);
    }

    #[test]
    fn injected_plus_mirrored_covers_day() {
        let (ds, adm, table, cap) = setup();
        let planned = WindowDpScheduler::default().schedule(&table, &adm, &cap, &ds.days[12]);
        let out = execute_realtime(&planned, &adm, &cap, &ds.days[13], &table);
        assert_eq!(out.executed.zones[0].len(), MINUTES_PER_DAY);
        assert!(out.injected_slots <= 2 * MINUTES_PER_DAY);
    }
}
