//! End-to-end attack-impact evaluation: synthesize a schedule, derive the
//! triggering plan, build the falsified sensor trace the controller
//! consumes, and price the result (paper Tables V–VII, Fig. 10).

use shatter_adm::HullAdm;
use shatter_dataset::{DayTrace, MinuteRecord, OccupantState};
use shatter_hvac::{DchvacController, EnergyModel};
use shatter_smarthome::MINUTES_PER_DAY;

use crate::biota::detection_rate;
use crate::schedule::{AttackSchedule, Scheduler};
use crate::trigger::{plan_triggers, TriggerPlan};
use crate::{AttackerCapability, RewardTable};

/// Result of evaluating an attack on one day.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Control cost under genuine behaviour, $.
    pub benign_cost_usd: f64,
    /// Control cost with the attack in place, $.
    pub attacked_cost_usd: f64,
    /// Minutes of adversarial appliance activation.
    pub triggered_minutes: usize,
    /// Occupant-minutes where the schedule diverges from actual.
    pub divergence: usize,
    /// Fraction of diverging reported episodes the ADM flags (0 = fully
    /// stealthy).
    pub detection_rate: f64,
    /// The synthesized schedule.
    pub schedule: AttackSchedule,
}

impl AttackOutcome {
    /// Attack-induced extra cost, $.
    pub fn impact_usd(&self) -> f64 {
        self.attacked_cost_usd - self.benign_cost_usd
    }
}

/// Builds the sensor trace the controller sees (and the loads the home
/// really pays for) during the attack: occupant measurements follow the
/// falsified schedule, appliance states are the genuine ones plus the
/// adversarially triggered activations (which draw real power).
pub fn attacked_day_trace(
    actual: &DayTrace,
    schedule: &AttackSchedule,
    triggers: &TriggerPlan,
) -> DayTrace {
    let minutes = (0..MINUTES_PER_DAY)
        .map(|t| {
            let rec = &actual.minutes[t];
            let occupants = (0..schedule.n_occupants())
                .map(|o| OccupantState {
                    zone: schedule.zones[o][t],
                    activity: schedule.activities[o][t],
                })
                .collect();
            let mut appliances = rec.appliances.clone();
            for aid in &triggers.on[t] {
                appliances[aid.index()] = true;
            }
            MinuteRecord {
                occupants,
                appliances,
            }
        })
        .collect();
    DayTrace {
        day: actual.day,
        minutes,
    }
}

/// Evaluates one day of attack: schedule synthesis, optional appliance
/// triggering, pricing of the attacked vs. benign trace.
pub fn evaluate_day(
    model: &EnergyModel,
    adm: &HullAdm,
    cap: &AttackerCapability,
    actual: &DayTrace,
    scheduler: &dyn Scheduler,
    with_triggering: bool,
) -> AttackOutcome {
    let table = RewardTable::build(model);
    evaluate_day_with_table(model, &table, adm, cap, actual, scheduler, with_triggering)
}

/// Like [`evaluate_day`] but reusing a prebuilt [`RewardTable`] (the table
/// only depends on the energy model, so month-scale sweeps build it once).
pub fn evaluate_day_with_table(
    model: &EnergyModel,
    table: &RewardTable,
    adm: &HullAdm,
    cap: &AttackerCapability,
    actual: &DayTrace,
    scheduler: &dyn Scheduler,
    with_triggering: bool,
) -> AttackOutcome {
    let schedule = scheduler.schedule(table, adm, cap, actual);
    evaluate_day_with_schedule(model, adm, cap, actual, &schedule, with_triggering, None)
}

/// Evaluates a *precomputed* schedule: derive the triggering plan, build
/// the falsified trace, and price it. Schedule synthesis dominates
/// attack evaluation, so callers comparing triggering on/off (Fig. 10,
/// Tables VI–VII) or sweeping defenses against a fixed attack should
/// synthesize once and price both legs through this entry point.
///
/// `benign_cost_usd` optionally supplies the (schedule-independent)
/// benign day cost so month-scale sweeps can price each genuine day
/// once.
pub fn evaluate_day_with_schedule(
    model: &EnergyModel,
    adm: &HullAdm,
    cap: &AttackerCapability,
    actual: &DayTrace,
    schedule: &AttackSchedule,
    with_triggering: bool,
    benign_cost_usd: Option<f64>,
) -> AttackOutcome {
    let triggers = if with_triggering {
        plan_triggers(model.home(), adm, cap, actual, schedule)
    } else {
        TriggerPlan {
            on: vec![Vec::new(); MINUTES_PER_DAY],
        }
    };
    let attacked = attacked_day_trace(actual, schedule, &triggers);
    let benign_cost =
        benign_cost_usd.unwrap_or_else(|| model.day_cost(&DchvacController, actual).total_usd());
    let attacked_cost = model.day_cost(&DchvacController, &attacked).total_usd();
    AttackOutcome {
        benign_cost_usd: benign_cost,
        attacked_cost_usd: attacked_cost,
        triggered_minutes: triggers.total_minutes(),
        divergence: schedule.divergence(actual),
        detection_rate: detection_rate(adm, schedule, actual),
        schedule: schedule.clone(),
    }
}

/// Evaluates an attack over many days (e.g. a month), reusing one reward
/// table.
pub fn evaluate_days(
    model: &EnergyModel,
    adm: &HullAdm,
    cap: &AttackerCapability,
    days: &[DayTrace],
    scheduler: &dyn Scheduler,
    with_triggering: bool,
) -> Vec<AttackOutcome> {
    let table = RewardTable::build(model);
    days.iter()
        .map(|d| evaluate_day_with_table(model, &table, adm, cap, d, scheduler, with_triggering))
        .collect()
}

/// Sums attacked cost over outcomes, $.
pub fn total_attacked_usd(outcomes: &[AttackOutcome]) -> f64 {
    outcomes.iter().map(|o| o.attacked_cost_usd).sum()
}

/// Sums benign cost over outcomes, $.
pub fn total_benign_usd(outcomes: &[AttackOutcome]) -> f64 {
    outcomes.iter().map(|o| o.benign_cost_usd).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BiotaScheduler, GreedyScheduler, WindowDpScheduler};
    use shatter_adm::AdmKind;
    use shatter_dataset::{synthesize, HouseSpec, SynthConfig};
    use shatter_smarthome::houses;

    fn setup() -> (
        EnergyModel,
        shatter_dataset::Dataset,
        HullAdm,
        AttackerCapability,
    ) {
        let home = houses::aras_house_a();
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, 61));
        let adm = HullAdm::train(&ds.prefix_days(10), AdmKind::default_kmeans());
        let model = EnergyModel::standard(home.clone());
        let cap = AttackerCapability::full(&home);
        (model, ds, adm, cap)
    }

    #[test]
    fn attack_increases_cost() {
        let (model, ds, adm, cap) = setup();
        let out = evaluate_day(
            &model,
            &adm,
            &cap,
            &ds.days[10],
            &WindowDpScheduler::default(),
            true,
        );
        assert!(
            out.attacked_cost_usd > out.benign_cost_usd,
            "attack {} vs benign {}",
            out.attacked_cost_usd,
            out.benign_cost_usd
        );
        assert!(out.detection_rate <= 0.05);
    }

    #[test]
    fn triggering_adds_impact() {
        // Paper Fig. 10: appliance triggering raises cost further (~20%).
        let (model, ds, adm, cap) = setup();
        let day = &ds.days[11];
        let without = evaluate_day(
            &model,
            &adm,
            &cap,
            day,
            &WindowDpScheduler::default(),
            false,
        );
        let with = evaluate_day(&model, &adm, &cap, day, &WindowDpScheduler::default(), true);
        assert!(with.attacked_cost_usd >= without.attacked_cost_usd);
    }

    #[test]
    fn biota_raw_cost_highest_but_detected() {
        let (model, ds, adm, cap) = setup();
        let day = &ds.days[10];
        let biota = evaluate_day(&model, &adm, &cap, day, &BiotaScheduler, false);
        let shatter = evaluate_day(
            &model,
            &adm,
            &cap,
            day,
            &WindowDpScheduler::default(),
            false,
        );
        assert!(biota.attacked_cost_usd >= shatter.attacked_cost_usd * 0.9);
        assert!(
            biota.detection_rate >= 0.5,
            "biota detection {}",
            biota.detection_rate
        );
        assert!(shatter.detection_rate <= 0.05);
    }

    #[test]
    fn greedy_weaker_than_dp_over_days() {
        let (model, ds, adm, cap) = setup();
        let dp = evaluate_days(
            &model,
            &adm,
            &cap,
            &ds.days[10..12],
            &WindowDpScheduler::default(),
            false,
        );
        let greedy = evaluate_days(
            &model,
            &adm,
            &cap,
            &ds.days[10..12],
            &GreedyScheduler,
            false,
        );
        assert!(total_attacked_usd(&dp) >= total_attacked_usd(&greedy) * 0.95);
    }

    #[test]
    fn schedule_reuse_matches_direct_evaluation() {
        let (model, ds, adm, cap) = setup();
        let day = &ds.days[10];
        let table = RewardTable::build(&model);
        let scheduler = WindowDpScheduler::default();
        let direct = evaluate_day_with_table(&model, &table, &adm, &cap, day, &scheduler, true);
        let sched = scheduler.schedule(&table, &adm, &cap, day);
        let benign = model.day_cost(&DchvacController, day).total_usd();
        let reused =
            evaluate_day_with_schedule(&model, &adm, &cap, day, &sched, true, Some(benign));
        assert_eq!(direct.attacked_cost_usd, reused.attacked_cost_usd);
        assert_eq!(direct.benign_cost_usd, reused.benign_cost_usd);
        assert_eq!(direct.schedule, reused.schedule);
    }

    #[test]
    fn attacked_trace_preserves_genuine_appliances() {
        let (model, ds, adm, cap) = setup();
        let day = &ds.days[10];
        let out = evaluate_day(&model, &adm, &cap, day, &WindowDpScheduler::default(), true);
        let triggers = plan_triggers(model.home(), &adm, &cap, day, &out.schedule);
        let attacked = attacked_day_trace(day, &out.schedule, &triggers);
        for (t, rec) in attacked.minutes.iter().enumerate() {
            for (a, &on) in day.minutes[t].appliances.iter().enumerate() {
                if on {
                    assert!(rec.appliances[a], "genuine appliance state dropped");
                }
            }
        }
    }
}
