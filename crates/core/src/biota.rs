//! The BIoTA baseline attack (Haque et al., SECON 2021), reconstructed as
//! a scheduler: a greedy FDI attack constrained only by *rule-based*
//! verification — zone capacity and occupant-count conservation — with no
//! awareness of learned behavioural clusters.
//!
//! BIoTA's attack vectors achieve the highest raw cost (paper Table V) but
//! are "very naive and maintain a large margin from the benign data
//! distribution" (§VII-A), so a clustering ADM flags 60–100% of them —
//! SHATTER's motivating observation.

use shatter_adm::HullAdm;
use shatter_dataset::DayTrace;
use shatter_smarthome::{Minute, OccupantId, ZoneId, MINUTES_PER_DAY};

use crate::schedule::{AttackSchedule, Scheduler};
use crate::{AttackerCapability, RewardTable};

/// The rule-constrained BIoTA attack scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BiotaScheduler;

impl Scheduler for BiotaScheduler {
    fn schedule_occupant_zones(
        &self,
        o: OccupantId,
        table: &RewardTable,
        _adm: &HullAdm,
        cap: &AttackerCapability,
        actual: &DayTrace,
    ) -> Vec<ZoneId> {
        let n_zones = table.n_zones();
        let mut row = Vec::with_capacity(MINUTES_PER_DAY);
        for t in 0..MINUTES_PER_DAY {
            let actual_zone = actual.minutes[t].occupants[o.index()].zone;
            // Most rewarding zone reachable this minute; no behavioural
            // constraint whatsoever.
            let best = (0..n_zones)
                .map(ZoneId)
                .filter(|&z| cap.can_relocate(o, actual_zone, z, t as Minute))
                .max_by(|&a, &b| {
                    table
                        .rate(o, a, t as Minute)
                        .partial_cmp(&table.rate(o, b, t as Minute))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(actual_zone);
            row.push(best);
        }
        row
    }

    fn name(&self) -> &'static str {
        "BIoTA (rule-based)"
    }
}

/// Fraction of a schedule's *diverging* episodes (those that do not
/// exactly mirror actual behaviour) flagged anomalous by the ADM — the
/// paper's "(60–100)% of BIoTA-identified attack vectors detected".
pub fn detection_rate(adm: &HullAdm, schedule: &AttackSchedule, actual: &DayTrace) -> f64 {
    let actual_eps: std::collections::HashSet<(usize, usize, u32, u32)> =
        AttackSchedule::from_actual(actual)
            .episodes()
            .into_iter()
            .map(|e| (e.occupant.index(), e.zone.index(), e.arrival, e.stay))
            .collect();
    let mut diverging = 0usize;
    let mut flagged = 0usize;
    for e in schedule.episodes() {
        let key = (e.occupant.index(), e.zone.index(), e.arrival, e.stay);
        if actual_eps.contains(&key) {
            continue;
        }
        diverging += 1;
        if !adm.within(e.occupant, e.zone, e.arrival as f64, e.stay as f64) {
            flagged += 1;
        }
    }
    if diverging == 0 {
        0.0
    } else {
        flagged as f64 / diverging as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scheduler, WindowDpScheduler};
    use shatter_adm::AdmKind;
    use shatter_dataset::{synthesize, HouseSpec, SynthConfig};
    use shatter_hvac::EnergyModel;
    use shatter_smarthome::houses;

    fn setup() -> (
        shatter_dataset::Dataset,
        HullAdm,
        RewardTable,
        AttackerCapability,
    ) {
        let ds = synthesize(&SynthConfig::new(HouseSpec::aras_a(), 12, 51));
        let adm = HullAdm::train(&ds.prefix_days(10), AdmKind::default_dbscan());
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        let cap = AttackerCapability::full(&houses::aras_house_a());
        (ds, adm, table, cap)
    }

    #[test]
    fn biota_reward_exceeds_shatter_reward() {
        // Unconstrained by the ADM, BIoTA claims more reward...
        let (ds, adm, table, cap) = setup();
        let day = &ds.days[10];
        let biota = BiotaScheduler
            .schedule(&table, &adm, &cap, day)
            .reward(&table);
        let shatter = WindowDpScheduler::default()
            .schedule(&table, &adm, &cap, day)
            .reward(&table);
        assert!(biota >= shatter, "biota {biota} vs shatter {shatter}");
    }

    #[test]
    fn biota_is_heavily_detected() {
        // ...but the ADM flags the majority of its episodes (paper: 60–100%).
        let (ds, adm, table, cap) = setup();
        let day = &ds.days[10];
        let sched = BiotaScheduler.schedule(&table, &adm, &cap, day);
        let rate = detection_rate(&adm, &sched, day);
        assert!(rate >= 0.6, "detection rate {rate}");
    }

    #[test]
    fn shatter_detection_rate_is_low() {
        let (ds, adm, table, cap) = setup();
        let day = &ds.days[10];
        let sched = WindowDpScheduler::default().schedule(&table, &adm, &cap, day);
        let rate = detection_rate(&adm, &sched, day);
        assert!(rate <= 0.05, "SHATTER detection rate {rate}");
    }

    #[test]
    fn biota_parks_occupants_in_kitchen() {
        let (ds, adm, table, cap) = setup();
        let day = &ds.days[10];
        let sched = BiotaScheduler.schedule(&table, &adm, &cap, day);
        // Kitchen (zone 3) is the highest-rate zone; BIoTA should report it
        // for the large majority of slots.
        let kitchen_slots = sched.zones[0].iter().filter(|&&z| z == ZoneId(3)).count();
        assert!(kitchen_slots > 1200, "kitchen slots {kitchen_slots}");
    }
}
