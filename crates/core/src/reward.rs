use shatter_dataset::default_zone_for;
use shatter_hvac::EnergyModel;
use shatter_smarthome::{Activity, Minute, OccupantId, ZoneId, MINUTES_PER_DAY};

/// Activities an occupant can plausibly be *reported* to perform in a
/// zone — the attacker must report a (zone, activity) pair the activity
/// recognizer would accept (paper §II "Activity-Appliance Relationship").
pub fn plausible_activities(zone: ZoneId) -> Vec<Activity> {
    Activity::ALL
        .iter()
        .copied()
        .filter(|&a| default_zone_for(a) == zone)
        .collect()
}

/// Precomputed attack rewards: for every (occupant, zone, minute), the
/// marginal HVAC cost ($/slot) of *reporting* that occupant in that zone
/// doing the most expensive plausible activity — the coefficients of the
/// paper's objective (Eq. 17).
///
/// Prefix sums make any stay's reward an O(1) lookup, which the schedulers
/// rely on.
#[derive(Debug, Clone)]
pub struct RewardTable {
    n_zones: usize,
    /// `rate[o][z][t]` in dollars per minute.
    rate: Vec<Vec<Vec<f64>>>,
    /// `prefix[o][z][t]` = Σ_{u<t} rate[o][z][u].
    prefix: Vec<Vec<Vec<f64>>>,
    /// Best (most expensive) reported activity per zone and minute,
    /// shared across occupants of equal profile but stored per occupant
    /// for generality.
    best_activity: Vec<Vec<Vec<Activity>>>,
    /// `appliance_rate[d][t]`: marginal cost ($/min) of appliance `d`
    /// running at minute `t` (power draw + induced cooling).
    appliance_rate: Vec<Vec<f64>>,
    /// Home zone of each appliance.
    appliance_zone: Vec<ZoneId>,
    /// Linked activities of each appliance (legitimate-use set).
    appliance_linked: Vec<Vec<Activity>>,
}

impl RewardTable {
    /// Builds the table from the energy model for `n_occupants` occupants
    /// and all zones of the model's home.
    pub fn build(model: &EnergyModel) -> RewardTable {
        let n_occupants = model.home().occupants().len();
        let n_zones = model.home().zones().len();
        let mut rate = vec![vec![vec![0.0; MINUTES_PER_DAY]; n_zones]; n_occupants];
        let mut best_activity =
            vec![vec![vec![Activity::Other; MINUTES_PER_DAY]; n_zones]; n_occupants];
        for o in 0..n_occupants {
            for z in 0..n_zones {
                let plausible = plausible_activities(ZoneId(z));
                if plausible.is_empty() {
                    continue;
                }
                for t in 0..MINUTES_PER_DAY {
                    if let Some((act, r)) =
                        model.best_activity_for(OccupantId(o), ZoneId(z), t as Minute, &plausible)
                    {
                        rate[o][z][t] = r;
                        best_activity[o][z][t] = act;
                    }
                }
            }
        }
        let prefix = rate
            .iter()
            .map(|per_zone| {
                per_zone
                    .iter()
                    .map(|r| {
                        let mut p = vec![0.0; MINUTES_PER_DAY + 1];
                        for t in 0..MINUTES_PER_DAY {
                            p[t + 1] = p[t] + r[t];
                        }
                        p
                    })
                    .collect()
            })
            .collect();
        let appliance_rate = model
            .home()
            .appliances()
            .iter()
            .map(|a| {
                (0..MINUTES_PER_DAY)
                    .map(|t| model.appliance_cost_rate(a.id, t as Minute))
                    .collect()
            })
            .collect();
        let appliance_zone = model.home().appliances().iter().map(|a| a.zone).collect();
        let appliance_linked = model
            .home()
            .appliances()
            .iter()
            .map(|a| a.linked_activities.clone())
            .collect();
        RewardTable {
            n_zones,
            rate,
            prefix,
            best_activity,
            appliance_rate,
            appliance_zone,
            appliance_linked,
        }
    }

    /// Number of appliances covered.
    pub fn n_appliances(&self) -> usize {
        self.appliance_zone.len()
    }

    /// Marginal cost rate ($/min) of appliance `d` running at minute `t`.
    pub fn appliance_rate(&self, d: shatter_smarthome::ApplianceId, t: Minute) -> f64 {
        self.appliance_rate[d.index()][t as usize]
    }

    /// Zone an appliance is installed in.
    pub fn appliance_zone(&self, d: shatter_smarthome::ApplianceId) -> ZoneId {
        self.appliance_zone[d.index()]
    }

    /// Whether `activity` is a legitimate use of appliance `d`.
    pub fn appliance_linked_to(
        &self,
        d: shatter_smarthome::ApplianceId,
        activity: Activity,
    ) -> bool {
        self.appliance_linked[d.index()].contains(&activity)
    }

    /// Number of zones covered.
    pub fn n_zones(&self) -> usize {
        self.n_zones
    }

    /// Reward rate ($/min) for reporting `o` in `z` at minute `t`.
    pub fn rate(&self, o: OccupantId, z: ZoneId, t: Minute) -> f64 {
        self.rate[o.index()][z.index()][t as usize]
    }

    /// Total reward of reporting `o` in `z` for minutes `[from, to)`.
    pub fn stay_reward(&self, o: OccupantId, z: ZoneId, from: Minute, to: Minute) -> f64 {
        let p = &self.prefix[o.index()][z.index()];
        p[(to as usize).min(MINUTES_PER_DAY)] - p[(from as usize).min(MINUTES_PER_DAY)]
    }

    /// The most expensive plausible activity to report for `o` in `z` at
    /// minute `t`.
    pub fn best_activity(&self, o: OccupantId, z: ZoneId, t: Minute) -> Activity {
        self.best_activity[o.index()][z.index()][t as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shatter_smarthome::houses;

    #[test]
    fn plausible_activity_zones_are_consistent() {
        for z in 0..5 {
            for a in plausible_activities(ZoneId(z)) {
                assert_eq!(default_zone_for(a), ZoneId(z));
            }
        }
        // Kitchen includes cooking.
        assert!(plausible_activities(ZoneId(3)).contains(&Activity::PreparingDinner));
        // Outside only contains GoingOut.
        assert_eq!(plausible_activities(ZoneId(0)), vec![Activity::GoingOut]);
    }

    #[test]
    fn prefix_sums_match_direct_sums() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        let o = OccupantId(0);
        let z = ZoneId(3);
        let direct: f64 = (100..200).map(|t| table.rate(o, z, t)).sum();
        let fast = table.stay_reward(o, z, 100, 200);
        assert!((direct - fast).abs() < 1e-9);
    }

    #[test]
    fn kitchen_beats_bedroom() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        let o = OccupantId(0);
        assert!(
            table.stay_reward(o, ZoneId(3), 0, 1440) > table.stay_reward(o, ZoneId(1), 0, 1440)
        );
    }

    #[test]
    fn outside_has_zero_reward() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        assert_eq!(table.stay_reward(OccupantId(0), ZoneId(0), 0, 1440), 0.0);
    }

    #[test]
    fn best_activity_is_plausible() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        for z in 1..5usize {
            let a = table.best_activity(OccupantId(0), ZoneId(z), 700);
            assert_eq!(default_zone_for(a), ZoneId(z));
        }
    }
}
