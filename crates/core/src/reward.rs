use shatter_dataset::default_zone_for;
use shatter_hvac::EnergyModel;
use shatter_smarthome::{Activity, Minute, OccupantId, ZoneId, MINUTES_PER_DAY};

/// Activities an occupant can plausibly be *reported* to perform in a
/// zone — the attacker must report a (zone, activity) pair the activity
/// recognizer would accept (paper §II "Activity-Appliance Relationship").
pub fn plausible_activities(zone: ZoneId) -> Vec<Activity> {
    Activity::ALL
        .iter()
        .copied()
        .filter(|&a| default_zone_for(a) == zone)
        .collect()
}

/// Precomputed attack rewards: for every (occupant, zone, minute), the
/// marginal HVAC cost ($/slot) of *reporting* that occupant in that zone
/// doing the most expensive plausible activity — the coefficients of the
/// paper's objective (Eq. 17).
///
/// Prefix sums make any stay's reward an O(1) lookup, which the schedulers
/// rely on.
#[derive(Debug, Clone)]
pub struct RewardTable {
    n_zones: usize,
    /// `rate[o][z][t]` in dollars per minute.
    rate: Vec<Vec<Vec<f64>>>,
    /// `prefix[o][z][t]` = Σ_{u<t} rate[o][z][u].
    prefix: Vec<Vec<Vec<f64>>>,
    /// Best (most expensive) reported activity per zone and minute,
    /// shared across occupants of equal profile but stored per occupant
    /// for generality.
    best_activity: Vec<Vec<Vec<Activity>>>,
    /// `appliance_rate[d][t]`: marginal cost ($/min) of appliance `d`
    /// running at minute `t` (power draw + induced cooling).
    appliance_rate: Vec<Vec<f64>>,
    /// Home zone of each appliance.
    appliance_zone: Vec<ZoneId>,
    /// Linked activities of each appliance (legitimate-use set).
    appliance_linked: Vec<Vec<Activity>>,
}

impl RewardTable {
    /// Builds the table from the energy model for `n_occupants` occupants
    /// and all zones of the model's home.
    pub fn build(model: &EnergyModel) -> RewardTable {
        let n_occupants = model.home().occupants().len();
        let n_zones = model.home().zones().len();
        let mut rate = vec![vec![vec![0.0; MINUTES_PER_DAY]; n_zones]; n_occupants];
        let mut best_activity =
            vec![vec![vec![Activity::Other; MINUTES_PER_DAY]; n_zones]; n_occupants];
        for o in 0..n_occupants {
            for z in 0..n_zones {
                let plausible = plausible_activities(ZoneId(z));
                if plausible.is_empty() {
                    continue;
                }
                for t in 0..MINUTES_PER_DAY {
                    if let Some((act, r)) =
                        model.best_activity_for(OccupantId(o), ZoneId(z), t as Minute, &plausible)
                    {
                        rate[o][z][t] = r;
                        best_activity[o][z][t] = act;
                    }
                }
            }
        }
        let prefix = rate
            .iter()
            .map(|per_zone| {
                per_zone
                    .iter()
                    .map(|r| {
                        let mut p = vec![0.0; MINUTES_PER_DAY + 1];
                        for t in 0..MINUTES_PER_DAY {
                            p[t + 1] = p[t] + r[t];
                        }
                        p
                    })
                    .collect()
            })
            .collect();
        let appliance_rate = model
            .home()
            .appliances()
            .iter()
            .map(|a| {
                (0..MINUTES_PER_DAY)
                    .map(|t| model.appliance_cost_rate(a.id, t as Minute))
                    .collect()
            })
            .collect();
        let appliance_zone = model.home().appliances().iter().map(|a| a.zone).collect();
        let appliance_linked = model
            .home()
            .appliances()
            .iter()
            .map(|a| a.linked_activities.clone())
            .collect();
        RewardTable {
            n_zones,
            rate,
            prefix,
            best_activity,
            appliance_rate,
            appliance_zone,
            appliance_linked,
        }
    }

    /// Number of appliances covered.
    pub fn n_appliances(&self) -> usize {
        self.appliance_zone.len()
    }

    /// Marginal cost rate ($/min) of appliance `d` running at minute `t`.
    pub fn appliance_rate(&self, d: shatter_smarthome::ApplianceId, t: Minute) -> f64 {
        self.appliance_rate[d.index()][t as usize]
    }

    /// Zone an appliance is installed in.
    pub fn appliance_zone(&self, d: shatter_smarthome::ApplianceId) -> ZoneId {
        self.appliance_zone[d.index()]
    }

    /// Whether `activity` is a legitimate use of appliance `d`.
    pub fn appliance_linked_to(
        &self,
        d: shatter_smarthome::ApplianceId,
        activity: Activity,
    ) -> bool {
        self.appliance_linked[d.index()].contains(&activity)
    }

    /// Number of zones covered.
    pub fn n_zones(&self) -> usize {
        self.n_zones
    }

    /// Reward rate ($/min) for reporting `o` in `z` at minute `t`.
    pub fn rate(&self, o: OccupantId, z: ZoneId, t: Minute) -> f64 {
        self.rate[o.index()][z.index()][t as usize]
    }

    /// Total reward of reporting `o` in `z` for minutes `[from, to)`.
    pub fn stay_reward(&self, o: OccupantId, z: ZoneId, from: Minute, to: Minute) -> f64 {
        let p = &self.prefix[o.index()][z.index()];
        p[(to as usize).min(MINUTES_PER_DAY)] - p[(from as usize).min(MINUTES_PER_DAY)]
    }

    /// The most expensive plausible activity to report for `o` in `z` at
    /// minute `t`.
    pub fn best_activity(&self, o: OccupantId, z: ZoneId, t: Minute) -> Activity {
        self.best_activity[o.index()][z.index()][t as usize]
    }
}

/// Blob-store serialization (the disk tier under the engine's memo).
/// Rates travel as exact `f64` bit patterns; the prefix-sum table is a
/// derivative and is recomputed on decode with the same summation
/// order as [`RewardTable::build`], so a deserialized table is
/// field-for-field bit-identical to a rebuilt one.
impl shatter_store::Blob for RewardTable {
    const TAG: &'static str = "reward-table/1";

    fn encode(&self, w: &mut shatter_store::wire::Writer) {
        w.usize(self.n_zones);
        w.usize(self.rate.len());
        for per_zone in &self.rate {
            w.usize(per_zone.len());
            for row in per_zone {
                w.usize(row.len());
                for &v in row {
                    w.f64(v);
                }
            }
        }
        for per_zone in &self.best_activity {
            for row in per_zone {
                for &a in row {
                    w.u8(a.code());
                }
            }
        }
        w.usize(self.appliance_rate.len());
        for row in &self.appliance_rate {
            w.usize(row.len());
            for &v in row {
                w.f64(v);
            }
        }
        for &z in &self.appliance_zone {
            w.u32(z.0 as u32);
        }
        for linked in &self.appliance_linked {
            w.usize(linked.len());
            for &a in linked {
                w.u8(a.code());
            }
        }
    }

    fn decode(r: &mut shatter_store::wire::Reader<'_>) -> Option<Self> {
        let n_zones = r.usize()?;
        let n_occupants = r.seq_len()?;
        let mut rate = Vec::with_capacity(n_occupants);
        let mut dims = Vec::with_capacity(n_occupants);
        for _ in 0..n_occupants {
            let nz = r.seq_len()?;
            let mut per_zone = Vec::with_capacity(nz);
            let mut zdims = Vec::with_capacity(nz);
            for _ in 0..nz {
                let nt = r.seq_len()?;
                if nt != MINUTES_PER_DAY {
                    return None;
                }
                let mut row = Vec::with_capacity(nt);
                for _ in 0..nt {
                    row.push(r.f64()?);
                }
                zdims.push(nt);
                per_zone.push(row);
            }
            dims.push(zdims);
            per_zone_len_check(&per_zone, n_zones)?;
            rate.push(per_zone);
        }
        let mut best_activity = Vec::with_capacity(n_occupants);
        for zdims in &dims {
            let mut per_zone = Vec::with_capacity(zdims.len());
            for &nt in zdims {
                let mut row = Vec::with_capacity(nt);
                for _ in 0..nt {
                    row.push(Activity::from_code(r.u8()?)?);
                }
                per_zone.push(row);
            }
            best_activity.push(per_zone);
        }
        let n_appliances = r.seq_len()?;
        let mut appliance_rate = Vec::with_capacity(n_appliances);
        for _ in 0..n_appliances {
            let nt = r.seq_len()?;
            if nt != MINUTES_PER_DAY {
                return None;
            }
            let mut row = Vec::with_capacity(nt);
            for _ in 0..nt {
                row.push(r.f64()?);
            }
            appliance_rate.push(row);
        }
        let mut appliance_zone = Vec::with_capacity(n_appliances);
        for _ in 0..n_appliances {
            appliance_zone.push(ZoneId(r.u32()? as usize));
        }
        let mut appliance_linked = Vec::with_capacity(n_appliances);
        for _ in 0..n_appliances {
            let n = r.seq_len()?;
            let mut linked = Vec::with_capacity(n);
            for _ in 0..n {
                linked.push(Activity::from_code(r.u8()?)?);
            }
            appliance_linked.push(linked);
        }
        // Recompute the prefix sums exactly as `build` does (same
        // operation order ⇒ same bits).
        let prefix = rate
            .iter()
            .map(|per_zone| {
                per_zone
                    .iter()
                    .map(|r| {
                        let mut p = vec![0.0; MINUTES_PER_DAY + 1];
                        for t in 0..MINUTES_PER_DAY {
                            p[t + 1] = p[t] + r[t];
                        }
                        p
                    })
                    .collect()
            })
            .collect();
        Some(RewardTable {
            n_zones,
            rate,
            prefix,
            best_activity,
            appliance_rate,
            appliance_zone,
            appliance_linked,
        })
    }
}

/// Rejects a decoded per-occupant rate block whose zone count differs
/// from the declared `n_zones` (shape damage).
fn per_zone_len_check(per_zone: &[Vec<f64>], n_zones: usize) -> Option<()> {
    (per_zone.len() == n_zones).then_some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shatter_smarthome::houses;

    #[test]
    fn plausible_activity_zones_are_consistent() {
        for z in 0..5 {
            for a in plausible_activities(ZoneId(z)) {
                assert_eq!(default_zone_for(a), ZoneId(z));
            }
        }
        // Kitchen includes cooking.
        assert!(plausible_activities(ZoneId(3)).contains(&Activity::PreparingDinner));
        // Outside only contains GoingOut.
        assert_eq!(plausible_activities(ZoneId(0)), vec![Activity::GoingOut]);
    }

    #[test]
    fn prefix_sums_match_direct_sums() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        let o = OccupantId(0);
        let z = ZoneId(3);
        let direct: f64 = (100..200).map(|t| table.rate(o, z, t)).sum();
        let fast = table.stay_reward(o, z, 100, 200);
        assert!((direct - fast).abs() < 1e-9);
    }

    #[test]
    fn kitchen_beats_bedroom() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        let o = OccupantId(0);
        assert!(
            table.stay_reward(o, ZoneId(3), 0, 1440) > table.stay_reward(o, ZoneId(1), 0, 1440)
        );
    }

    #[test]
    fn outside_has_zero_reward() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        assert_eq!(table.stay_reward(OccupantId(0), ZoneId(0), 0, 1440), 0.0);
    }

    #[test]
    fn blob_roundtrip_is_bit_identical() {
        use shatter_store::Blob;
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        let bytes = table.to_blob();
        let back = RewardTable::from_blob(&bytes).expect("decode");
        assert_eq!(back.to_blob(), bytes, "canonical re-encode");
        assert_eq!(back.n_zones(), table.n_zones());
        assert_eq!(back.n_appliances(), table.n_appliances());
        for z in 0..table.n_zones() {
            for t in (0..1440).step_by(97) {
                let (o, z) = (OccupantId(0), ZoneId(z));
                assert_eq!(back.rate(o, z, t).to_bits(), table.rate(o, z, t).to_bits());
                assert_eq!(back.best_activity(o, z, t), table.best_activity(o, z, t));
            }
            // Prefix sums were recomputed, not stored — still bit-equal.
            let (o, z) = (OccupantId(0), ZoneId(z));
            assert_eq!(
                back.stay_reward(o, z, 13, 1201).to_bits(),
                table.stay_reward(o, z, 13, 1201).to_bits()
            );
        }
        assert_eq!(
            RewardTable::from_blob(&bytes[..bytes.len() - 2]).map(|_| ()),
            None
        );
    }

    #[test]
    fn best_activity_is_plausible() {
        let model = EnergyModel::standard(houses::aras_house_a());
        let table = RewardTable::build(&model);
        for z in 1..5usize {
            let a = table.best_activity(OccupantId(0), ZoneId(z), 700);
            assert_eq!(default_zone_for(a), ZoneId(z));
        }
    }
}
